"""The HTTP/JSON lease service: one farm root behind a socket.

``python -m repro.farm serve <root>`` turns the lease protocol's
arbiter from "a directory the hosts all mount" into "a port the hosts
can reach": the broker and any number of workers (local or remote)
speak :mod:`repro.farm.transport.http` to this process, and hosts need
share nothing but a network.  Pure stdlib (:mod:`http.server`), no new
dependencies.

Three properties make the service safe to talk to over an unreliable
network:

**Idempotent RPCs.**  Every mutating request carries a client-generated
request id (``rid``).  The service remembers the response it gave each
rid; a retry of a half-completed call — the classic "the request
executed but the connection died before the response" — is answered
from that cache instead of executing twice.  The mutations are also
*semantically* idempotent (re-claiming a lease you hold returns the
same lease; re-completing a stored result is ``ok``), so even a service
restart that loses the cache cannot double-apply a retry.

**Fencing tokens.**  Each claim is stamped with a globally monotonic
token (persisted in ``fence.json``, so restarts never reuse one).
Every subsequent write on the lease — heartbeat, checkpoint upload,
completion, release, broker reclaim — must present the token, and a
stale one is rejected with ``fenced`` *server-side*: a zombie worker
waking up after its cell was reclaimed cannot heartbeat, upload, or
complete anything, no matter how delayed its packets are.

**Server-owned clocks.**  Lease ages (for TTL expiry and wall-clock
timeouts) are computed on the service's own clock and shipped to the
broker as *ages*, never as timestamps — clock skew between hosts
cannot mis-expire a lease.  Retry backoff fences arrive as deltas
("not claimable for N seconds") for the same reason.

State lives in the ordinary farm-root layout (``cells/``, ``leases/``,
``results/``, ``checkpoints/``) as the same checksummed envelopes the
filesystem transport writes, so ``fsck`` and ``farm status`` work on a
server root unchanged, and a restarted service recovers every cell,
lease, and result from disk.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.farm import lease as fsl
from repro.farm.lease import (
    CellResult,
    CellSpec,
    FARM_SCHEMA,
    FarmPaths,
    LEASE_KIND,
    Lease,
)
from repro.store import (
    ArtifactError,
    atomic_write_bytes,
    envelope_bytes,
    read_json_artifact,
    remove_file,
)

#: Envelope kind of the persisted fencing-token counter.
FENCE_KIND = "farm-fence"
#: How many request-id -> response entries the replay cache keeps.
RID_CACHE_SIZE = 4096


class FarmState:
    """Everything the service knows, plus its on-disk recovery story.

    One lock serializes all RPCs: the farm's scale is tens of cells and
    a heartbeat per worker per second, so correctness-by-serialization
    costs nothing measurable and keeps every invariant local.
    """

    def __init__(self, root: str) -> None:
        self.paths = FarmPaths(root).ensure()
        self.lock = threading.Lock()
        self.cells: Dict[str, CellSpec] = {}
        self.leases: Dict[str, Lease] = {}
        self.fence = 0
        self.rid_cache: "OrderedDict[str, Dict]" = OrderedDict()
        self._result_keys: set = set()
        self._recover()

    # ----------------------------------------------------- persistence

    @property
    def _fence_path(self) -> str:
        return os.path.join(self.paths.root, "fence.json")

    def _recover(self) -> None:
        """Rebuild in-memory state from the root: cells, live leases,
        result keys, and the fence counter (never reused, even across
        restarts — see ``fence.json``)."""
        for cid in fsl.list_cells(self.paths):
            try:
                self.cells[cid] = fsl.read_cell(self.paths.cell(cid))
            except (ArtifactError, OSError):
                continue  # damaged spec: the broker republishes
        for cid in fsl.list_leases(self.paths):
            try:
                lease = fsl.read_lease(self.paths.lease(cid))
            except (ArtifactError, OSError):
                continue  # torn write: a fresh claim will replace it
            self.leases[cid] = lease
            self.fence = max(self.fence, lease.token)
        for _cid, path in fsl.iter_results(self.paths):
            try:
                result = fsl.read_result(path)
            except (ArtifactError, OSError):
                continue
            self._result_keys.add((result.cid, result.attempt, result.worker))
        if os.path.exists(self._fence_path):
            try:
                data, _ = read_json_artifact(self._fence_path, FENCE_KIND,
                                             allow_legacy=False)
                self.fence = max(self.fence, int(data["fence"]))
            except (ArtifactError, OSError, KeyError, ValueError):
                pass  # lease files above already lower-bound the fence

    def _issue_token(self) -> int:
        self.fence += 1
        atomic_write_bytes(
            self._fence_path,
            envelope_bytes(FENCE_KIND, FARM_SCHEMA, {"fence": self.fence}),
        )
        return self.fence

    def _write_lease(self, lease: Lease, *, durable: bool = True) -> None:
        atomic_write_bytes(
            self.paths.lease(lease.cid),
            envelope_bytes(LEASE_KIND, FARM_SCHEMA, lease.to_dict()),
            durable=durable,
        )

    def _drop_lease(self, cid: str) -> None:
        self.leases.pop(cid, None)
        remove_file(self.paths.lease(cid))

    def _ckpt_path(self, cid: str) -> str:
        return os.path.join(self.paths.checkpoints, f"{cid}.snap")

    def _done(self, cid: str) -> bool:
        return any(key[0] == cid for key in self._result_keys)

    def _store_result(self, result: CellResult) -> None:
        fsl.write_result(self.paths, result)
        self._result_keys.add((result.cid, result.attempt, result.worker))

    # ------------------------------------------------------------ reads

    def snapshot_cells(self) -> List[Dict]:
        now = time.time()
        out = []
        for cid in sorted(self.cells):
            data = self.cells[cid].to_dict()
            # Ship the backoff fence as a *delta*: the client re-anchors
            # it on its own clock, so host clock skew cannot extend (or
            # collapse) a retry backoff.
            data["not_before_in"] = max(0.0, self.cells[cid].not_before - now)
            out.append(data)
        return out

    def snapshot_leases(self) -> List[Dict]:
        now = time.time()
        out = []
        for cid in sorted(self.leases):
            lease = self.leases[cid]
            data = lease.to_dict()
            data["age"] = lease.age(now)
            data["held"] = now - lease.granted_unix
            out.append(data)
        return out

    # -------------------------------------------------------- mutations
    # All called under self.lock, all returning JSON-able dicts.  An
    # ``{"code": ...}`` response is a protocol verdict (fenced, taken,
    # backoff, ...), not an HTTP error: the transport maps them.

    def rpc_publish(self, cell_data: Dict) -> Dict:
        cell = CellSpec.from_dict(cell_data)
        prior = self.cells.get(cell.cid)
        if prior is not None and prior.key == cell.key:
            # Resumed sweep: the service's attempt counter and backoff
            # fence are the authoritative ones.
            cell = prior
        self.cells[cell.cid] = cell
        fsl.write_cell(self.paths, cell)
        return {"cell": cell.to_dict()}

    def rpc_prune(self, keep: List[str]) -> Dict:
        keep_set = set(keep)
        for cid in list(self.cells):
            if cid in keep_set:
                continue
            del self.cells[cid]
            self._drop_lease(cid)
            remove_file(self.paths.cell(cid))
        return {"ok": 1}

    def rpc_claim(self, cid: str, worker: str, ttl: float,
                  attempt: int) -> Dict:
        cell = self.cells.get(cid)
        if cell is None:
            return {"code": "unknown-cell"}
        if self._done(cid):
            return {"code": "done"}
        if attempt != cell.attempt:
            # The claimer's scan predates a reclaim: its attempt number
            # is stale, and granting it would undo the fence.
            return {"code": "stale-attempt"}
        now = time.time()
        if now < cell.not_before:
            return {"code": "backoff"}
        held = self.leases.get(cid)
        if held is not None:
            if held.worker == worker and held.attempt == attempt:
                # Semantic idempotency: re-claiming a lease you already
                # hold (a retry whose rid the cache lost, e.g. across a
                # service restart) returns the same grant.
                return {"lease": held.to_dict()}
            return {"code": "taken"}
        lease = Lease(
            cid=cid, key=cell.key, worker=worker, attempt=attempt,
            ttl=ttl, granted_unix=now, heartbeat_unix=now,
            token=self._issue_token(),
        )
        self.leases[cid] = lease
        self._write_lease(lease)
        return {"lease": lease.to_dict()}

    def rpc_heartbeat(self, cid: str, token: int, cycle: int,
                      committed: int, state: Optional[str]) -> Dict:
        lease = self.leases.get(cid)
        if lease is None or lease.token != token:
            return {"code": "fenced"}
        lease.heartbeat_unix = time.time()
        lease.cycle = cycle
        lease.committed = committed
        if state is not None:
            lease.state = state
        # Heartbeats are frequent and individually expendable: persist
        # atomically but not durably, exactly like the fs transport.
        self._write_lease(lease, durable=state is not None)
        return {"ok": 1}

    def rpc_release(self, cid: str, token: int) -> Dict:
        lease = self.leases.get(cid)
        if lease is None or lease.token != token:
            return {"released": False}
        self._drop_lease(cid)
        return {"released": True}

    def rpc_complete(self, result_data: Dict, token: int) -> Dict:
        result = CellResult.from_dict(result_data)
        key = (result.cid, result.attempt, result.worker)
        if key in self._result_keys:
            return {"ok": 1}  # replay of an applied completion
        lease = self.leases.get(result.cid)
        if lease is None or lease.token != token:
            # The zombie case: this worker's lease was reclaimed.  On
            # the filesystem the duplicate lands on disk and the broker
            # verifies it at fold time; here the fence rejects it at the
            # door — the winner's result (or the reclaim) stands.
            return {"code": "fenced"}
        self._store_result(result)
        self._drop_lease(result.cid)
        remove_file(self._ckpt_path(result.cid))
        return {"ok": 1}

    def rpc_reclaim(self, cid: str, token: int, attempt: int,
                    released: int, backoff: float,
                    terminal: Optional[Dict]) -> Dict:
        cell = self.cells.get(cid)
        if cell is None:
            return {"code": "unknown-cell"}
        if self._done(cid):
            return {"code": "done"}  # completed in flight: nothing to do
        lease = self.leases.get(cid)
        if lease is not None and lease.token != token:
            # The broker's view is stale (the lease changed hands since
            # its last scan): refuse — it will re-observe and decide.
            return {"code": "fenced"}
        if terminal is not None:
            self._store_result(CellResult.from_dict(terminal))
            self._drop_lease(cid)
            remove_file(self._ckpt_path(cid))
            return {"ok": 1}
        if cell.attempt < attempt:
            cell.attempt = attempt
            cell.released = released
            cell.not_before = time.time() + max(0.0, backoff)
            # Publish the bumped spec (the fence) before dropping the
            # lease — both under the lock, so no claim can interleave
            # and the in-flight heartbeat deterministically loses.
            fsl.write_cell(self.paths, cell)
        self._drop_lease(cid)
        return {"ok": 1}

    def rpc_checkpoint(self, cid: str, token: int, data_b64: str) -> Dict:
        lease = self.leases.get(cid)
        if lease is None or lease.token != token:
            return {"code": "fenced"}
        atomic_write_bytes(self._ckpt_path(cid),
                           base64.b64decode(data_b64.encode("ascii")))
        return {"ok": 1}


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------ plumbing

    def log_message(self, fmt, *args):  # noqa: D102 — silence stdlib chatter
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def state(self) -> FarmState:
        return self.server.state

    # --------------------------------------------------------------- GET

    def do_GET(self) -> None:  # noqa: N802 — stdlib API
        parsed = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        state = self.state
        status = 200
        # Compute under the lock, transmit outside it: a client slow to
        # read its response must never stall every other host's RPCs.
        with state.lock:
            if parsed.path == "/ping":
                payload = {"ok": 1, "fence": state.fence,
                           "cells": len(state.cells),
                           "results": len(state._result_keys)}
            elif parsed.path == "/cells":
                payload = {"cells": state.snapshot_cells()}
            elif parsed.path == "/leases":
                payload = {"leases": state.snapshot_leases()}
            elif parsed.path == "/done":
                payload = {"cids": sorted({k[0] for k in state._result_keys})}
            elif parsed.path == "/results":
                out = []
                for _cid, path in fsl.iter_results(state.paths):
                    try:
                        out.append(fsl.read_result(path).to_dict())
                    except (ArtifactError, OSError):
                        continue  # unreadable: fsck's problem, not the wire's
                payload = {"results": out}
            elif parsed.path == "/has-checkpoint":
                cid = query.get("cid", "")
                payload = {"exists": os.path.exists(state._ckpt_path(cid))}
            elif parsed.path == "/checkpoint":
                cid = query.get("cid", "")
                try:
                    with open(state._ckpt_path(cid), "rb") as fh:
                        raw = fh.read()
                    payload = {"data": base64.b64encode(raw).decode("ascii")}
                except OSError:
                    payload = {"missing": 1}
            else:
                payload = {"error": f"unknown path {parsed.path!r}"}
                status = 404
        self._send(payload, status)

    # -------------------------------------------------------------- POST

    def do_POST(self) -> None:  # noqa: N802 — stdlib API
        parsed = urlparse(self.path)
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send({"error": f"bad request body: {exc}"}, 400)
            return
        rid = body.get("rid")
        state = self.state
        status = 200
        with state.lock:
            if rid is not None and rid in state.rid_cache:
                # Exactly-once: this request already executed; its
                # effect stands and the original answer is replayed.
                payload = {**state.rid_cache[rid], "rid": rid, "replayed": 1}
            else:
                try:
                    response = self._dispatch(parsed.path, body)
                except KeyError as exc:
                    response, status = {"error": f"missing field {exc}"}, 400
                if response is None:
                    response = {"error": f"unknown path {parsed.path!r}"}
                    status = 404
                if status == 200 and rid is not None:
                    state.rid_cache[rid] = response
                    while len(state.rid_cache) > RID_CACHE_SIZE:
                        state.rid_cache.popitem(last=False)
                payload = {**response, "rid": rid}
        self._send(payload, status)

    def _dispatch(self, path: str, body: Dict) -> Optional[Dict]:
        state = self.state
        if path == "/publish":
            return state.rpc_publish(body["cell"])
        if path == "/prune":
            return state.rpc_prune(body["keep"])
        if path == "/claim":
            return state.rpc_claim(body["cid"], body["worker"],
                                   float(body["ttl"]), int(body["attempt"]))
        if path == "/heartbeat":
            return state.rpc_heartbeat(
                body["cid"], int(body["token"]), int(body.get("cycle", 0)),
                int(body.get("committed", 0)), body.get("state"))
        if path == "/release":
            return state.rpc_release(body["cid"], int(body["token"]))
        if path == "/complete":
            return state.rpc_complete(body["result"], int(body["token"]))
        if path == "/reclaim":
            return state.rpc_reclaim(
                body["cid"], int(body["token"]), int(body["attempt"]),
                int(body.get("released", 0)), float(body.get("backoff", 0.0)),
                body.get("terminal"))
        if path == "/checkpoint":
            return state.rpc_checkpoint(body["cid"], int(body["token"]),
                                        body["data"])
        return None


class FarmServer:
    """An embeddable lease service: ``start()`` serves on a background
    thread (port 0 picks a free one), ``stop()`` shuts it down.  The
    CLI's ``serve`` subcommand runs the same thing in the foreground."""

    def __init__(self, root: str, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.state = FarmState(root)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.state = self.state
        self.httpd.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "FarmServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="farm-server", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None
