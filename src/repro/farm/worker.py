"""Stateless farm workers: lease, heartbeat, simulate, stream back.

A worker owns nothing but its process: every piece of state it needs —
which cells exist, which are claimable, where to resume — lives behind
its :class:`~repro.farm.transport.Transport` (a shared journal
directory, or an HTTP lease service for hosts that share nothing but a
network), so workers can be spawned by the broker, attached later from
another shell (``python -m repro.farm worker <root>`` or ``--endpoint
URL``), or on another host, and killing one at any instant costs at
most the cycles since its cell's last checkpoint.

Per cell, the worker:

1. claims the lease (the transport arbitrates races: O_EXCL on the
   filesystem, a locked server-side check over HTTP);
2. simulates with a per-cycle hook that (a) heartbeats the lease every
   ``heartbeat_interval`` seconds, piggybacking live progress,
   (b) checkpoints through :mod:`repro.core.snapshot` every
   ``checkpoint_every`` cycles — shipping the snapshot through the
   transport so a reclaimed cell resumes on *any* host — and (c) fires
   any injected chaos;
3. streams the final :class:`~repro.core.stats.SimStats` (or a
   deterministic error) back as a checksummed envelope;
4. releases the lease — only if it still owns it.

**Spot eviction**: SIGTERM means "you have ``grace`` seconds".  The
handler sets a flag; the cycle hook raises, the worker snapshots the
machine *at that exact cycle*, marks its lease ``released``, and exits
cleanly — whoever reclaims the cell resumes mid-simulation.

**Lost leases**: a worker whose lease vanishes or changes hands (broker
reclaim after a stall, or an injected double-lease) downgrades to a
zombie — it finishes the cell and writes its result, but never touches
the lease again; the broker's exactly-once folding verifies and drops
the duplicate (the HTTP service additionally rejects the zombie's
writes server-side by fencing token).

**Unreachable backend**: transport calls retry under the shared
:class:`~repro.retry.RetryPolicy`; once the deadline is spent the
worker does not hang or crash with a raw socket error — it exits with
a *typed* failure and prints the exact resume command.  Exit status 2:
the backend was unreachable between cells (nothing in flight).  Exit
status 3: it died mid-cell — the worker first parks a checkpoint
locally so the cycles are not lost.
"""

from __future__ import annotations

import dataclasses
import signal
import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.machine import SimulationError
from repro.farm.inject import WorkerChaos
from repro.farm.lease import CellResult, CellSpec, LeaseLost
from repro.farm.transport import (
    Fenced,
    Transport,
    TransportError,
    TransportUnavailable,
    make_transport,
)


@dataclass
class WorkerOptions:
    """Everything a worker needs besides the transport address."""

    lease_ttl: float = 30.0
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.2
    #: Override the RunSpec's checkpoint cadence (None keeps it).
    checkpoint_every: Optional[int] = 2000
    #: Exit after the first completed cell (used by tests).
    oneshot: bool = False
    #: Stop scanning once every published cell has a result.  Attached
    #: workers may instead linger for cells the broker will re-publish.
    exit_when_done: bool = True
    #: HTTP lease-service URL; None means shared-filesystem root.
    endpoint: Optional[str] = None
    #: Per-RPC timeout and total retry deadline (HTTP transport only).
    rpc_timeout: float = 10.0
    rpc_deadline: float = 60.0


class Evicted(Exception):
    """Raised from the cycle hook when SIGTERM arrived: carries the
    machine so the worker can checkpoint it at that exact cycle."""

    def __init__(self, machine) -> None:
        super().__init__("worker evicted")
        self.machine = machine


class Parked(Exception):
    """The transport became unreachable mid-cell and the retry deadline
    is spent.  The in-progress work is parked: ``path`` holds a local
    checkpoint saved at the exact cycle the backend was given up on
    (None when the cell kind has no checkpoint), ``cause`` the final
    :class:`~repro.farm.transport.TransportUnavailable`."""

    def __init__(self, cause: TransportUnavailable,
                 path: Optional[str] = None) -> None:
        super().__init__(str(cause))
        self.cause = cause
        self.path = path


class _EvictFlag:
    """SIGTERM latch.  A module-level handler would be racy under
    multiprocessing fork; each worker installs its own instance."""

    def __init__(self) -> None:
        self.requested = False

    def install(self) -> None:
        signal.signal(signal.SIGTERM, self._handle)

    def _handle(self, signum, frame) -> None:
        self.requested = True


def _spec_from_dict(data: dict) -> "RunSpec":
    from repro.experiments.runner import RunSpec

    known = {f.name for f in dataclasses.fields(RunSpec)}
    return RunSpec(**{k: v for k, v in data.items() if k in known})


def _execute_cell(
    transport: Transport,
    cell: CellSpec,
    lease,
    options: WorkerOptions,
    chaos: WorkerChaos,
    evict: _EvictFlag,
    traces,
    cell_fn: Optional[Callable] = None,
) -> CellResult:
    """Run one leased cell to completion (or deterministic error).

    Raises :class:`Evicted` on SIGTERM — after checkpointing — and
    :class:`Parked` when the transport's retry deadline dies mid-cell.
    """
    from repro.core.snapshot import save_snapshot, take_snapshot
    from repro.experiments.runner import (
        _run_checkpointed,
        checkpoint_path,
        resolve_config,
    )

    spec = _spec_from_dict(cell.spec)
    if options.checkpoint_every is not None:
        spec = dataclasses.replace(spec, checkpoint_every=options.checkpoint_every)
    spec = dataclasses.replace(spec, checkpoint_dir=transport.checkpoint_dir)
    started = time.monotonic()
    state = {
        "start_cycle": 0, "zombie": False,
        "last_hb": time.monotonic(), "dropped": False,
    }

    if cell_fn is not None:
        # Test hook: an injected cell callable (run_one's signature)
        # replaces the checkpointed path wholesale; heartbeats pause for
        # the duration, so keep injected cells shorter than the TTL.
        stats = cell_fn(cell.benchmark, cell.scheme, cell.width, spec, None)
        return CellResult(
            cid=cell.cid, key=cell.key, worker=lease.worker,
            attempt=cell.attempt, status="ok", stats=stats.to_dict(),
            start_cycle=0, elapsed=time.monotonic() - started,
        )

    if cell.backend == "vector":
        return _execute_column(
            transport, cell, lease, options, chaos, evict, traces, spec,
            started,
        )

    config = resolve_config(cell.scheme, cell.width, spec)
    trace = traces.get(cell.benchmark, spec)
    ckpt = checkpoint_path(cell.benchmark, cell.scheme, cell.width, spec)
    transport.fetch_checkpoint(cell, ckpt)
    interval = spec.checkpoint_every

    def on_resume(cycle: int) -> None:
        state["start_cycle"] = cycle

    def cycle_hook(m) -> None:
        if evict.requested:
            # Snapshot *now*, at a consistent end-of-cycle boundary —
            # the whole point of the grace budget.
            save_snapshot(take_snapshot(m), ckpt)
            raise Evicted(m)
        if interval and m.now % interval == 0 and not state["zombie"]:
            # The runner's own hook (registered first) saved the local
            # snapshot this very cycle; ship it so a reclaim resumes on
            # any host.  Fenced means reclaimed under us: go zombie.
            try:
                transport.store_checkpoint(cell, lease, ckpt)
            except Fenced:
                state["zombie"] = True
            except TransportUnavailable as exc:
                raise Parked(exc, path=ckpt) from exc
        if m.now & 31:
            return
        chaos.check(m)
        if chaos.drop_lease and not state["dropped"]:
            state["dropped"] = True
            try:
                transport.release(lease)
            except TransportError:
                pass
            state["zombie"] = True
        if chaos.stalled:
            time.sleep(chaos.stall_delay)
            return
        if state["zombie"]:
            return
        now = time.monotonic()
        if now - state["last_hb"] >= options.heartbeat_interval:
            state["last_hb"] = now
            try:
                transport.heartbeat(lease, cycle=m.now,
                                    committed=m.stats.committed)
            except (LeaseLost, Fenced):
                state["zombie"] = True
            except TransportUnavailable as exc:
                # Park at this exact cycle: a local snapshot costs one
                # write and saves every cycle since the last upload.
                save_snapshot(take_snapshot(m), ckpt)
                raise Parked(exc, path=ckpt) from exc

    try:
        stats = _run_checkpointed(
            config, trace, ckpt, spec, cycle_hook=cycle_hook,
            on_resume=on_resume,
        )
    except Evicted:
        # The hook already saved the snapshot; ship it (best-effort —
        # we are being evicted either way) before handing back.
        try:
            transport.store_checkpoint(cell, lease, ckpt)
        except TransportError:
            pass
        raise
    if spec.max_cycles is not None and stats.committed < len(trace):
        raise SimulationError(
            f"cycle-limit watchdog: {cell.benchmark}/{cell.scheme} "
            f"committed only {stats.committed}/{len(trace)} instructions "
            f"in {spec.max_cycles} cycles"
        )
    return CellResult(
        cid=cell.cid, key=cell.key, worker=lease.worker,
        attempt=cell.attempt, status="ok", stats=stats.to_dict(),
        start_cycle=state["start_cycle"],
        elapsed=time.monotonic() - started,
    )


def _execute_column(
    transport: Transport,
    cell: CellSpec,
    lease,
    options: WorkerOptions,
    chaos: WorkerChaos,
    evict: _EvictFlag,
    traces,
    spec,
    started: float,
) -> CellResult:
    """Run one leased *column* (a vector-backend cell) to completion.

    The whole column is one lease: the engine's cycle hook heartbeats
    and honors eviction exactly like the scalar path.  Columns are not
    checkpointed mid-run (a forked machine fleet has no single snapshot
    point), so an evicted column is handed back whole and restarts —
    the lease's voluntary-release accounting already makes that free of
    retry budget.  Per-lane deterministic failures land in
    ``lane_errors``; they never poison sibling lanes.
    """
    from repro.experiments.runner import lane_key, resolve_config
    from repro.vector import Lane, run_column

    state = {"zombie": False, "last_hb": time.monotonic()}

    def cycle_hook(m) -> None:
        if evict.requested:
            raise Evicted(m)
        if m.now & 31:
            return
        chaos.check(m)
        if chaos.drop_lease and not state["zombie"]:
            try:
                transport.release(lease)
            except TransportError:
                pass
            state["zombie"] = True
        if chaos.stalled:
            time.sleep(chaos.stall_delay)
            return
        if state["zombie"]:
            return
        now = time.monotonic()
        if now - state["last_hb"] >= options.heartbeat_interval:
            state["last_hb"] = now
            try:
                transport.heartbeat(lease, cycle=m.now,
                                    committed=m.stats.committed)
            except (LeaseLost, Fenced):
                state["zombie"] = True
            except TransportUnavailable as exc:
                raise Parked(exc) from exc  # columns carry no checkpoint

    lanes = []
    lengths = {}
    for benchmark, scheme in cell.lanes:
        trace = traces.get(benchmark, spec)
        key = lane_key(benchmark, scheme)
        lengths[key] = len(trace)
        lanes.append(Lane(
            key=key,
            config=resolve_config(scheme, cell.width, spec),
            trace=trace,
        ))
    outcome = run_column(lanes, max_cycles=spec.max_cycles,
                         cycle_hook=cycle_hook)
    lane_stats: dict = {}
    lane_errors: dict = {}
    for lane in lanes:
        result = outcome.results[lane.key]
        error = result.error
        if (error is None and spec.max_cycles is not None
                and result.stats.committed < lengths[lane.key]):
            error = SimulationError(
                f"cycle-limit watchdog: {lane.key.replace('|', '/')} "
                f"committed only {result.stats.committed}/"
                f"{lengths[lane.key]} instructions in "
                f"{spec.max_cycles} cycles"
            )
        if error is not None:
            lane_errors[lane.key] = {
                "error_type": type(error).__name__, "message": str(error),
            }
        else:
            lane_stats[lane.key] = result.stats.to_dict()
    return CellResult(
        cid=cell.cid, key=cell.key, worker=lease.worker,
        attempt=cell.attempt, status="ok",
        lane_stats=lane_stats, lane_errors=lane_errors,
        start_cycle=0, elapsed=time.monotonic() - started,
    )


def worker_loop(
    root: Optional[str],
    worker_id: str,
    options: Optional[WorkerOptions] = None,
    chaos: Optional[WorkerChaos] = None,
    cell_fn: Optional[Callable] = None,
    net_plans=(),
    transport: Optional[Transport] = None,
) -> int:
    """Scan, claim, simulate, repeat — until every published cell has a
    result (exit 0) or this worker is evicted (exit 0 after
    checkpoint-and-release).  Exit 2: the transport was unreachable with
    nothing in flight; exit 3: unreachable mid-cell, checkpoint parked.
    """
    from repro.experiments.runner import TraceCache

    options = options or WorkerOptions()
    chaos = chaos or WorkerChaos(())
    if transport is None:
        transport = make_transport(
            root=root, endpoint=options.endpoint,
            timeout=options.rpc_timeout, deadline=options.rpc_deadline,
            client_id=worker_id, net_plans=net_plans,
        )
    evict = _EvictFlag()
    evict.install()
    traces = TraceCache()

    def unreachable(exc: TransportUnavailable, when: str) -> None:
        print(f"[{worker_id}] transport unreachable {when}: {exc}",
              file=sys.stderr)
        print(f"[{worker_id}] resume with: "
              f"{transport.resume_command(worker_id)}", file=sys.stderr)

    try:
        return _scan_loop(transport, worker_id, options, chaos, evict,
                          traces, cell_fn)
    except Parked as parked:
        unreachable(parked.cause, "mid-cell")
        if parked.path is not None:
            print(f"[{worker_id}] checkpoint parked at {parked.path}",
                  file=sys.stderr)
        return 3
    except TransportUnavailable as exc:
        unreachable(exc, "(no cell in flight)")
        return 2
    finally:
        transport.close()


def _scan_loop(
    transport: Transport,
    worker_id: str,
    options: WorkerOptions,
    chaos: WorkerChaos,
    evict: _EvictFlag,
    traces,
    cell_fn: Optional[Callable],
) -> int:
    while True:
        if evict.requested:
            return 0
        cells = transport.list_cells()
        if not cells:
            # Attached before the broker published (or mid-prune): wait
            # for cells to appear rather than declaring victory over an
            # empty directory.  SIGTERM still exits the loop above.
            time.sleep(options.poll_interval)
            continue
        done = transport.done_cids()
        pending = [cid for cid in cells if cid not in done]
        if not pending:
            return 0
        ran_one = False
        now = time.time()
        for cid in pending:
            if evict.requested:
                return 0
            try:
                cell = transport.read_cell(cid)
            except KeyError:
                continue  # pruned mid-scan
            except TransportUnavailable:
                raise
            except Exception:
                continue  # mid-rewrite or damaged: next poll
            if cell.not_before > now:
                continue
            lease = transport.claim(cell, worker_id, options.lease_ttl)
            if lease is None:
                continue  # raced another worker; the transport decided
            if cid in transport.done_cids():
                # The previous holder finished and released between our
                # scan above and the claim; every completion writes its
                # result *before* releasing, so this re-check (now that
                # we hold the lease) is race-free.
                transport.release(lease)
                continue
            try:
                result = _execute_cell(
                    transport, cell, lease, options, chaos, evict, traces,
                    cell_fn=cell_fn,
                )
            except Evicted:
                # Checkpoint already written (and shipped) by the hook;
                # hand the lease back marked released so the broker
                # reclaims instantly.
                try:
                    transport.heartbeat(lease, state="released")
                except (LeaseLost, TransportError):
                    pass
                return 0
            except Parked:
                raise
            except Exception as exc:  # deterministic failure: report it
                result = CellResult(
                    cid=cell.cid, key=cell.key, worker=worker_id,
                    attempt=cell.attempt, status="error", kind="error",
                    error_type=type(exc).__name__, message=str(exc),
                )
            try:
                transport.write_result(result, lease=lease)
            except Fenced:
                # Zombie completion: the lease service refused our stale
                # token — the winner's result (or a reclaim) stands.
                pass
            transport.release(lease)
            chaos.cell_index += 1
            chaos.stalled = False
            chaos.drop_lease = False
            ran_one = True
            if options.oneshot:
                return 0
            break  # rescan: claimability may have changed
        if not ran_one:
            time.sleep(options.poll_interval)
    return 0


def _worker_entry(
    root: Optional[str],
    worker_id: str,
    options: WorkerOptions,
    chaos: WorkerChaos,
    cell_fn: Optional[Callable] = None,
    net_plans=(),
) -> None:
    """multiprocessing entry point for broker-spawned workers."""
    sys.exit(worker_loop(root, worker_id, options, chaos, cell_fn,
                         net_plans=net_plans))
