"""Incremental aggregation: fold streamed cell results exactly once.

Workers may legitimately produce *more than one* result for a cell — a
stalled worker finishes as a zombie after its lease was reclaimed, a
double-lease races two workers to the same cell.  The farm's contract is
that each cell is **folded exactly once** into the figures, and that any
duplicate is *verified* against the folded result (the simulator is
deterministic, so duplicates must be bit-identical; a divergent
duplicate is a real correctness finding, counted and surfaced, never
silently dropped).

The :class:`FarmReport` carries the counters the chaos suite asserts
on: completions, failures, duplicates, divergences, reclaims,
evictions, resumes, and — the one that must stay zero whenever a
checkpoint existed — ``cold_restarts``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.farm.lease import CellResult


@dataclass
class FarmReport:
    """Live (and final) accounting of one farmed sweep."""

    #: Cells published to the farm this run.
    cells: int = 0
    #: Cells folded with a SimStats payload.
    completed: int = 0
    #: Cells folded with a terminal error.
    failed: int = 0
    #: Extra results for already-folded cells, verified bit-identical.
    duplicates: int = 0
    #: Extra results that *differed* from the folded result (bug!).
    divergent: int = 0
    #: Leases reclaimed after TTL expiry or wall-clock timeout.
    reclaims: int = 0
    #: Leases handed back voluntarily (spot eviction / graceful drain).
    evictions: int = 0
    #: Folded attempts that resumed from a checkpoint (start_cycle > 0).
    resumes: int = 0
    #: Folded attempts that started from cycle 0 *despite* a checkpoint
    #: existing when the cell was reclaimed.  The chaos suite pins this
    #: to zero: reclaim must resume, never restart.
    cold_restarts: int = 0
    #: Local worker processes respawned after dying.
    respawns: int = 0
    divergent_keys: List[str] = field(default_factory=list)

    @property
    def folded(self) -> int:
        return self.completed + self.failed

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    def progress_line(self, active_leases: int = 0) -> str:
        """One human line for live progress displays."""
        parts = [f"{self.folded}/{self.cells} cells",
                 f"{active_leases} leased"]
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.reclaims:
            parts.append(f"{self.reclaims} reclaimed")
        if self.evictions:
            parts.append(f"{self.evictions} evicted")
        if self.resumes:
            parts.append(f"{self.resumes} resumed")
        if self.duplicates:
            parts.append(f"{self.duplicates} deduplicated")
        if self.divergent:
            parts.append(f"{self.divergent} DIVERGENT")
        if self.cold_restarts:
            parts.append(f"{self.cold_restarts} COLD-RESTARTED")
        return "farm: " + ", ".join(parts)


class Aggregator:
    """Exactly-once folding of :class:`~repro.farm.lease.CellResult`
    envelopes, with duplicate verification and resume accounting."""

    def __init__(self, report: Optional[FarmReport] = None) -> None:
        self.report = report or FarmReport()
        self.folded: Dict[str, CellResult] = {}       # cid -> first result
        #: (cid, attempt) pairs the broker expects to resume — a
        #: checkpoint existed when the attempt's cell was reclaimed.
        self.expect_resume: Set[tuple] = set()

    def is_folded(self, cid: str) -> bool:
        return cid in self.folded

    def fold(self, result: CellResult) -> str:
        """Fold one streamed result.  Returns what happened:
        ``"folded"`` (first result for the cell — count it and pass it
        on), ``"duplicate"`` (bit-identical re-completion, dropped), or
        ``"divergent"`` (a duplicate that *differs* — counted, flagged,
        still dropped so the first fold stays authoritative)."""
        first = self.folded.get(result.cid)
        if first is not None:
            if self._identical(first, result):
                self.report.duplicates += 1
                return "duplicate"
            self.report.divergent += 1
            self.report.divergent_keys.append(result.key)
            return "divergent"
        self.folded[result.cid] = result
        if result.status == "ok":
            self.report.completed += 1
            if result.start_cycle > 0:
                self.report.resumes += 1
            elif (result.cid, result.attempt) in self.expect_resume:
                self.report.cold_restarts += 1
        else:
            self.report.failed += 1
        return "folded"

    @staticmethod
    def _identical(a: CellResult, b: CellResult) -> bool:
        """Bit-identical *outcome*: the stats payload for completions,
        the error identity for failures.  Worker name, attempt number,
        wall-clock, and resume point legitimately differ between the
        folded result and a zombie's duplicate."""
        if a.status != b.status:
            return False
        if a.status == "ok":
            # Column (vector) results carry per-lane payloads instead of
            # a single stats dict; both must match bit-for-bit.
            return (a.stats == b.stats and a.lane_stats == b.lane_stats
                    and a.lane_errors == b.lane_errors)
        return a.error_type == b.error_type
