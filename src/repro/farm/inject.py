"""Farm fault injection: prove the lease protocol survives real failure.

The third injection registry, completing the family: where
:mod:`repro.audit.inject` corrupts in-memory bookkeeping and
:mod:`repro.store.inject` corrupts bytes on disk, this one breaks the
*distributed* layer — it kills, stalls, orphans, evicts, and
double-leases workers at deterministic points so the chaos suite can
assert the farm's contract: exactly-once cell completion, zero lost
work, and resume-from-checkpoint (never restart-from-cycle-0) after any
reclaim.

Each :class:`FarmFault` fires from inside a worker's per-cycle hook when
its :class:`InjectPlan` matches (worker index, cell index within that
worker's lifetime, simulation cycle) — keyed to the deterministic
simulation clock, never to wall time, so a red chaos run is a real
finding, not flake.

The **network** faults (:class:`NetPlan`, ``net-*``) break the wire
instead of the process: they drop, delay, disconnect, duplicate, and
stale-replay individual RPCs on the HTTP lease transport, keyed to the
client's deterministic RPC *sequence number* — the distributed-clock
analogue of the simulation cycle.  They exercise the other half of the
farm's contract: idempotent request ids, fencing tokens, and the shared
retry policy must together keep folded results bit-identical to a
fault-free run.
"""

from __future__ import annotations

import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class InjectPlan:
    """One scheduled fault: *which* worker, *when*, *what*."""

    #: Registry name: kill | stall | orphan | double-lease | evict.
    fault: str
    #: Index of the spawned worker the plan binds to (workers respawned
    #: after a fault get fresh indices, so a plan fires at most once).
    worker: int = 0
    #: The n-th cell this worker runs (0-based) the fault applies to.
    cell_index: int = 0
    #: Simulation cycle (within that cell) at which the fault fires.
    after_cycles: int = 500

    def to_dict(self) -> Dict:
        return {"fault": self.fault, "worker": self.worker,
                "cell_index": self.cell_index,
                "after_cycles": self.after_cycles}

    @classmethod
    def from_dict(cls, data: Dict) -> "InjectPlan":
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "InjectPlan":
        """Parse the CLI form ``fault[:worker=N][:cell=N][:cycles=N]``."""
        parts = text.split(":")
        plan = {"fault": parts[0]}
        keys = {"worker": "worker", "cell": "cell_index",
                "cycles": "after_cycles"}
        for part in parts[1:]:
            name, _, value = part.partition("=")
            if name not in keys or not value:
                raise ValueError(f"bad inject spec {text!r}")
            plan[keys[name]] = int(value)
        if plan["fault"] not in FAULTS:
            raise ValueError(
                f"unknown fault {plan['fault']!r} "
                f"(known: {', '.join(sorted(FAULTS))})"
            )
        return cls(**plan)


@dataclass
class WorkerChaos:
    """Per-worker fault state, consulted from the cell's cycle hook."""

    plans: Sequence[InjectPlan] = ()
    cell_index: int = 0
    fired: set = field(default_factory=set)
    #: Set by the ``stall`` fault: heartbeats stop, simulation continues.
    stalled: bool = False
    #: Wall-clock drag per hook check while stalled — a wedged host is
    #: slow at *everything*, which is also what guarantees the lease
    #: outlives its TTL so the reclaim-and-deduplicate path is exercised.
    stall_delay: float = 0.1
    #: Set by the ``double-lease`` fault: the worker must shed its lease
    #: (the drop itself is done by the worker, which owns the lease).
    drop_lease: bool = False

    def check(self, machine) -> None:
        """Fire any plan whose (cell, cycle) point has been reached."""
        for index, plan in enumerate(self.plans):
            if index in self.fired:
                continue
            if plan.cell_index != self.cell_index:
                continue
            if machine.now < plan.after_cycles:
                continue
            self.fired.add(index)
            FAULTS[plan.fault].apply(self)


@dataclass(frozen=True)
class FarmFault:
    """One injectable distributed failure."""

    name: str
    description: str
    #: What the chaos suite must observe the farm do about it.
    expect: str
    apply: Callable[[WorkerChaos], None]


def _kill(chaos: WorkerChaos) -> None:
    """SIGKILL mid-cell: no cleanup, no release — the hard crash an OOM
    killer or a pulled plug produces."""
    os.kill(os.getpid(), signal.SIGKILL)


def _evict(chaos: WorkerChaos) -> None:
    """Spot-instance eviction notice: SIGTERM self; the worker's handler
    must checkpoint and release within the grace budget."""
    os.kill(os.getpid(), signal.SIGTERM)


def _orphan(chaos: WorkerChaos) -> None:
    """The worker process exits silently mid-cell, leaving its lease
    behind — a host that vanished without dying loudly."""
    sys.stdout.flush()
    os._exit(3)


def _stall(chaos: WorkerChaos) -> None:
    """Heartbeats stop and the simulation slows to a crawl — a wedged
    I/O path or a GC-of-death.  The broker must reclaim on TTL; the
    stalled worker becomes a zombie whose late result is deduplicated."""
    chaos.stalled = True


def _double_lease(chaos: WorkerChaos) -> None:
    """The worker sheds its lease mid-cell (as if the lease file were
    lost by the shared filesystem) but keeps simulating: another worker
    will claim the same cell, and two results will race.  Exactly-once
    folding must keep one and verify the duplicate is bit-identical."""
    chaos.drop_lease = True


FAULTS: Dict[str, FarmFault] = {
    f.name: f
    for f in (
        FarmFault("kill", "SIGKILL the worker mid-cell (hard crash)",
                  "lease expires; cell reclaimed and resumed from its "
                  "latest checkpoint", _kill),
        FarmFault("evict", "SIGTERM the worker (spot eviction)",
                  "worker checkpoints and releases within the grace "
                  "budget; cell resumes elsewhere", _evict),
        FarmFault("orphan", "worker exits silently without releasing",
                  "lease expires; cell reclaimed", _orphan),
        FarmFault("stall", "heartbeats stop, simulation continues",
                  "lease expires; duplicate result deduplicated "
                  "bit-identically", _stall),
        FarmFault("double-lease", "lease lost mid-cell, worker keeps "
                  "running", "two workers complete the same cell; "
                  "exactly one completion is folded", _double_lease),
    )
}


# ======================================================== network faults


@dataclass(frozen=True)
class NetPlan:
    """One scheduled *wire* fault on the HTTP lease transport.

    Fires when the target worker's RPC sequence counter reaches ``seq``
    (its ``op``-specific counter when ``op`` is set, the client-global
    one otherwise), for ``count`` consecutive wire attempts.  Sequence
    numbers advance per wire *attempt* — a retry of a dropped request is
    a new number — so a plan's window is deterministic for a given
    request pattern, never a function of wall time.
    """

    #: Registry name: net-drop | net-delay | net-disconnect |
    #: net-duplicate | net-stale.
    fault: str
    #: Index of the spawned worker whose transport the plan binds to.
    worker: int = 0
    #: RPC operation to count ("" = every operation, global counter).
    op: str = ""
    #: First matching sequence number (0-based) the fault fires at.
    seq: int = 0
    #: How many consecutive matching wire attempts are affected.
    count: int = 1
    #: Added latency in seconds (``net-delay`` only).
    delay: float = 0.05

    def to_dict(self) -> Dict:
        return {"fault": self.fault, "worker": self.worker, "op": self.op,
                "seq": self.seq, "count": self.count, "delay": self.delay}

    @classmethod
    def from_dict(cls, data: Dict) -> "NetPlan":
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "NetPlan":
        """Parse ``net-fault[:worker=N][:op=NAME][:seq=N][:count=N]
        [:delay=F]``."""
        parts = text.split(":")
        plan: Dict = {"fault": parts[0]}
        for part in parts[1:]:
            name, _, value = part.partition("=")
            if not value or name not in ("worker", "op", "seq", "count",
                                         "delay"):
                raise ValueError(f"bad inject spec {text!r}")
            if name == "op":
                plan[name] = value
            elif name == "delay":
                plan[name] = float(value)
            else:
                plan[name] = int(value)
        if plan["fault"] not in NET_FAULTS:
            raise ValueError(
                f"unknown network fault {plan['fault']!r} "
                f"(known: {', '.join(sorted(NET_FAULTS))})"
            )
        return cls(**plan)


@dataclass
class NetworkChaos:
    """Per-client wire-fault state, consulted by the HTTP transport on
    every wire attempt.  Purely counter-driven: the same request
    pattern always meets the same faults."""

    plans: Sequence[NetPlan] = ()
    seq: int = 0
    op_seq: Dict[str, int] = field(default_factory=dict)

    def intercept(self, op: str) -> Optional[NetPlan]:
        """Advance the sequence counters for one wire attempt of ``op``
        and return the first matching plan (or None)."""
        global_n = self.seq
        self.seq += 1
        op_n = self.op_seq.get(op, 0)
        self.op_seq[op] = op_n + 1
        for plan in self.plans:
            if plan.op and plan.op != op:
                continue
            n = op_n if plan.op else global_n
            if plan.seq <= n < plan.seq + plan.count:
                return plan
        return None


NET_FAULTS: Dict[str, FarmFault] = {
    f.name: f
    for f in (
        FarmFault("net-drop", "the request never reaches the service",
                  "retried under the shared retry policy; the "
                  "idempotent request id makes the retry safe", None),
        FarmFault("net-delay", "the round-trip is slowed by `delay` "
                  "seconds", "the per-RPC timeout bounds the wait; the "
                  "sweep's folded stats are unchanged", None),
        FarmFault("net-disconnect", "the request executes server-side "
                  "but the connection dies before the response",
                  "the retry replays the same request id and is "
                  "answered from the server's response cache — "
                  "exactly-once, no double-claim, no double-fold", None),
        FarmFault("net-duplicate", "the request is transmitted twice",
                  "the second transmission is deduplicated by request "
                  "id server-side", None),
        FarmFault("net-stale", "a previous response for this operation "
                  "is replayed (misbehaving proxy)", "the client "
                  "detects the request-id mismatch and retries", None),
    )
}


# ============================================================ plan wiring


def parse_plan(text: str):
    """Parse one CLI fault spec into the right plan class (process
    faults vs ``net-*`` wire faults)."""
    if text.partition(":")[0].startswith("net-"):
        return NetPlan.parse(text)
    return InjectPlan.parse(text)


def normalize_plans(inject) -> Tuple[object, ...]:
    """Coerce a mixed sequence of plan objects / CLI strings / dicts
    into plan instances (both process and network kinds)."""
    plans = []
    for entry in inject or ():
        if isinstance(entry, (InjectPlan, NetPlan)):
            plans.append(entry)
        elif isinstance(entry, str):
            plans.append(parse_plan(entry))
        elif isinstance(entry, dict):
            if str(entry.get("fault", "")).startswith("net-"):
                plans.append(NetPlan.from_dict(entry))
            else:
                plans.append(InjectPlan.from_dict(entry))
        else:
            raise TypeError(f"bad inject entry {entry!r}")
    return tuple(plans)


def plans_for_worker(
    plans: Sequence, worker_index: int
) -> Tuple[InjectPlan, ...]:
    return tuple(p for p in plans
                 if isinstance(p, InjectPlan) and p.worker == worker_index)


def net_plans_for_worker(
    plans: Sequence, worker_index: int
) -> Tuple[NetPlan, ...]:
    return tuple(p for p in plans
                 if isinstance(p, NetPlan) and p.worker == worker_index)


def chaos_for_worker(
    plans: Sequence, worker_index: Optional[int]
) -> WorkerChaos:
    if worker_index is None:
        return WorkerChaos(())
    return WorkerChaos(plans_for_worker(plans, worker_index))
