"""Farm fault injection: prove the lease protocol survives real failure.

The third injection registry, completing the family: where
:mod:`repro.audit.inject` corrupts in-memory bookkeeping and
:mod:`repro.store.inject` corrupts bytes on disk, this one breaks the
*distributed* layer — it kills, stalls, orphans, evicts, and
double-leases workers at deterministic points so the chaos suite can
assert the farm's contract: exactly-once cell completion, zero lost
work, and resume-from-checkpoint (never restart-from-cycle-0) after any
reclaim.

Each :class:`FarmFault` fires from inside a worker's per-cycle hook when
its :class:`InjectPlan` matches (worker index, cell index within that
worker's lifetime, simulation cycle) — keyed to the deterministic
simulation clock, never to wall time, so a red chaos run is a real
finding, not flake.
"""

from __future__ import annotations

import os
import signal
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class InjectPlan:
    """One scheduled fault: *which* worker, *when*, *what*."""

    #: Registry name: kill | stall | orphan | double-lease | evict.
    fault: str
    #: Index of the spawned worker the plan binds to (workers respawned
    #: after a fault get fresh indices, so a plan fires at most once).
    worker: int = 0
    #: The n-th cell this worker runs (0-based) the fault applies to.
    cell_index: int = 0
    #: Simulation cycle (within that cell) at which the fault fires.
    after_cycles: int = 500

    def to_dict(self) -> Dict:
        return {"fault": self.fault, "worker": self.worker,
                "cell_index": self.cell_index,
                "after_cycles": self.after_cycles}

    @classmethod
    def from_dict(cls, data: Dict) -> "InjectPlan":
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "InjectPlan":
        """Parse the CLI form ``fault[:worker=N][:cell=N][:cycles=N]``."""
        parts = text.split(":")
        plan = {"fault": parts[0]}
        keys = {"worker": "worker", "cell": "cell_index",
                "cycles": "after_cycles"}
        for part in parts[1:]:
            name, _, value = part.partition("=")
            if name not in keys or not value:
                raise ValueError(f"bad inject spec {text!r}")
            plan[keys[name]] = int(value)
        if plan["fault"] not in FAULTS:
            raise ValueError(
                f"unknown fault {plan['fault']!r} "
                f"(known: {', '.join(sorted(FAULTS))})"
            )
        return cls(**plan)


@dataclass
class WorkerChaos:
    """Per-worker fault state, consulted from the cell's cycle hook."""

    plans: Sequence[InjectPlan] = ()
    cell_index: int = 0
    fired: set = field(default_factory=set)
    #: Set by the ``stall`` fault: heartbeats stop, simulation continues.
    stalled: bool = False
    #: Wall-clock drag per hook check while stalled — a wedged host is
    #: slow at *everything*, which is also what guarantees the lease
    #: outlives its TTL so the reclaim-and-deduplicate path is exercised.
    stall_delay: float = 0.1
    #: Set by the ``double-lease`` fault: the worker must shed its lease
    #: (the drop itself is done by the worker, which owns the lease).
    drop_lease: bool = False

    def check(self, machine) -> None:
        """Fire any plan whose (cell, cycle) point has been reached."""
        for index, plan in enumerate(self.plans):
            if index in self.fired:
                continue
            if plan.cell_index != self.cell_index:
                continue
            if machine.now < plan.after_cycles:
                continue
            self.fired.add(index)
            FAULTS[plan.fault].apply(self)


@dataclass(frozen=True)
class FarmFault:
    """One injectable distributed failure."""

    name: str
    description: str
    #: What the chaos suite must observe the farm do about it.
    expect: str
    apply: Callable[[WorkerChaos], None]


def _kill(chaos: WorkerChaos) -> None:
    """SIGKILL mid-cell: no cleanup, no release — the hard crash an OOM
    killer or a pulled plug produces."""
    os.kill(os.getpid(), signal.SIGKILL)


def _evict(chaos: WorkerChaos) -> None:
    """Spot-instance eviction notice: SIGTERM self; the worker's handler
    must checkpoint and release within the grace budget."""
    os.kill(os.getpid(), signal.SIGTERM)


def _orphan(chaos: WorkerChaos) -> None:
    """The worker process exits silently mid-cell, leaving its lease
    behind — a host that vanished without dying loudly."""
    sys.stdout.flush()
    os._exit(3)


def _stall(chaos: WorkerChaos) -> None:
    """Heartbeats stop and the simulation slows to a crawl — a wedged
    I/O path or a GC-of-death.  The broker must reclaim on TTL; the
    stalled worker becomes a zombie whose late result is deduplicated."""
    chaos.stalled = True


def _double_lease(chaos: WorkerChaos) -> None:
    """The worker sheds its lease mid-cell (as if the lease file were
    lost by the shared filesystem) but keeps simulating: another worker
    will claim the same cell, and two results will race.  Exactly-once
    folding must keep one and verify the duplicate is bit-identical."""
    chaos.drop_lease = True


FAULTS: Dict[str, FarmFault] = {
    f.name: f
    for f in (
        FarmFault("kill", "SIGKILL the worker mid-cell (hard crash)",
                  "lease expires; cell reclaimed and resumed from its "
                  "latest checkpoint", _kill),
        FarmFault("evict", "SIGTERM the worker (spot eviction)",
                  "worker checkpoints and releases within the grace "
                  "budget; cell resumes elsewhere", _evict),
        FarmFault("orphan", "worker exits silently without releasing",
                  "lease expires; cell reclaimed", _orphan),
        FarmFault("stall", "heartbeats stop, simulation continues",
                  "lease expires; duplicate result deduplicated "
                  "bit-identically", _stall),
        FarmFault("double-lease", "lease lost mid-cell, worker keeps "
                  "running", "two workers complete the same cell; "
                  "exactly one completion is folded", _double_lease),
    )
}


def plans_for_worker(
    plans: Sequence[InjectPlan], worker_index: int
) -> Tuple[InjectPlan, ...]:
    return tuple(p for p in plans if p.worker == worker_index)


def chaos_for_worker(
    plans: Sequence[InjectPlan], worker_index: Optional[int]
) -> WorkerChaos:
    if worker_index is None:
        return WorkerChaos(())
    return WorkerChaos(plans_for_worker(plans, worker_index))
