"""HTTP lease-transport client: the wire half of the farm protocol.

Speaks JSON to :mod:`repro.farm.server` with three layers of defense,
all stdlib:

* **Retry with classification** — every RPC runs under the shared
  :func:`repro.retry.call_with_retry` loop.  Connection failures,
  timeouts, and 5xx responses are *transient* (retry with backoff,
  jittered per client+op so a server restart doesn't trigger a
  thundering herd); protocol verdicts (``fenced``) and 4xx responses
  are *fatal* (raise immediately — retrying a verdict cannot change
  it).  When the policy's deadline or attempt budget is spent the
  caller gets a typed :class:`~repro.farm.transport.TransportUnavailable`
  carrying the endpoint, attempt count, and final error — never a raw
  socket traceback, never a hang.

* **Idempotent request ids** — every mutating request carries
  ``rid = "<client>.<counter>"`` (a deterministic counter, so chaos
  runs replay identically).  A retry after a torn connection re-sends
  the same rid and the server answers from its replay cache; the
  client also verifies the echoed rid, so a stale response (replayed
  by a broken proxy, or injected by ``net-stale``) is detected and
  retried rather than mistaken for the answer.

* **Fencing tokens** — the claim's token rides every lease write;
  ``fenced`` comes back as :class:`~repro.farm.transport.Fenced` (or
  :class:`~repro.farm.lease.LeaseLost` for heartbeats, matching the
  filesystem transport's contract).

Deterministic network chaos (:class:`~repro.farm.inject.NetworkChaos`)
hooks the single wire choke-point ``_wire``: drops, delays,
disconnects, duplicates, and stale replays are injected by RPC
sequence number, underneath the retry loop — exactly where a real
network would fail.
"""

from __future__ import annotations

import base64
import json
import os
import socket
import tempfile
import time
import urllib.error
import urllib.request
from http.client import HTTPException
from typing import Dict, List, Optional, Set

from repro.farm.inject import NetworkChaos
from repro.farm.lease import CellResult, CellSpec, Lease, LeaseLost
from repro.farm.transport import (
    Fenced,
    RpcError,
    Transport,
    TransportUnavailable,
)
from repro.retry import RetryExhausted, RetryPolicy, call_with_retry


class _Transient(Exception):
    """One wire attempt failed retryably (connection refused, timeout,
    5xx, injected drop/disconnect, stale response).  Internal: the retry
    loop consumes these; callers only ever see the typed terminal
    :class:`TransportUnavailable`."""


class HttpTransport(Transport):
    """Client for the HTTP lease service (both halves of the protocol)."""

    #: Retry schedule for transient wire failures.  Fast and tight: the
    #: lease service is LAN-close, and the per-call ``deadline`` is the
    #: real budget.  Class attributes so tests can squeeze them.
    retry_base = 0.05
    retry_cap = 2.0

    def __init__(self, endpoint: str, *, client_id: str = "client",
                 timeout: float = 10.0, deadline: float = 60.0,
                 chaos: Optional[NetworkChaos] = None) -> None:
        self.endpoint = endpoint.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout
        self.policy = RetryPolicy(base=self.retry_base, cap=self.retry_cap,
                                  deadline=deadline)
        self.chaos = chaos
        self._rid_counter = 0
        self._cells: Dict[str, CellSpec] = {}
        self._seen_results: Set[tuple] = set()
        self._stale_cache: Dict[str, Dict] = {}
        self._spool: Optional[str] = None

    # ------------------------------------------------------------- wire

    def _next_rid(self) -> str:
        # A deterministic counter, not a UUID: chaos runs must replay
        # bit-identically, and uniqueness only needs to span this
        # client's lifetime (the id is scoped by client_id).
        self._rid_counter += 1
        return f"{self.client_id}.{self._rid_counter}"

    def _send(self, path: str, payload: Optional[Dict]) -> Dict:
        """One real HTTP round-trip; raises :class:`_Transient` for
        anything a retry could fix and :class:`RpcError` for verdicts."""
        url = f"{self.endpoint}{path}"
        if payload is None:
            request = urllib.request.Request(url, method="GET")
        else:
            request = urllib.request.Request(
                url, data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            if exc.code >= 500:
                raise _Transient(f"HTTP {exc.code} from {url}") from exc
            raise RpcError(
                f"{url} rejected the request: HTTP {exc.code} "
                f"{exc.read().decode('utf-8', 'replace')[:200]}") from exc
        except (urllib.error.URLError, HTTPException, socket.timeout,
                ConnectionError, OSError) as exc:
            raise _Transient(f"{type(exc).__name__}: {exc}") from exc
        except (json.JSONDecodeError, ValueError) as exc:
            raise _Transient(f"undecodable response from {url}: {exc}") from exc

    def _wire(self, op: str, path: str, payload: Optional[Dict]) -> Dict:
        """One wire *attempt*: the chaos interception point.  Every call
        advances the injection sequence counters, retries included."""
        plan = self.chaos.intercept(op) if self.chaos is not None else None
        if plan is None:
            response = self._send(path, payload)
            self._stale_cache[op] = response
            return response
        if plan.fault == "net-drop":
            # Never transmitted: indistinguishable from a routing hole.
            raise _Transient(f"injected net-drop of {op}")
        if plan.fault == "net-delay":
            time.sleep(plan.delay)
            response = self._send(path, payload)
            self._stale_cache[op] = response
            return response
        if plan.fault == "net-disconnect":
            # The request EXECUTES server-side; the response is lost.
            # This is the fault idempotent rids exist for: the retry
            # resends the same rid and gets the cached answer.
            self._send(path, payload)
            raise _Transient(f"injected net-disconnect after {op} executed")
        if plan.fault == "net-duplicate":
            self._send(path, payload)
            response = self._send(path, payload)
            self._stale_cache[op] = response
            return response
        if plan.fault == "net-stale":
            # Replay the previous response for this op (a misbehaving
            # proxy); with no history it degrades to a drop.  The rid
            # check in _rpc unmasks it.
            if op in self._stale_cache:
                return dict(self._stale_cache[op])
            raise _Transient(f"injected net-stale of {op} (no history)")
        raise RpcError(f"unknown injected network fault {plan.fault!r}")

    def _rpc(self, op: str, path: str,
             payload: Optional[Dict] = None) -> Dict:
        """One logical RPC: rid-stamped, retried, verified."""
        rid = None
        if payload is not None:
            rid = self._next_rid()
            payload = {**payload, "rid": rid}

        def attempt() -> Dict:
            response = self._wire(op, path, payload)
            if rid is not None and response.get("rid") != rid:
                # A response for some *other* request (stale replay):
                # not ours, retry until the real answer arrives.
                raise _Transient(
                    f"rid mismatch on {op}: sent {rid}, "
                    f"got {response.get('rid')!r}")
            return response

        try:
            return call_with_retry(
                attempt, policy=self.policy,
                retryable=lambda exc: isinstance(exc, _Transient),
                token=f"{self.client_id}|{op}",
            )
        except RetryExhausted as exc:
            raise TransportUnavailable(
                f"lease service {self.endpoint} unreachable: {op} failed "
                f"({exc})", endpoint=self.endpoint, attempts=exc.attempts,
                elapsed=exc.elapsed, last=exc.last,
            ) from exc

    # ------------------------------------------------------ worker half

    @property
    def checkpoint_dir(self) -> str:
        if self._spool is None:
            # A private local spool: snapshots are written here by the
            # runner, then shipped through the service — nothing is
            # shared with other hosts.
            self._spool = tempfile.mkdtemp(prefix="repro-farm-spool-")
        return self._spool

    def _cell_from_wire(self, data: Dict) -> CellSpec:
        data = dict(data)
        not_before_in = data.pop("not_before_in", 0.0)
        cell = CellSpec.from_dict(data)
        # Re-anchor the server's backoff delta on the local clock: the
        # wire never carries cross-host timestamps.
        cell.not_before = time.time() + not_before_in if not_before_in else 0.0
        return cell

    def list_cells(self) -> List[str]:
        response = self._rpc("cells", "/cells")
        self._cells = {
            d["cid"]: self._cell_from_wire(d)
            for d in response.get("cells", ())
        }
        return sorted(self._cells)

    def read_cell(self, cid: str) -> CellSpec:
        # Served from the last scan's snapshot — the same freshness a
        # directory listing gives the filesystem transport.
        if cid not in self._cells:
            self.list_cells()
        if cid not in self._cells:
            raise KeyError(cid)
        return self._cells[cid]

    def done_cids(self) -> Set[str]:
        response = self._rpc("done", "/done")
        return set(response.get("cids", ()))

    def claim(self, cell: CellSpec, worker: str, ttl: float) -> Optional[Lease]:
        response = self._rpc("claim", "/claim", {
            "cid": cell.cid, "worker": worker, "ttl": ttl,
            "attempt": cell.attempt,
        })
        if "lease" in response:
            return Lease.from_dict(response["lease"])
        return None  # taken / backoff / stale-attempt / done

    def heartbeat(self, lease: Lease, *, cycle: int = 0, committed: int = 0,
                  state: Optional[str] = None) -> None:
        response = self._rpc("heartbeat", "/heartbeat", {
            "cid": lease.cid, "token": lease.token, "cycle": cycle,
            "committed": committed, "state": state,
        })
        if response.get("code") == "fenced":
            # Same contract as the filesystem transport: a fenced
            # heartbeat is a lost lease, deterministically.
            raise LeaseLost(
                f"lease for {lease.cid} fenced out (token {lease.token})")

    def release(self, lease: Lease) -> bool:
        response = self._rpc("release", "/release", {
            "cid": lease.cid, "token": lease.token,
        })
        return bool(response.get("released"))

    def write_result(self, result: CellResult,
                     lease: Optional[Lease] = None) -> None:
        response = self._rpc("complete", "/complete", {
            "result": result.to_dict(),
            "token": lease.token if lease is not None else 0,
        })
        if response.get("code") == "fenced":
            raise Fenced(
                f"completion of {result.cid} rejected: stale fencing token")

    def fetch_checkpoint(self, cell: CellSpec, path: str) -> bool:
        response = self._rpc("fetch-checkpoint", "/checkpoint?cid=" + cell.cid)
        if "data" not in response:
            return False
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(base64.b64decode(response["data"].encode("ascii")))
        return True

    def store_checkpoint(self, cell: CellSpec, lease: Lease,
                         path: str) -> None:
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError:
            return  # nothing saved yet this attempt
        response = self._rpc("store-checkpoint", "/checkpoint", {
            "cid": cell.cid, "token": lease.token,
            "data": base64.b64encode(raw).decode("ascii"),
        })
        if response.get("code") == "fenced":
            raise Fenced(
                f"checkpoint upload for {cell.cid} rejected: stale token")

    # ------------------------------------------------------ broker half

    def publish(self, cell: CellSpec) -> CellSpec:
        response = self._rpc("publish", "/publish", {"cell": cell.to_dict()})
        return self._cell_from_wire(response["cell"])

    def prune(self, keep: Set[str]) -> None:
        self._rpc("prune", "/prune", {"keep": sorted(keep)})

    def lease_views(self):
        from repro.farm.transport import LeaseView

        response = self._rpc("leases", "/leases")
        views = []
        for data in response.get("leases", ()):
            data = dict(data)
            age = data.pop("age", 0.0)
            held = data.pop("held", 0.0)
            views.append(LeaseView(cid=data["cid"],
                                   lease=Lease.from_dict(data),
                                   age=age, held=held))
        return views

    def scrub_fenced(self, view) -> None:
        # Fenced leases cannot linger server-side: reclaim removes the
        # lease and the fence refuses resurrection, atomically.
        pass

    def reclaim(self, cell: CellSpec, lease, *,
                terminal: Optional[CellResult] = None) -> bool:
        response = self._rpc("reclaim", "/reclaim", {
            "cid": cell.cid,
            "token": getattr(lease, "token", 0),
            "attempt": cell.attempt,
            "released": cell.released,
            # A delta, not a timestamp: the service re-anchors it on its
            # own clock (cross-host clock skew must not stretch fences).
            "backoff": max(0.0, cell.not_before - time.time()),
            "terminal": terminal.to_dict() if terminal is not None else None,
        })
        return bool(response.get("ok"))

    def has_checkpoint(self, cell: CellSpec, path: str) -> bool:
        response = self._rpc("has-checkpoint",
                             "/has-checkpoint?cid=" + cell.cid)
        return bool(response.get("exists"))

    def new_results(self) -> List[CellResult]:
        response = self._rpc("results", "/results")
        out = []
        for data in response.get("results", ()):
            key = (data.get("cid"), data.get("attempt"), data.get("worker"))
            if key in self._seen_results:
                continue
            self._seen_results.add(key)
            out.append(CellResult.from_dict(data))
        return out

    # ------------------------------------------------------------- misc

    def describe(self) -> str:
        return self.endpoint

    def resume_command(self, worker: Optional[str] = None) -> str:
        cmd = f"python -m repro.farm worker --endpoint {self.endpoint}"
        if worker:
            cmd += f" --name {worker}"
        return cmd

    def close(self) -> None:
        # The spool is left on disk deliberately: a parked checkpoint
        # must survive the process that parked it.
        pass
