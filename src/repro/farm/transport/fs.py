"""The shared-filesystem lease backend: PR 6's farm, behind the interface.

Every method is the same primitive the broker and workers called
directly before the transport split — ``O_EXCL`` claims, atomic
envelope rewrites, per-(attempt, worker) result files — so existing
farm roots, journals, and checkpoints remain bit-compatible.  The
fencing token here is the cell's **attempt number**: reclaim rewrites
the spec with a bumped attempt *before* unlinking the lease file, and
heartbeats check that fence before writing (see
:func:`repro.farm.lease.fence_lost`).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Set

from repro.farm import lease as fsl
from repro.farm.lease import CellResult, CellSpec, FarmPaths, Lease
from repro.farm.transport import LeaseView, Transport
from repro.store import ArtifactError, remove_file


class FsTransport(Transport):
    """Lease protocol over one shared journal directory."""

    def __init__(self, root: str) -> None:
        self.paths = FarmPaths(root).ensure()
        self._seen_results: Set[str] = set()

    # ------------------------------------------------------ worker half

    @property
    def checkpoint_dir(self) -> str:
        return self.paths.checkpoints

    def list_cells(self) -> List[str]:
        return fsl.list_cells(self.paths)

    def read_cell(self, cid: str) -> CellSpec:
        try:
            return fsl.read_cell(self.paths.cell(cid))
        except FileNotFoundError:
            raise KeyError(cid) from None

    def done_cids(self) -> Set[str]:
        return set(fsl.list_results(self.paths))

    def claim(self, cell: CellSpec, worker: str, ttl: float) -> Optional[Lease]:
        return fsl.claim(self.paths, cell, worker, ttl)

    def heartbeat(self, lease: Lease, *, cycle: int = 0, committed: int = 0,
                  state: Optional[str] = None) -> None:
        fsl.heartbeat(self.paths, lease, cycle=cycle, committed=committed,
                      state=state)

    def release(self, lease: Lease) -> bool:
        return fsl.release(self.paths, lease)

    def write_result(self, result: CellResult,
                     lease: Optional[Lease] = None) -> None:
        # Zombie duplicates are allowed on disk by design: each
        # (attempt, worker) gets its own file and the broker verifies
        # duplicates bit-identically at fold time.
        fsl.write_result(self.paths, result)

    def fetch_checkpoint(self, cell: CellSpec, path: str) -> bool:
        # Checkpoints already live on the shared mount.
        return os.path.exists(path)

    def store_checkpoint(self, cell: CellSpec, lease: Lease,
                         path: str) -> None:
        pass  # the periodic snapshot already wrote to the shared mount

    # ------------------------------------------------------ broker half

    def publish(self, cell: CellSpec) -> CellSpec:
        cell_path = self.paths.cell(cell.cid)
        if os.path.exists(cell_path):
            try:
                prior = fsl.read_cell(cell_path)
                if prior.key == cell.key:
                    # Resumed farm root: keep the attempt counter and
                    # backoff fence from the interrupted run.
                    cell = prior
            except (ArtifactError, OSError):
                pass  # damaged spec: republish fresh
        fsl.write_cell(self.paths, cell)
        return cell

    def prune(self, keep: Set[str]) -> None:
        for cid in fsl.list_cells(self.paths):
            if cid not in keep:
                for stale in (self.paths.cell(cid), self.paths.lease(cid)):
                    remove_file(stale)

    def lease_views(self) -> List[LeaseView]:
        now = time.time()
        views: List[LeaseView] = []
        for cid in fsl.list_leases(self.paths):
            lease_path = self.paths.lease(cid)
            try:
                lease = fsl.read_lease(lease_path)
            except FileNotFoundError:
                continue
            except ArtifactError:
                # Torn claim from a worker killed mid-create: the file's
                # mtime is the only liveness signal left.
                try:
                    age = now - os.path.getmtime(lease_path)
                except OSError:
                    continue
                views.append(LeaseView(cid=cid, lease=None, age=age,
                                       held=age, torn=True))
                continue
            views.append(LeaseView(
                cid=cid, lease=lease, age=lease.age(now),
                held=now - lease.granted_unix,
            ))
        return views

    def scrub_fenced(self, view: LeaseView) -> None:
        # Ownership-checked like release(): only delete the exact lease
        # the broker observed, never one a new claim just created.
        if view.lease is not None:
            fsl.release(self.paths, view.lease)

    def reclaim(self, cell: CellSpec, lease, *,
                terminal: Optional[CellResult] = None) -> bool:
        if terminal is not None:
            fsl.write_result(self.paths, terminal)
        else:
            # Rewrite the spec (attempt bumped: the fence) while the
            # lease file still exists — no worker can claim the stale
            # attempt in the gap, and in-flight heartbeats lose.
            fsl.write_cell(self.paths, cell)
        remove_file(self.paths.lease(cell.cid))
        return True

    def has_checkpoint(self, cell: CellSpec, path: str) -> bool:
        return os.path.exists(path)

    def new_results(self) -> List[CellResult]:
        out: List[CellResult] = []
        for _cid, path in fsl.iter_results(self.paths):
            if path in self._seen_results:
                continue
            self._seen_results.add(path)
            try:
                out.append(fsl.read_result(path))
            except (ArtifactError, OSError):
                continue  # unreadable result: surfaced by fsck, not lost
        return out

    # ------------------------------------------------------------- misc

    def describe(self) -> str:
        return self.paths.root

    def resume_command(self, worker: Optional[str] = None) -> str:
        cmd = f"python -m repro.farm worker {self.paths.root}"
        if worker:
            cmd += f" --name {worker}"
        return cmd
