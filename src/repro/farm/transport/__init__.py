"""Pluggable lease backends: one protocol, shared filesystem or HTTP.

PR 6's farm spoke directly to a shared directory — ``O_EXCL`` claims,
atomic lease rewrites, result envelopes.  That is one *transport* for
the lease protocol, not the protocol itself.  This package names the
protocol as an interface (:class:`Transport`) and provides two
implementations:

:class:`~repro.farm.transport.fs.FsTransport`
    The PR 6 behavior, verbatim, behind the interface — every operation
    is the same filesystem primitive as before, so journals, cell/lease/
    result envelopes, and checkpoints stay bit-compatible with existing
    farm roots.

:class:`~repro.farm.transport.http.HttpTransport`
    A client for the HTTP/JSON lease service (``python -m repro.farm
    serve``, :mod:`repro.farm.server`): hosts share nothing but a
    network.  Every RPC carries a client-generated request id (retries
    of a half-completed call are deduplicated server-side) and every
    write carries the claim's monotonic fencing token (a zombie that
    wakes up after reclaim is rejected *server-side*, not just detected
    at fold time).  Transient failures retry under one shared
    :class:`~repro.retry.RetryPolicy`; a caller that exhausts its
    deadline gets a typed :class:`TransportUnavailable`, never a hang.

The interface has two halves, mirroring the farm's asymmetry: the
**worker half** (scan, claim, heartbeat, checkpoint, complete, release)
and the **broker half** (publish, observe leases, reclaim, collect
results).  The broker stays the only policy authority — transports are
mechanism only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.farm.lease import CellResult, CellSpec, Lease


class TransportError(RuntimeError):
    """Base class: a lease-transport operation failed."""


class TransportUnavailable(TransportError):
    """The backend is unreachable and the retry policy's deadline or
    attempt budget is exhausted.  Typed and terminal: callers park
    their work and exit with the exact resume command instead of
    hanging.  ``last`` is the final underlying failure."""

    def __init__(self, message: str, *, endpoint: str = "",
                 attempts: int = 0, elapsed: float = 0.0,
                 last: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.endpoint = endpoint
        self.attempts = attempts
        self.elapsed = elapsed
        self.last = last


class Fenced(TransportError):
    """A write carried a stale fencing token: the lease was reclaimed
    (or handed to another worker) after this client claimed it.  A
    verdict, never retried — the holder has deterministically lost."""


class RpcError(TransportError):
    """The backend rejected the request itself (malformed, unknown
    operation, incompatible protocol).  Fatal: retrying cannot help."""


@dataclass
class LeaseView:
    """One live lease as the *broker* observes it, with liveness ages
    computed by the backend that owns the clock (the local clock for
    the filesystem, the server's for HTTP — so clock skew between
    broker and workers can never mis-expire a lease).

    ``torn`` marks an unreadable lease file (a claim torn by a crash
    mid-create, filesystem backend only); ``lease`` is None for those.
    """

    cid: str
    lease: Optional[Lease]
    #: Seconds since the last heartbeat (TTL expiry is ``age > ttl``).
    age: float = 0.0
    #: Seconds since the lease was granted (wall-clock timeout input).
    held: float = 0.0
    torn: bool = False


class Transport:
    """The lease protocol, backend-agnostic.  See the module docstring
    for the two implementations; every method below documents its
    contract, and both backends are differential-tested against each
    other (same sweep, bit-identical folded stats).
    """

    # ------------------------------------------------------ worker half

    #: Directory where this client keeps cell checkpoints locally (the
    #: shared checkpoint dir for the filesystem backend, a private spool
    #: for HTTP — uploads/downloads move them through the server).
    checkpoint_dir: str

    def list_cells(self) -> List[str]:
        """All published cell ids, sorted (deterministic scan order)."""
        raise NotImplementedError

    def read_cell(self, cid: str) -> CellSpec:
        """The current spec for ``cid``.  Raises ``KeyError`` when the
        cell is unknown (pruned mid-scan)."""
        raise NotImplementedError

    def done_cids(self) -> Set[str]:
        """Cell ids that already have at least one streamed result."""
        raise NotImplementedError

    def claim(self, cell: CellSpec, worker: str, ttl: float) -> Optional[Lease]:
        """Try to lease ``cell``; None when somebody else holds it, the
        cell's retry backoff has not elapsed, or ``cell`` is stale (its
        attempt no longer matches the published spec)."""
        raise NotImplementedError

    def heartbeat(self, lease: Lease, *, cycle: int = 0, committed: int = 0,
                  state: Optional[str] = None) -> None:
        """Refresh ``lease``; raises :class:`~repro.farm.lease.LeaseLost`
        when the lease is fenced out, gone, or foreign."""
        raise NotImplementedError

    def release(self, lease: Lease) -> bool:
        """Give the lease back; False when it had already changed hands
        (never an error — release is best-effort by design)."""
        raise NotImplementedError

    def write_result(self, result: CellResult,
                     lease: Optional[Lease] = None) -> None:
        """Stream one finished cell's result back.  The filesystem
        backend accepts zombie duplicates (they coexist per attempt and
        are verified at fold time); the HTTP backend rejects a stale
        fencing token with :class:`Fenced` — server-side, immediately.
        """
        raise NotImplementedError

    def fetch_checkpoint(self, cell: CellSpec, path: str) -> bool:
        """Materialize the cell's latest checkpoint at local ``path``
        if the backend has one; returns whether it did.  No-op (the
        file is already shared) on the filesystem backend."""
        raise NotImplementedError

    def store_checkpoint(self, cell: CellSpec, lease: Lease,
                         path: str) -> None:
        """Persist the local checkpoint at ``path`` so a reclaimed cell
        resumes on any host.  No-op on the filesystem backend; the HTTP
        backend uploads (fenced like any other write)."""
        raise NotImplementedError

    # ------------------------------------------------------ broker half

    def publish(self, cell: CellSpec) -> CellSpec:
        """Publish (or re-publish) one cell; returns the authoritative
        spec — a resumed farm keeps the prior attempt counter and
        backoff fence when the key matches."""
        raise NotImplementedError

    def prune(self, keep: Set[str]) -> None:
        """Withdraw cells not in ``keep`` (and their leases) so workers
        never run work an earlier sweep already journaled."""
        raise NotImplementedError

    def lease_views(self) -> List[LeaseView]:
        """Every live lease, with backend-clock ages (see
        :class:`LeaseView`), sorted by cid."""
        raise NotImplementedError

    def scrub_fenced(self, view: LeaseView) -> None:
        """Remove a lease the fence has already invalidated (its attempt
        predates the published spec's) — debris from a heartbeat that
        raced a reclaim, never a reclaim of live work.  No-op on
        backends where fenced leases cannot linger (HTTP)."""
        raise NotImplementedError

    def reclaim(self, cell: CellSpec, lease, *,
                terminal: Optional[CellResult] = None) -> bool:
        """Take the lease back.  With ``terminal`` the retry budget is
        spent: the terminal error result is streamed instead of the cell
        being re-fenced.  Otherwise ``cell`` carries the bumped attempt
        and backoff fence, and the backend MUST make the fence visible
        before the lease becomes claimable again (that ordering is what
        the heartbeat fence check relies on).  Returns False when the
        lease had already moved on (HTTP: fencing token mismatch)."""
        raise NotImplementedError

    def has_checkpoint(self, cell: CellSpec, path: str) -> bool:
        """Whether a checkpoint for ``cell`` survives (``path`` is the
        filesystem-layout location; HTTP asks the server by cid)."""
        raise NotImplementedError

    def new_results(self) -> List[CellResult]:
        """Results not yet returned by a previous call (the fold
        cursor).  Unreadable result files are skipped, never raised —
        fsck surfaces them."""
        raise NotImplementedError

    # ------------------------------------------------------------- misc

    def describe(self) -> str:
        """Human identity of the backend (root path or endpoint URL)."""
        raise NotImplementedError

    def resume_command(self, worker: Optional[str] = None) -> str:
        """The exact CLI to re-attach a worker to this backend."""
        raise NotImplementedError

    def close(self) -> None:
        """Release client-side resources (idempotent)."""


def make_transport(
    root: Optional[str] = None,
    endpoint: Optional[str] = None,
    *,
    timeout: float = 10.0,
    deadline: float = 60.0,
    client_id: str = "client",
    net_plans=(),
) -> Transport:
    """Build the right backend: ``endpoint`` wins (HTTP), else ``root``
    (shared filesystem).  ``net_plans`` attaches deterministic network
    chaos (:class:`~repro.farm.inject.NetPlan`) to the HTTP client."""
    if endpoint:
        from repro.farm.inject import NetworkChaos
        from repro.farm.transport.http import HttpTransport

        chaos = NetworkChaos(tuple(net_plans)) if net_plans else None
        return HttpTransport(
            endpoint, client_id=client_id, timeout=timeout,
            deadline=deadline, chaos=chaos,
        )
    if not root:
        raise ValueError("a transport needs a farm root or an endpoint")
    from repro.farm.transport.fs import FsTransport

    return FsTransport(root)


__all__ = [
    "Transport",
    "TransportError",
    "TransportUnavailable",
    "Fenced",
    "RpcError",
    "LeaseView",
    "make_transport",
]
