"""The farm broker: publish cells, watch leases, reclaim, fold.

The broker is the farm's only *journal* writer and its only *reclaimer*;
workers only ever touch their own lease.  That asymmetry keeps the
concurrency story auditable:

* **publish** — every (benchmark, scheme) cell becomes a durable
  :class:`~repro.farm.lease.CellSpec` envelope, plus a checksummed
  ``leased``/``heartbeat``/``completed``/``abandoned``/``released``
  line in the sweep journal for each transition it observes, so
  ``fsck`` round-trips the whole history;
* **watch** — polls the transport's lease views; journals new grants,
  relays throttled heartbeat lines (non-durable — losing the last one
  costs nothing), detects expiry (no heartbeat within the TTL) and
  wall-clock timeout, and scrubs fence-stale debris (a lease file
  resurrected by a heartbeat that raced an earlier reclaim — removed
  without burning retry budget, because no live work was lost);
* **reclaim** — an expired/timed-out/evicted lease is journaled
  ``abandoned`` (or ``released``), the cell's attempt is bumped and
  fenced with a jittered, capped backoff
  (:func:`~repro.retry.backoff_delay`), and — crucially — the transport
  makes the bumped spec visible *before* the lease becomes claimable
  again, so no worker can claim the stale attempt in between and an
  in-flight heartbeat deterministically loses.  If a checkpoint exists
  at reclaim time the attempt is marked *must-resume*: a subsequent
  completion that started from cycle 0 is counted as a ``cold_restart``
  (the chaos suite pins that counter to zero).  When the retry budget
  is exhausted the broker streams a terminal error result itself, so
  workers' exit condition (every cell has a result) still converges;
* **fold** — streams results through
  :class:`~repro.farm.aggregate.Aggregator` exactly once per cell into
  ``on_cell_done`` (the same callback :func:`run_matrix` uses for its
  in-process paths, so journaling and figure assembly are identical),
  verifying zombie duplicates bit-identically;
* **drain** — on completion, Ctrl-C, or SIGTERM, live local workers get
  a SIGTERM and ``grace`` seconds to checkpoint-and-release before
  being killed; still-held leases are journaled ``released`` so the
  next run reclaims them instantly instead of waiting out the TTL.

Local workers are fork-spawned processes; *attached* workers (other
shells or hosts — ``python -m repro.farm worker <root>`` on a shared
mount, or ``--endpoint URL`` against the HTTP lease service)
participate identically, because every protocol step above is a
:class:`~repro.farm.transport.Transport` operation, never an
in-process one.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.stats import SimStats
from repro.farm.aggregate import Aggregator, FarmReport
from repro.farm.inject import (
    chaos_for_worker,
    net_plans_for_worker,
    normalize_plans,
)
from repro.farm.lease import CellResult, CellSpec, FarmSpec, cid_of
from repro.farm.transport import make_transport
from repro.farm.worker import WorkerOptions, _worker_entry
from repro.retry import backoff_delay


def run_cells_farm(
    cells: List[Tuple[str, str]],
    width: int,
    spec,
    farm: FarmSpec,
    journal,
    on_cell_done: Callable,
    *,
    cell_timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.5,
    cell_fn: Optional[Callable] = None,
    on_progress: Optional[Callable[[FarmReport, int], None]] = None,
    backend: str = "scalar",
) -> FarmReport:
    """Drive ``cells`` through the farm; every finished cell reaches
    ``on_cell_done(benchmark, scheme, SimStats-or-CellError)`` exactly
    once.  Returns the final :class:`FarmReport`.

    ``backend='vector'`` publishes one *column* cell per benchmark — a
    single lease covering every (benchmark, scheme) lane sharing that
    trace, executed as one batched job on :mod:`repro.vector` — and fans
    each folded column result back out into the same per-cell
    ``on_cell_done`` calls (so the journal still records one line per
    sweep cell, individually resumable).  Columns carry no mid-run
    checkpoint: an evicted column is handed back whole and restarts,
    which the voluntary-release accounting keeps free of retry budget.
    """
    # Lazy: the runner imports repro.farm.lease at module level, so the
    # reverse edge must stay function-local to avoid an import cycle.
    from repro.experiments.journal import cell_key
    from repro.experiments.runner import (
        CellError,
        _mp_context,
        checkpoint_path,
        lane_key,
    )

    if backend == "vector" and cell_fn is not None:
        raise ValueError("cell_fn applies to the scalar backend only")
    farm.paths.ensure()
    plans = normalize_plans(farm.inject)
    # The broker's RPCs are never chaos-injected: fault plans target
    # workers by index, and a broker that lied to itself about the
    # lease state would make every invariant unfalsifiable.
    transport = make_transport(
        root=farm.root, endpoint=farm.endpoint,
        timeout=farm.rpc_timeout, deadline=farm.rpc_deadline,
        client_id="broker",
    )
    ckpt_spec = dataclasses.replace(
        spec, checkpoint_dir=transport.checkpoint_dir)

    # ---------------------------------------------------------- publish
    published: Dict[str, CellSpec] = {}
    meta: Dict[str, Tuple[str, str]] = {}  # cid -> (benchmark, scheme)
    if backend == "vector":
        # One column per benchmark: every scheme lane shares that trace,
        # so the column planner can capacity-group them on one machine,
        # and separate benchmarks stay separate leases for parallelism.
        columns: Dict[str, List[Tuple[str, str]]] = {}
        for benchmark, scheme in cells:
            columns.setdefault(benchmark, []).append((benchmark, scheme))
        units = []
        for benchmark, lanes in columns.items():
            lane_keys = [cell_key(b, s, width, spec) for b, s in lanes]
            key = f"column|{benchmark}|{cid_of('||'.join(lane_keys))}"
            units.append((key, lanes))
    else:
        units = [
            (cell_key(benchmark, scheme, width, spec), [(benchmark, scheme)])
            for benchmark, scheme in cells
        ]
    for key, lanes in units:
        cid = cid_of(key)
        benchmark, scheme = lanes[0]
        cell = transport.publish(CellSpec(
            cid=cid, key=key, benchmark=benchmark, scheme=scheme,
            width=width, spec=dataclasses.asdict(spec),
            backend=backend,
            lanes=[list(lane) for lane in lanes] if backend == "vector" else None,
        ))
        published[cid] = cell
        meta[cid] = (benchmark, scheme)
    # Prune cells from an earlier sweep that are no longer wanted (for
    # example, already journaled as complete) so workers never run them.
    transport.prune(set(published))

    report = FarmReport(cells=len(published))
    agg = Aggregator(report)
    known_leases: Dict[str, Tuple[str, int]] = {}
    journal_hb_at: Dict[str, float] = {}

    def jlease(cell: CellSpec, state: str, worker: str, *,
               durable: bool = True, **extra) -> None:
        if journal is None:
            return
        event = {"key": cell.key, "state": state, "worker": worker,
                 "ts": time.time(), **extra}
        journal.record_lease(event, durable=durable)

    # ---------------------------------------------------- local workers
    ctx = _mp_context()
    options = WorkerOptions(
        lease_ttl=farm.lease_ttl,
        heartbeat_interval=farm.heartbeat_interval,
        poll_interval=farm.poll_interval,
        checkpoint_every=farm.checkpoint_every,
        endpoint=farm.endpoint,
        rpc_timeout=farm.rpc_timeout,
        rpc_deadline=farm.rpc_deadline,
    )
    procs: Dict[str, object] = {}
    spawned: Set[str] = set()
    next_index = 0

    def spawn() -> None:
        nonlocal next_index
        # The pid suffix keeps ids unique across broker incarnations: a
        # hard-killed broker's orphaned workers must never be mistaken
        # for (or heartbeat as) this run's identically-numbered ones.
        worker_id = f"w{next_index}.{os.getpid()}"
        spawned.add(worker_id)
        chaos = chaos_for_worker(plans, next_index)
        net = net_plans_for_worker(plans, next_index)
        proc = ctx.Process(
            target=_worker_entry,
            args=(farm.root, worker_id, options, chaos, cell_fn, net),
            daemon=True,
        )
        proc.start()
        procs[worker_id] = proc
        next_index += 1

    # ------------------------------------------------------------- fold
    def fold_new_results() -> None:
        for result in transport.new_results():
            cid = result.cid
            if cid not in published:
                continue
            if agg.fold(result) != "folded":
                continue
            cell = published[cid]
            jlease(cell, "completed", result.worker,
                   attempt=result.attempt, start_cycle=result.start_cycle)
            if cell.backend == "vector":
                # Fan the column back out: one on_cell_done (and thus
                # one journal line) per lane, exactly as the scalar
                # paths produce.  A terminal broker error for the whole
                # column becomes that same error on every lane.
                for benchmark, scheme in cell.lanes:
                    lkey = lane_key(benchmark, scheme)
                    if result.status != "ok":
                        on_cell_done(benchmark, scheme, CellError(
                            benchmark, scheme, result.kind or "error",
                            result.error_type or "Error",
                            result.message or "", result.attempt,
                            result.elapsed,
                        ))
                    elif lkey in (result.lane_errors or {}):
                        err = result.lane_errors[lkey]
                        on_cell_done(benchmark, scheme, CellError(
                            benchmark, scheme, "error",
                            err.get("error_type") or "Error",
                            err.get("message") or "", result.attempt,
                            result.elapsed,
                        ))
                    else:
                        on_cell_done(benchmark, scheme,
                                     SimStats.from_dict(result.lane_stats[lkey]))
                continue
            benchmark, scheme = meta[cid]
            if result.status == "ok":
                on_cell_done(benchmark, scheme,
                             SimStats.from_dict(result.stats))
            else:
                on_cell_done(benchmark, scheme, CellError(
                    benchmark, scheme, result.kind or "error",
                    result.error_type or "Error", result.message or "",
                    result.attempt, result.elapsed,
                ))

    # ---------------------------------------------------------- reclaim
    def reclaim(cid: str, lease, reason: str) -> None:
        cell = published[cid]
        new_attempt = max(cell.attempt, lease.attempt) + 1
        voluntary = reason == "released"
        if voluntary:
            # Eviction and drain are infrastructure preemption, not cell
            # failure: they never consume retry budget (and never back
            # off — the cell is fine, re-run it at once).
            cell.released += 1
        retries_used = new_attempt - 1 - cell.released
        if retries_used > retries:
            # Retry budget exhausted: the broker itself streams the
            # terminal error so the workers' all-cells-have-results exit
            # condition still converges.
            kind = "timeout" if reason == "timeout" else "crash"
            error_type = "TimeoutError" if kind == "timeout" else "LeaseExpired"
            transport.reclaim(cell, lease, terminal=CellResult(
                cid=cid, key=cell.key, worker="broker",
                attempt=lease.attempt, status="error", kind=kind,
                error_type=error_type,
                message=(f"lease {reason} on attempt {lease.attempt} "
                         f"(held by {lease.worker!r}); retry budget of "
                         f"{retries} exhausted"),
            ))
        else:
            if cell.backend == "scalar" and transport.has_checkpoint(
                cell, checkpoint_path(cell.benchmark, cell.scheme, width,
                                      ckpt_spec)
            ):
                # A checkpoint survives this attempt: the next one MUST
                # resume from it, never restart from cycle 0.
                agg.expect_resume.add((cid, new_attempt))
            cell.attempt = new_attempt
            cell.not_before = time.time() if voluntary else (
                time.time() + backoff_delay(
                    max(1, retries_used), retry_backoff,
                    cap=farm.backoff_cap, token=cell.key,
                )
            )
            # The transport publishes the bumped spec (the fence) before
            # the lease becomes claimable again: no worker can claim the
            # stale attempt in the gap, in-flight heartbeats lose.
            transport.reclaim(cell, lease)
        known_leases.pop(cid, None)

    # ------------------------------------------------------------ watch
    def scan_leases(now: float) -> int:
        active = 0
        for view in transport.lease_views():
            cid = view.cid
            cell = published.get(cid)
            if cell is None:
                continue
            if view.torn:
                # Torn claim from a worker killed mid-create: reclaim it
                # once it is older than the TTL (mtime is all we have).
                if view.age > farm.lease_ttl and not agg.is_folded(cid):
                    report.reclaims += 1
                    jlease(cell, "abandoned", "unknown", reason="unreadable")
                    reclaim(cid, _TornLease(cid, cell), "expired")
                continue
            lease = view.lease
            if lease.attempt < cell.attempt:
                # Fence-stale debris: a heartbeat's atomic rename raced
                # an earlier reclaim's unlink and resurrected the lease
                # file.  The fence already decided that race — scrub the
                # husk without counting a reclaim or burning retry
                # budget, or it would block claims on the live attempt.
                transport.scrub_fenced(view)
                known_leases.pop(cid, None)
                continue
            ident = (lease.worker, lease.attempt)
            if known_leases.get(cid) != ident:
                known_leases[cid] = ident
                journal_hb_at[cid] = now
                jlease(cell, "leased", lease.worker, attempt=lease.attempt,
                       ttl=lease.ttl)
            if agg.is_folded(cid):
                # A zombie finishing a cell that is already folded: let
                # it run — its duplicate result is verified, and drain
                # cleans it up if it outlives the sweep.
                continue
            if lease.state == "released":
                # Spot eviction hand-back: the worker checkpointed and
                # marked the lease; reclaim with no TTL wait.
                report.evictions += 1
                jlease(cell, "released", lease.worker,
                       attempt=lease.attempt, cycle=lease.cycle)
                reclaim(cid, lease, "released")
                continue
            timed_out = (cell_timeout is not None
                         and view.held > cell_timeout)
            if view.age > lease.ttl or timed_out:
                reason = "timeout" if timed_out else "expired"
                report.reclaims += 1
                jlease(cell, "abandoned", lease.worker,
                       attempt=lease.attempt, reason=reason,
                       cycle=lease.cycle)
                reclaim(cid, lease, reason)
                continue
            active += 1
            if now - journal_hb_at.get(cid, 0.0) >= farm.journal_heartbeat_every:
                journal_hb_at[cid] = now
                jlease(cell, "heartbeat", lease.worker, durable=False,
                       attempt=lease.attempt, cycle=lease.cycle,
                       committed=lease.committed)
        return active

    def reap_and_respawn() -> None:
        unfinished = len(agg.folded) < len(published)
        for worker_id, proc in list(procs.items()):
            if proc.is_alive():
                continue
            proc.join()
            del procs[worker_id]
            if not unfinished:
                continue
            if (farm.max_respawns is not None
                    and report.respawns >= farm.max_respawns):
                continue
            report.respawns += 1
            spawn()

    def drain() -> None:
        alive = [p for p in procs.values() if p.is_alive()]
        for proc in alive:
            proc.terminate()  # SIGTERM: checkpoint-and-release path
        deadline = time.monotonic() + farm.grace
        for proc in alive:
            proc.join(max(0.0, deadline - time.monotonic()))
        for proc in alive:
            if proc.is_alive():
                proc.kill()
                proc.join(5)
        for view in transport.lease_views():
            cell = published.get(view.cid)
            if cell is None or view.torn or agg.is_folded(view.cid):
                continue
            lease = view.lease
            if lease.worker not in spawned and lease.state != "released":
                # An attached worker (another shell/host) still holds
                # this: leave it — it outlives the broker and its result
                # will fold on the next run.
                continue
            jlease(cell, "released", lease.worker, attempt=lease.attempt,
                   reason="drain", cycle=lease.cycle)
            # Hand the cell back now (a voluntary release consumes no
            # retry budget) so the next run re-claims it immediately
            # instead of waiting out a dead worker's TTL.
            reclaim(view.cid, lease, "released")

    # -------------------------------------------------------- main loop
    # Startup sweep: leases left behind by a previous broker that died
    # without draining (power loss, SIGKILL).  Anything already expired
    # or marked released is previous-incarnation debris — hand those
    # cells back without burning retry budget.  A *live* lease (recent
    # heartbeat) belongs to a surviving attached/orphaned worker: leave
    # it, its result will fold like any other.
    for view in transport.lease_views():
        cell = published.get(view.cid)
        if cell is None or view.torn:
            continue  # torn claim: scan_leases ages it out by mtime
        lease = view.lease
        if lease.state == "released" or view.age > lease.ttl:
            jlease(cell, "released", lease.worker, attempt=lease.attempt,
                   reason="stale", cycle=lease.cycle)
            reclaim(view.cid, lease, "released")
    for _ in range(farm.workers):
        spawn()
    last_progress = 0.0
    try:
        while len(agg.folded) < len(published):
            fold_new_results()
            active = scan_leases(time.time())
            reap_and_respawn()
            if on_progress is not None:
                now = time.monotonic()
                if now - last_progress >= min(1.0, farm.poll_interval):
                    last_progress = now
                    on_progress(report, active)
            if len(agg.folded) < len(published):
                time.sleep(farm.poll_interval)
    finally:
        drain()
        transport.close()
        farm.report = report
    if on_progress is not None:
        on_progress(report, 0)
    return report


class _TornLease:
    """Stand-in for an unreadable lease file during reclaim."""

    def __init__(self, cid: str, cell: CellSpec) -> None:
        self.cid = cid
        self.key = cell.key
        self.worker = "unknown"
        self.attempt = cell.attempt
