"""The farm's on-disk lease protocol: claim, heartbeat, release, expire.

A farm lives in one **shared journal directory** (local disk now, a
shared mount across hosts later).  Everything in it is written through
:mod:`repro.store` — atomic replaces and checksummed envelopes — so any
crash leaves either the old complete file or the new complete file, and
any corrupt artifact is a typed error, never silent damage::

    <root>/
      journal.json          broker-owned sweep journal (cell results +
                            the lease audit trail, v3 checked lines)
      cells/<cid>.json      one spec per sweep cell (broker-written;
                            rewritten on retry with a backoff fence)
      leases/<cid>.lease    at most one live lease per cell; *creating*
                            this file with O_EXCL is the claim — the
                            filesystem is the arbiter, so workers from
                            other shells/hosts can attach freely
      results/<cid>.json    SimStats (or a deterministic error) streamed
                            back by whichever worker finished the cell
      checkpoints/          mid-cell machine snapshots, keyed by cell —
                            a reclaimed cell resumes, never restarts

The lease state machine (audited into the journal, one checksummed line
per transition)::

            claim (O_EXCL create)
   PENDING ----------------------> LEASED --- result written --> COMPLETED
      ^                              |
      |   TTL expired / timeout /    | SIGTERM (spot eviction):
      |   stalled heartbeat          | checkpoint + mark "released"
      +------- ABANDONED <-----------+

Only the broker reclaims: workers never delete a lease they do not own,
and a worker that discovers its lease file gone or foreign (the
double-lease case) downgrades itself to a *zombie* — it may finish and
write a result, but completion folding is exactly-once in the broker,
so a zombie's duplicate is verified bit-identical and then dropped.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.retry import backoff_delay  # noqa: F401 — canonical home is
#                                        repro.retry; re-exported here for
#                                        the pre-transport import sites.
from repro.store import (
    ArtifactError,
    atomic_write_bytes,
    create_exclusive_bytes,
    envelope_bytes,
    read_json_artifact,
    remove_file,
)

#: Envelope kinds (and schema versions) of the farm's artifacts.
CELL_KIND = "farm-cell"
LEASE_KIND = "farm-lease"
RESULT_KIND = "farm-result"
FARM_SCHEMA = 1


def cid_of(key: str) -> str:
    """Short, filename-safe identity of a cell key (the journal key is
    human-readable but contains ``|``)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


# ================================================================ layout


@dataclass(frozen=True)
class FarmPaths:
    """Where everything lives inside one farm root."""

    root: str

    @property
    def journal(self) -> str:
        return os.path.join(self.root, "journal.json")

    @property
    def cells(self) -> str:
        return os.path.join(self.root, "cells")

    @property
    def leases(self) -> str:
        return os.path.join(self.root, "leases")

    @property
    def results(self) -> str:
        return os.path.join(self.root, "results")

    @property
    def checkpoints(self) -> str:
        return os.path.join(self.root, "checkpoints")

    def cell(self, cid: str) -> str:
        return os.path.join(self.cells, f"{cid}.json")

    def lease(self, cid: str) -> str:
        return os.path.join(self.leases, f"{cid}.lease")

    def result(self, cid: str, attempt: int, worker: str) -> str:
        # One file per (cell, attempt, worker): a zombie's duplicate
        # result must coexist with the winner's so the broker can verify
        # it, never silently clobber it.
        safe = "".join(c if c.isalnum() or c in "_-" else "_" for c in worker)
        return os.path.join(self.results, f"{cid}.a{attempt}-{safe}.json")

    def ensure(self) -> "FarmPaths":
        for directory in (self.root, self.cells, self.leases,
                          self.results, self.checkpoints):
            os.makedirs(directory, exist_ok=True)
        return self


# ============================================================= cell specs


@dataclass
class CellSpec:
    """One enumerated sweep cell, as published to the workers."""

    cid: str
    key: str
    benchmark: str
    scheme: str
    width: int
    spec: Dict                 # RunSpec as a plain dict
    attempt: int = 1           # bumped by the broker on every reclaim
    not_before: float = 0.0    # unix-time backoff fence for retries
    #: How many of those attempts ended in a *voluntary* release (spot
    #: eviction, broker drain).  Releases are not cell failures, so the
    #: retry budget only counts ``attempt - 1 - released`` against them.
    released: int = 0
    #: ``scalar`` (default) or ``vector``.  A vector cell is a whole
    #: *column*: one lease covers every lane in ``lanes``, executed as a
    #: single batched job on :mod:`repro.vector`.
    backend: str = "scalar"
    #: Column lanes as ``[benchmark, scheme]`` pairs (vector cells only;
    #: ``benchmark``/``scheme`` above then hold the first lane's values
    #: for display).  Plain lists, not tuples: this round-trips JSON.
    lanes: Optional[List] = None

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CellSpec":
        return cls(**data)


def write_cell(paths: FarmPaths, cell: CellSpec) -> None:
    atomic_write_bytes(
        paths.cell(cell.cid),
        envelope_bytes(CELL_KIND, FARM_SCHEMA, cell.to_dict()),
    )


def read_cell(path: str) -> CellSpec:
    data, _meta = read_json_artifact(path, CELL_KIND, allow_legacy=False)
    return CellSpec.from_dict(data)


def list_cells(paths: FarmPaths) -> List[str]:
    """All published cell ids, sorted (workers scan in this order, so
    claim contention is resolved deterministically by O_EXCL)."""
    try:
        names = os.listdir(paths.cells)
    except FileNotFoundError:
        return []
    return sorted(n[:-5] for n in names if n.endswith(".json"))


# ================================================================ leases


@dataclass
class Lease:
    """The contents of one ``<cid>.lease`` file."""

    cid: str
    key: str
    worker: str
    attempt: int
    ttl: float
    granted_unix: float
    heartbeat_unix: float
    state: str = "leased"      # leased | released (eviction)
    cycle: int = 0             # live progress, piggybacked on heartbeats
    committed: int = 0
    #: Monotonic fencing token.  On the filesystem backend the attempt
    #: number *is* the fence (the broker bumps it before deleting the
    #: lease file); the HTTP lease service issues a globally monotonic
    #: token per claim and rejects any write carrying a stale one
    #: server-side.  0 on filesystem leases (attempt carries the fence).
    token: int = 0

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "Lease":
        return cls(**data)

    def age(self, now: Optional[float] = None) -> float:
        return (now if now is not None else time.time()) - self.heartbeat_unix

    def expired(self, now: Optional[float] = None) -> bool:
        return self.age(now) > self.ttl


class LeaseLost(RuntimeError):
    """The worker's lease file vanished or changed hands (reclaimed by
    the broker, or a deliberately injected double-lease)."""


def claim(paths: FarmPaths, cell: CellSpec, worker: str, ttl: float) -> Optional[Lease]:
    """Try to lease ``cell`` for ``worker``.  The O_EXCL create *is* the
    mutual exclusion; returns None when somebody else holds the lease."""
    now = time.time()
    lease = Lease(
        cid=cell.cid, key=cell.key, worker=worker, attempt=cell.attempt,
        ttl=ttl, granted_unix=now, heartbeat_unix=now,
    )
    payload = envelope_bytes(LEASE_KIND, FARM_SCHEMA, lease.to_dict())
    if not create_exclusive_bytes(paths.lease(cell.cid), payload):
        return None
    return lease


def read_lease(path: str) -> Lease:
    data, _meta = read_json_artifact(path, LEASE_KIND, allow_legacy=False)
    return Lease.from_dict(data)


def fence_lost(paths: FarmPaths, lease: Lease) -> Optional[str]:
    """Why ``lease`` is fenced out by the published cell spec, or None.

    The broker rewrites a cell's spec with a bumped ``attempt`` *before*
    deleting the lease file during reclaim, so the spec's attempt is a
    monotonic fence: once it exceeds the lease's attempt, reclaim has
    irrevocably begun and the holder has deterministically lost —
    however its in-flight heartbeat races the lease-file unlink."""
    try:
        cell = read_cell(paths.cell(lease.cid))
    except (FileNotFoundError, ArtifactError, OSError):
        # No spec to fence against (pruned cell, or mid-rewrite on a
        # non-atomic filesystem): the lease-file check below decides.
        return None
    if cell.attempt > lease.attempt:
        return (f"cell {lease.cid} was reclaimed: spec attempt "
                f"{cell.attempt} fences out lease attempt {lease.attempt}")
    return None


def heartbeat(paths: FarmPaths, lease: Lease, *, cycle: int = 0,
              committed: int = 0, state: Optional[str] = None) -> None:
    """Refresh the worker's lease — fence-check, then read-check-write:
    a heartbeat never overwrites a lease the worker no longer owns, and
    never renews once the broker has begun reclaiming.  Raises
    :class:`LeaseLost` when fenced out, gone, or foreign.

    The fence check closes the heartbeat-at-TTL-boundary race: the
    broker's reclaim rewrites the cell spec (attempt bumped) *before*
    unlinking the lease file, and heartbeats check that fence *before*
    writing — so a heartbeat landing in the same tick as reclaim either
    renews (reclaim had not started: no fence bump yet) or loses
    (:class:`LeaseLost`), deterministically.  Without it, the
    heartbeat's atomic rename could resurrect the lease file after the
    broker's unlink, leaving a zombie that believed it still held the
    cell."""
    path = paths.lease(lease.cid)
    fenced = fence_lost(paths, lease)
    if fenced is not None:
        raise LeaseLost(fenced)
    try:
        current = read_lease(path)
    except FileNotFoundError:
        raise LeaseLost(f"lease file for {lease.cid} vanished") from None
    except ArtifactError as exc:
        # A torn claim from a crashed rival would have been reclaimed by
        # the broker; treat unreadable as lost, never overwrite evidence.
        raise LeaseLost(f"lease file for {lease.cid} unreadable: {exc}") from exc
    if current.worker != lease.worker or current.attempt != lease.attempt:
        raise LeaseLost(
            f"lease for {lease.cid} now belongs to {current.worker!r} "
            f"(attempt {current.attempt})"
        )
    lease.heartbeat_unix = time.time()
    lease.cycle = cycle
    lease.committed = committed
    if state is not None:
        lease.state = state
    # Heartbeats are frequent and individually expendable: atomic, not
    # durable (a lost heartbeat merely looks like a slightly older one).
    atomic_write_bytes(
        path, envelope_bytes(LEASE_KIND, FARM_SCHEMA, lease.to_dict()),
        durable=state is not None,
    )


def release(paths: FarmPaths, lease: Lease) -> bool:
    """Delete the lease file if (and only if) ``lease`` still owns it.
    Returns False when the lease had already changed hands."""
    path = paths.lease(lease.cid)
    try:
        current = read_lease(path)
    except (FileNotFoundError, ArtifactError):
        return False
    if current.worker != lease.worker or current.attempt != lease.attempt:
        return False
    return remove_file(path)


def list_leases(paths: FarmPaths) -> List[str]:
    try:
        names = os.listdir(paths.leases)
    except FileNotFoundError:
        return []
    return sorted(n[:-6] for n in names if n.endswith(".lease"))


# =============================================================== results


@dataclass
class CellResult:
    """What a worker streams back for one finished cell."""

    cid: str
    key: str
    worker: str
    attempt: int
    status: str                     # "ok" | "error"
    stats: Optional[Dict] = None    # SimStats.to_dict() when ok
    #: Failure class for error results, mirroring
    #: :class:`~repro.experiments.runner.CellError`: ``error`` —
    #: deterministic simulation failure (not retried); ``crash`` /
    #: ``timeout`` — broker-written terminal records after the retry
    #: budget ran out.
    kind: Optional[str] = None
    error_type: Optional[str] = None
    message: Optional[str] = None
    #: Cycle the simulation started from: 0 for a cold start, the
    #: checkpoint's cycle when the attempt resumed a reclaimed cell.
    start_cycle: int = 0
    elapsed: float = 0.0
    #: Column (vector-backend) results: lane key (``benchmark|scheme``)
    #: -> ``SimStats.to_dict()`` for lanes that completed, and -> a
    #: ``{"error_type", "message"}`` record for lanes that failed
    #: deterministically.  ``stats`` stays None for column cells; the
    #: broker fans these out into per-cell journal lines.
    lane_stats: Optional[Dict] = None
    lane_errors: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CellResult":
        return cls(**data)


def write_result(paths: FarmPaths, result: CellResult) -> None:
    atomic_write_bytes(
        paths.result(result.cid, result.attempt, result.worker),
        envelope_bytes(RESULT_KIND, FARM_SCHEMA, result.to_dict()),
    )


def read_result(path: str) -> CellResult:
    data, _meta = read_json_artifact(path, RESULT_KIND, allow_legacy=False)
    return CellResult.from_dict(data)


def list_results(paths: FarmPaths) -> List[str]:
    """Cell ids with at least one streamed result (workers treat these
    cells as done; the broker folds and deduplicates the files)."""
    try:
        names = os.listdir(paths.results)
    except FileNotFoundError:
        return []
    return sorted({n.split(".", 1)[0] for n in names if n.endswith(".json")})


def iter_results(paths: FarmPaths) -> List[tuple]:
    """Every result file as ``(cid, path)``, sorted for determinism."""
    try:
        names = os.listdir(paths.results)
    except FileNotFoundError:
        return []
    return sorted(
        (n.split(".", 1)[0], os.path.join(paths.results, n))
        for n in names
        if n.endswith(".json")
    )


# ========================================================= shared helpers


@dataclass
class FarmSpec:
    """How to run a farm: topology, liveness budgets, and fault plans."""

    #: Shared journal directory (created on demand).  With an
    #: ``endpoint`` this is broker-local: it holds only the sweep
    #: journal, while cells/leases/results/checkpoints live on the
    #: lease server's own root.
    root: str
    #: Locally spawned worker processes (0 = rely on attached workers).
    workers: int = 2
    #: HTTP lease-service URL (``python -m repro.farm serve``).  When
    #: set, the broker and every spawned worker speak the transport
    #: protocol to this endpoint instead of the shared filesystem —
    #: hosts need share nothing but a network.
    endpoint: Optional[str] = None
    #: Per-RPC timeout (seconds) on the HTTP transport.
    rpc_timeout: float = 10.0
    #: Total wall-clock budget for retrying one failing RPC before the
    #: caller gives up (parks its cell and exits, for a worker).
    rpc_deadline: float = 60.0
    #: Seconds without a heartbeat before a lease is reclaimed.
    lease_ttl: float = 30.0
    #: How often workers refresh their lease (<< lease_ttl).
    heartbeat_interval: float = 1.0
    #: Broker/worker filesystem poll cadence.
    poll_interval: float = 0.2
    #: Snapshot each cell every N cycles (None: keep the RunSpec's own
    #: setting).  Checkpoints are what make reclaim resume, not restart.
    checkpoint_every: Optional[int] = 2000
    #: Grace budget (seconds) an evicted/drained worker gets to
    #: checkpoint and release before it is killed outright.
    grace: float = 5.0
    #: Deterministic fault plans (see :mod:`repro.farm.inject`).
    inject: tuple = ()
    #: Journal at most one heartbeat line per cell per this many seconds.
    journal_heartbeat_every: float = 10.0
    #: Cap for the jittered retry backoff (seconds).
    backoff_cap: float = 30.0
    #: Respawn local workers that die, up to this many times total
    #: (None: never stop respawning — per-cell attempt budgets still
    #: bound the run).
    max_respawns: Optional[int] = None

    paths: FarmPaths = field(init=False, repr=False)
    #: Final :class:`~repro.farm.aggregate.FarmReport` of the most
    #: recent sweep driven with this spec (set by the broker).
    report: Optional[object] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        self.paths = FarmPaths(self.root)
