"""CLI for the sweep farm: serve leases, attach workers, inspect farms.

``python -m repro.farm serve <root>``
    Run the HTTP/JSON lease service on ``<root>`` — the multi-host
    farm's arbiter.  Brokers and workers on other hosts point
    ``--endpoint`` at the printed URL; hosts share nothing but the
    network.

``python -m repro.farm worker <root>`` /
``python -m repro.farm worker --endpoint URL``
    Attach one stateless worker — from another shell, or another host
    (sharing the directory, or reaching the lease service).  The worker
    leases cells, heartbeats, checkpoints, and exits when every
    published cell has a result (or on SIGTERM, after checkpointing).
    Exit status 2: the transport was unreachable with nothing in
    flight; 3: unreachable mid-cell (a checkpoint was parked first).

``python -m repro.farm status <root>``
    Read-only progress report: published/leased/completed cells, live
    lease ages, and the journaled lease history — a torn journal tail
    (crash mid-append) is salvaged and reported, never a traceback.
    Never writes — safe to run against a farm mid-sweep.

``python -m repro.farm faults``
    List the registered chaos faults (:mod:`repro.farm.inject`),
    process and network.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.farm.inject import FAULTS, NET_FAULTS
from repro.farm.lease import (
    FarmPaths,
    list_cells,
    list_leases,
    list_results,
    read_lease,
)
from repro.farm.worker import WorkerOptions, worker_loop
from repro.store import ArtifactError


def _cmd_worker(args: argparse.Namespace) -> int:
    if not args.root and not args.endpoint:
        print("worker needs a farm root or --endpoint URL", file=sys.stderr)
        return 2
    options = WorkerOptions(
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat,
        poll_interval=args.poll,
        checkpoint_every=args.checkpoint_every,
        oneshot=args.oneshot,
        endpoint=args.endpoint,
        rpc_timeout=args.rpc_timeout,
        rpc_deadline=args.rpc_deadline,
    )
    worker_id = args.name or f"w{os.getpid()}"
    return worker_loop(args.root, worker_id, options)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.farm.server import FarmServer

    server = FarmServer(args.root, host=args.host, port=args.port,
                        verbose=args.verbose)
    print(f"farm lease service on {server.url} (root {args.root})")
    print(f"attach workers with: python -m repro.farm worker "
          f"--endpoint {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _journal_tail(path: str):
    """Lease history from the journal, without ever writing to it (a
    live broker owns the file; SweepJournal's torn-tail salvage would
    rewrite it underneath them).  Returns ``(events, note)`` where
    ``note`` describes any salvage the reader had to do: a torn final
    line (crash mid-append) is expected damage and costs one record;
    interior damage truncates the usable history at that line."""
    from repro.store.integrity import read_checked_lines

    if not os.path.exists(path):
        return [], None
    try:
        result = read_checked_lines(path)
    except OSError as exc:
        return [], f"journal unreadable: {exc}"
    note = None
    if not result.clean:
        if result.torn_tail:
            note = (f"torn journal tail salvaged (line {result.bad_line} "
                    f"of {result.total_lines} damaged mid-append; "
                    f"{len(result.records)} records recovered)")
        else:
            note = (f"journal damaged at line {result.bad_line} of "
                    f"{result.total_lines} ({result.bad_reason}); history "
                    f"truncated there — run `python -m repro.experiments "
                    f"fsck` for details")
    events = [r["lease"] for r in result.records
              if isinstance(r, dict) and "lease" in r]
    return events, note


def _cmd_status(args: argparse.Namespace) -> int:
    paths = FarmPaths(args.root)
    cells = list_cells(paths)
    results = list_results(paths)
    now = time.time()
    leases = []
    for cid in list_leases(paths):
        try:
            lease = read_lease(paths.lease(cid))
        except (ArtifactError, OSError):
            leases.append({"cid": cid, "state": "unreadable"})
            continue
        leases.append({
            "cid": cid, "worker": lease.worker, "attempt": lease.attempt,
            "state": lease.state, "age": round(lease.age(now), 2),
            "ttl": lease.ttl, "cycle": lease.cycle,
            "committed": lease.committed,
        })
    events, journal_note = _journal_tail(paths.journal)
    summary = {
        "root": args.root,
        "cells": len(cells),
        "with_result": len(results),
        "leased": len(leases),
        "lease_events": len(events),
    }
    if args.json:
        print(json.dumps({**summary, "journal_note": journal_note,
                          "leases": leases,
                          "recent": events[-args.tail:]}, indent=2))
        return 0
    print(f"farm {args.root}: {summary['with_result']}/{summary['cells']} "
          f"cells have results, {summary['leased']} leased, "
          f"{summary['lease_events']} journaled lease events")
    if journal_note:
        print(f"  [journal] {journal_note}")
    for lease in leases:
        if lease.get("state") == "unreadable":
            print(f"  {lease['cid']}  UNREADABLE lease file")
            continue
        print(f"  {lease['cid']}  {lease['worker']:>8}  attempt "
              f"{lease['attempt']}  {lease['state']:<9} "
              f"age {lease['age']:>6.2f}s / ttl {lease['ttl']:.0f}s  "
              f"cycle {lease['cycle']}  committed {lease['committed']}")
    for event in events[-args.tail:]:
        print(f"  [journal] {event.get('state', '?'):<9} "
              f"{event.get('worker', '?'):>8}  {event.get('key', '?')}")
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    print("process faults (fire inside a worker's cycle hook):")
    for name in sorted(FAULTS):
        fault = FAULTS[name]
        print(f"  {name:<15} {fault.description}")
        print(f"  {'':<15} expect: {fault.expect}")
    print("network faults (fire on the HTTP transport's wire attempts):")
    for name in sorted(NET_FAULTS):
        fault = NET_FAULTS[name]
        print(f"  {name:<15} {fault.description}")
        print(f"  {'':<15} expect: {fault.expect}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="Fault-tolerant sweep farm: serve leases, attach "
        "workers, inspect live farms, list injectable faults.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="attach a worker to a farm")
    worker.add_argument("root", nargs="?", default=None,
                        help="shared farm directory (or use --endpoint)")
    worker.add_argument("--endpoint", default=None, metavar="URL",
                        help="HTTP lease-service URL instead of a root")
    worker.add_argument("--name", default=None,
                        help="worker id (default: w<pid>)")
    worker.add_argument("--lease-ttl", type=float, default=30.0)
    worker.add_argument("--heartbeat", type=float, default=1.0)
    worker.add_argument("--poll", type=float, default=0.2)
    worker.add_argument("--checkpoint-every", type=int, default=2000,
                        metavar="CYCLES")
    worker.add_argument("--rpc-timeout", type=float, default=10.0,
                        help="per-RPC timeout, seconds (HTTP transport)")
    worker.add_argument("--rpc-deadline", type=float, default=60.0,
                        help="total retry budget per RPC before the "
                        "worker parks and exits (HTTP transport)")
    worker.add_argument("--oneshot", action="store_true",
                        help="exit after completing one cell")
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser("serve", help="run the HTTP lease service")
    serve.add_argument("root", help="farm root the service owns")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="0 picks a free port (printed on start)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each request to stderr")
    serve.set_defaults(func=_cmd_serve)

    status = sub.add_parser("status", help="read-only farm progress")
    status.add_argument("root")
    status.add_argument("--json", action="store_true")
    status.add_argument("--tail", type=int, default=8,
                        help="journaled lease events to show")
    status.set_defaults(func=_cmd_status)

    faults = sub.add_parser("faults", help="list injectable chaos faults")
    faults.set_defaults(func=_cmd_faults)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
