"""CLI for the sweep farm: attach workers, inspect live farms.

``python -m repro.farm worker <root>``
    Attach one stateless worker to a farm rooted at ``<root>`` — from
    another shell, or another host sharing the directory.  The worker
    leases cells, heartbeats, checkpoints, and exits when every
    published cell has a result (or on SIGTERM, after checkpointing).

``python -m repro.farm status <root>``
    Read-only progress report: published/leased/completed cells, live
    lease ages, and the journaled lease history.  Never writes — safe
    to run against a farm mid-sweep.

``python -m repro.farm faults``
    List the registered chaos faults (:mod:`repro.farm.inject`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.farm.inject import FAULTS
from repro.farm.lease import (
    FarmPaths,
    list_cells,
    list_leases,
    list_results,
    read_lease,
)
from repro.farm.worker import WorkerOptions, worker_loop
from repro.store import ArtifactError


def _cmd_worker(args: argparse.Namespace) -> int:
    options = WorkerOptions(
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat,
        poll_interval=args.poll,
        checkpoint_every=args.checkpoint_every,
        oneshot=args.oneshot,
    )
    worker_id = args.name or f"w{os.getpid()}"
    return worker_loop(args.root, worker_id, options)


def _journal_tail(path: str):
    """Lease history from the journal, without ever writing to it (a
    live broker owns the file; SweepJournal's torn-tail salvage would
    rewrite it underneath them)."""
    from repro.store.integrity import read_checked_lines

    if not os.path.exists(path):
        return []
    result = read_checked_lines(path)
    return [r["lease"] for r in result.records
            if isinstance(r, dict) and "lease" in r]


def _cmd_status(args: argparse.Namespace) -> int:
    paths = FarmPaths(args.root)
    cells = list_cells(paths)
    results = list_results(paths)
    now = time.time()
    leases = []
    for cid in list_leases(paths):
        try:
            lease = read_lease(paths.lease(cid))
        except (ArtifactError, OSError):
            leases.append({"cid": cid, "state": "unreadable"})
            continue
        leases.append({
            "cid": cid, "worker": lease.worker, "attempt": lease.attempt,
            "state": lease.state, "age": round(lease.age(now), 2),
            "ttl": lease.ttl, "cycle": lease.cycle,
            "committed": lease.committed,
        })
    events = _journal_tail(paths.journal)
    summary = {
        "root": args.root,
        "cells": len(cells),
        "with_result": len(results),
        "leased": len(leases),
        "lease_events": len(events),
    }
    if args.json:
        print(json.dumps({**summary, "leases": leases,
                          "recent": events[-args.tail:]}, indent=2))
        return 0
    print(f"farm {args.root}: {summary['with_result']}/{summary['cells']} "
          f"cells have results, {summary['leased']} leased, "
          f"{summary['lease_events']} journaled lease events")
    for lease in leases:
        if lease.get("state") == "unreadable":
            print(f"  {lease['cid']}  UNREADABLE lease file")
            continue
        print(f"  {lease['cid']}  {lease['worker']:>8}  attempt "
              f"{lease['attempt']}  {lease['state']:<9} "
              f"age {lease['age']:>6.2f}s / ttl {lease['ttl']:.0f}s  "
              f"cycle {lease['cycle']}  committed {lease['committed']}")
    for event in events[-args.tail:]:
        print(f"  [journal] {event.get('state', '?'):<9} "
              f"{event.get('worker', '?'):>8}  {event.get('key', '?')}")
    return 0


def _cmd_faults(_args: argparse.Namespace) -> int:
    for name in sorted(FAULTS):
        fault = FAULTS[name]
        print(f"{name:<13} {fault.description}")
        print(f"{'':<13} expect: {fault.expect}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.farm",
        description="Fault-tolerant sweep farm: attach workers, inspect "
        "live farms, list injectable faults.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="attach a worker to a farm root")
    worker.add_argument("root", help="shared farm directory")
    worker.add_argument("--name", default=None,
                        help="worker id (default: w<pid>)")
    worker.add_argument("--lease-ttl", type=float, default=30.0)
    worker.add_argument("--heartbeat", type=float, default=1.0)
    worker.add_argument("--poll", type=float, default=0.2)
    worker.add_argument("--checkpoint-every", type=int, default=2000,
                        metavar="CYCLES")
    worker.add_argument("--oneshot", action="store_true",
                        help="exit after completing one cell")
    worker.set_defaults(func=_cmd_worker)

    status = sub.add_parser("status", help="read-only farm progress")
    status.add_argument("root")
    status.add_argument("--json", action="store_true")
    status.add_argument("--tail", type=int, default=8,
                        help="journaled lease events to show")
    status.set_defaults(func=_cmd_status)

    faults = sub.add_parser("faults", help="list injectable chaos faults")
    faults.set_defaults(func=_cmd_faults)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
