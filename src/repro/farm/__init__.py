"""Fault-tolerant sweep farm: lease-based broker/worker cells.

A sweep is decomposed into (benchmark x scheme x config) *cells*; a
**broker** (:mod:`repro.farm.broker`) publishes them into a shared
journal directory, **stateless workers** (:mod:`repro.farm.worker`)
lease cells with a TTL, heartbeat while simulating, checkpoint mid-cell
through :mod:`repro.core.snapshot`, and stream results back through the
:mod:`repro.store` envelope; an **aggregator**
(:mod:`repro.farm.aggregate`) folds each cell exactly once into the
figures.  Expired leases are reclaimed and *resumed from the latest
checkpoint*, never restarted; SIGTERM is treated as a spot-eviction
notice with a checkpoint-and-release grace budget; and a deterministic
fault-injection registry (:mod:`repro.farm.inject`) lets the chaos
suite kill, stall, orphan, evict, and double-lease workers on purpose.

Every protocol step goes through a pluggable **transport**
(:mod:`repro.farm.transport`): the shared-filesystem backend above, or
an HTTP/JSON lease service (``python -m repro.farm serve``,
:mod:`repro.farm.server`) for hosts that share nothing but a network —
with idempotent request ids, monotonic fencing tokens, and one shared
retry policy (:mod:`repro.retry`) on the wire.

Entry points: ``run_matrix(..., farm=FarmSpec(root))`` drives any
existing sweep through the farm (``FarmSpec(root, endpoint=URL)`` for
the HTTP transport); ``python -m repro.farm worker <root>`` (or
``--endpoint URL``) attaches an extra worker from another shell or
host; ``python -m repro.farm status <root>`` reports live progress
without touching any farm state.
"""

from repro.farm.aggregate import Aggregator, FarmReport
from repro.farm.inject import (
    FAULTS,
    NET_FAULTS,
    FarmFault,
    InjectPlan,
    NetPlan,
    NetworkChaos,
    WorkerChaos,
)
from repro.farm.lease import (
    CellResult,
    CellSpec,
    FarmPaths,
    FarmSpec,
    Lease,
    LeaseLost,
    backoff_delay,
    cid_of,
)
from repro.farm.transport import (
    Fenced,
    Transport,
    TransportError,
    TransportUnavailable,
    make_transport,
)
from repro.farm.worker import WorkerOptions, worker_loop

__all__ = [
    "Aggregator",
    "FarmReport",
    "FAULTS",
    "NET_FAULTS",
    "FarmFault",
    "InjectPlan",
    "NetPlan",
    "NetworkChaos",
    "WorkerChaos",
    "CellResult",
    "CellSpec",
    "FarmPaths",
    "FarmSpec",
    "Lease",
    "LeaseLost",
    "backoff_delay",
    "cid_of",
    "Fenced",
    "Transport",
    "TransportError",
    "TransportUnavailable",
    "make_transport",
    "WorkerOptions",
    "worker_loop",
    "run_cells_farm",
]


def run_cells_farm(*args, **kwargs):
    """Lazy re-export of :func:`repro.farm.broker.run_cells_farm` (the
    broker's imports reach back into the runner, which imports this
    package — keep the heavy edge out of import time)."""
    from repro.farm.broker import run_cells_farm as _run

    return _run(*args, **kwargs)
