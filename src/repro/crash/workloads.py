"""One crash-consistency workload per durability layer.

Each workload exercises its layer's real write path (no mocks: the ops
recorded are the ops production emits), declares acknowledgment points
at exactly the API boundaries that promise durability, and states the
layer's half of the recovery oracle.  The registry follows the
``CORRUPTIONS`` / ``FAULTS`` pattern: ``WORKLOADS[name]`` is the
injectable unit, ``python -m repro.crash run`` and the CI gate iterate
it.

The layers and their promises:

=================== ==================================================
store-envelope      after :func:`write_json_artifact` returns, the
                    artifact holds the new payload — and never a mix,
                    a truncation, or an older acked version
journal-append      after ``record_ok`` returns, the cell is in the
                    journal and survives any crash; a torn tail costs
                    only un-acked records
snapshot-checkpoint a checkpoint file always holds a *complete*
                    snapshot at the latest acked cycle; completion may
                    retire it but never tear it
farm-lease          the cell spec's attempt number (the fence) never
                    regresses below an acked value; acked results stay
                    readable; lease files may vanish (liveness) but
                    never poison recovery
server-fence        the service's fencing-token counter never
                    regresses below an issued token; acked completions
                    survive restart
journal-archive     once an incompatible journal is archived (the
                    caller told where), the backup exists with the
                    original bytes and the old journal cannot resurrect
serve-jobs          an acked submission (``queued`` journaled) survives
                    any crash; a ``done`` line implies a readable,
                    bit-identical cache entry (cache is written and
                    fsynced strictly first); service recovery
                    terminates on every crash image
=================== ==================================================
"""

from __future__ import annotations

import contextlib
import io
import json
import os
from typing import Callable, Dict, List

from repro.core.snapshot import load_snapshot, save_snapshot
from repro.core.stats import SimStats
from repro.crash.harness import Workload
from repro.crash.oplog import Op
from repro.experiments.journal import SweepJournal
from repro.farm import lease as fsl
from repro.farm.lease import CellResult, CellSpec, FarmPaths, cid_of
from repro.store import (
    ArtifactError,
    DigestMismatch,
    MalformedRecord,
    atomic_write_text,
    read_json_artifact,
    remove_file,
    write_json_artifact,
)
from repro.store.__main__ import main as store_main

WORKLOADS: Dict[str, Workload] = {}


def _register(name: str, description: str):
    def wrap(cls) -> Workload:
        WORKLOADS[name] = Workload(
            name=name, description=description,
            run=cls.run, recover=cls.recover, check=cls.check,
        )
        return cls
    return wrap


def _store_repair(root: str) -> None:
    """``python -m repro.store repair`` as a recovery step; a nonzero
    exit means unrepaired damage — an oracle violation, so raise."""
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = store_main(["repair", "-q", root])
    if rc != 0:
        raise RuntimeError(f"store repair exited {rc}: {buf.getvalue().strip()}")


def _acked(acked: List[Op], label: str) -> bool:
    return any(op.label == label for op in acked)


# ========================================================= store-envelope

_DEMO_KIND = "demo-artifact"


@_register("store-envelope",
           "atomic envelope writes: create, overwrite, two files")
class _StoreEnvelope:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        alpha = os.path.join(root, "alpha.json")
        beta = os.path.join(root, "beta.json")
        write_json_artifact(alpha, _DEMO_KIND, 1, {"value": 1})
        ack("alpha-v1", path="alpha.json", value=1)
        write_json_artifact(alpha, _DEMO_KIND, 1, {"value": 2})
        ack("alpha-v2", path="alpha.json", value=2)
        write_json_artifact(beta, _DEMO_KIND, 1, {"value": 10})
        ack("beta-v10", path="beta.json", value=10)

    @staticmethod
    def recover(root: str) -> None:
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        problems: List[str] = []
        promised: Dict[str, int] = {}
        for op in acked:
            promised[op.info["path"]] = op.info["value"]
        written = {"alpha.json": {1, 2}, "beta.json": {10}}
        for rel, want in promised.items():
            path = os.path.join(root, rel)
            if not os.path.exists(path):
                problems.append(f"acked artifact {rel} lost")
                continue
            try:
                data, _ = read_json_artifact(path, _DEMO_KIND,
                                             allow_legacy=False)
            except ArtifactError as exc:
                problems.append(f"acked artifact {rel} unreadable: {exc}")
                continue
            got = data.get("value")
            if got not in written[rel]:
                problems.append(f"{rel} holds phantom value {got!r}")
            elif got < want:
                problems.append(
                    f"{rel} rolled back to {got} after value {want} was acked")
        return problems


# ========================================================= journal-append

_JOURNAL_CELLS = {
    "cellA": (1000, 400),
    "cellB": (1001, 401),
    "cellC": (1002, 402),
}


@_register("journal-append",
           "sweep-journal append stream: first-record rewrite, ok cells, "
           "an error cell")
class _JournalAppend:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        journal = SweepJournal(os.path.join(root, "journal.json"))
        for key, (cycles, committed) in _JOURNAL_CELLS.items():
            journal.record_ok(key, SimStats(cycles=cycles,
                                            committed=committed))
            ack(f"ok-{key}", key=key, cycles=cycles, committed=committed)
        journal.record_error("cellD", {"error_type": "ValueError",
                                       "message": "injected"})
        ack("err-cellD", key="cellD")

    @staticmethod
    def recover(root: str) -> None:
        path = os.path.join(root, "journal.json")
        if not os.path.exists(path):
            return
        try:
            SweepJournal(path)
        except (DigestMismatch, MalformedRecord):
            _store_repair(root)
            SweepJournal(path)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        problems: List[str] = []
        path = os.path.join(root, "journal.json")
        any_acked = bool(acked)
        if not os.path.exists(path):
            if any_acked:
                problems.append("journal lost with acked records")
            return problems
        try:
            journal = SweepJournal(path)
        except Exception as exc:  # noqa: BLE001 — any raise here is the bug
            return [f"journal unloadable after recovery: {exc}"]
        for op in acked:
            key = op.info["key"]
            if op.label.startswith("ok-"):
                stats = journal.get(key)
                if stats is None:
                    problems.append(f"acked cell {key} lost from journal")
                elif (stats.cycles, stats.committed) != (op.info["cycles"],
                                                         op.info["committed"]):
                    problems.append(f"acked cell {key} stats mutated")
            elif op.label.startswith("err-") and key not in journal.errors():
                problems.append(f"acked error cell {key} lost from journal")
        known = set(_JOURNAL_CELLS) | {"cellD"}
        for key in list(journal.errors()) + [
                k for k in _JOURNAL_CELLS if journal.get(k) is not None]:
            if key not in known:
                problems.append(f"phantom journal cell {key}")
        return problems


# ==================================================== snapshot-checkpoint

@_register("snapshot-checkpoint",
           "checkpoint overwrite then completion: snapshot twice, write "
           "result, retire the checkpoint")
class _SnapshotCheckpoint:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        ckpt = os.path.join(root, "cell.ckpt")
        result = os.path.join(root, "result.json")
        save_snapshot({"cycle": 100, "payload": "a" * 64}, ckpt)
        ack("ckpt-100", cycle=100)
        save_snapshot({"cycle": 200, "payload": "b" * 64}, ckpt)
        ack("ckpt-200", cycle=200)
        write_json_artifact(result, "farm-result", 1,
                            {"status": "ok", "cycles": 200})
        ack("completed")
        remove_file(ckpt)  # un-acked retirement: may or may not persist

    @staticmethod
    def recover(root: str) -> None:
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        problems: List[str] = []
        ckpt = os.path.join(root, "cell.ckpt")
        result = os.path.join(root, "result.json")
        ckpt_cycles = [op.info["cycle"] for op in acked
                       if op.label.startswith("ckpt-")]
        if _acked(acked, "completed"):
            try:
                data, _ = read_json_artifact(result, "farm-result",
                                             allow_legacy=False)
                if data.get("cycles") != 200:
                    problems.append("acked result holds wrong payload")
            except (OSError, ArtifactError) as exc:
                problems.append(f"acked result lost: {exc}")
            # The checkpoint may already be retired; if it survives it
            # must still be the complete latest acked snapshot.
            if os.path.exists(ckpt) and _snapshot_cycle(ckpt) != 200:
                problems.append("stale checkpoint outlived completion")
        elif ckpt_cycles:
            latest = max(ckpt_cycles)
            if not os.path.exists(ckpt):
                problems.append(f"acked checkpoint (cycle {latest}) lost")
            else:
                cycle = _snapshot_cycle(ckpt)
                if cycle is None:
                    problems.append("acked checkpoint unreadable")
                elif cycle < latest:
                    problems.append(
                        f"checkpoint rolled back to cycle {cycle} after "
                        f"cycle {latest} was acked")
                elif cycle not in (100, 200):
                    problems.append(f"checkpoint holds phantom cycle {cycle}")
        return problems


def _snapshot_cycle(path: str):
    try:
        return load_snapshot(path).get("cycle")
    except (OSError, ArtifactError):
        return None


# ============================================================= farm-lease

_FARM_SPEC = {"length": 100, "warmup": 0, "seed": 1}


@_register("farm-lease",
           "lease protocol: publish, O_EXCL claim, heartbeats, result, "
           "release, then a broker-style fence-bump reclaim")
class _FarmLease:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        paths = FarmPaths(root).ensure()
        cell = CellSpec(cid=cid_of("k1"), key="k1", benchmark="gcc",
                        scheme="base", width=4, spec=dict(_FARM_SPEC))
        fsl.write_cell(paths, cell)
        ack("cell-1", cid=cell.cid, attempt=1)
        lease = fsl.claim(paths, cell, "w0", ttl=30.0)
        assert lease is not None
        ack("claim-1", cid=cell.cid)
        fsl.heartbeat(paths, lease, cycle=50, committed=20)
        fsl.heartbeat(paths, lease, cycle=80, committed=40)
        fsl.write_result(paths, CellResult(
            cid=cell.cid, key="k1", worker="w0", attempt=1, status="ok",
            stats={"cycles": 100}))
        ack("result-1", cid=cell.cid, attempt=1, worker="w0")
        fsl.release(paths, lease)
        ack("release-1", cid=cell.cid)
        # Second cell: claimed, then reclaimed broker-style — the spec
        # rewrite with the bumped attempt (the fence) strictly precedes
        # the lease unlink.
        cell2 = CellSpec(cid=cid_of("k2"), key="k2", benchmark="mesa",
                         scheme="ER", width=4, spec=dict(_FARM_SPEC))
        fsl.write_cell(paths, cell2)
        ack("cell-2", cid=cell2.cid, attempt=1)
        lease2 = fsl.claim(paths, cell2, "w1", ttl=30.0)
        assert lease2 is not None
        cell2.attempt = 2
        fsl.write_cell(paths, cell2)
        ack("fence-2", cid=cell2.cid, attempt=2)
        remove_file(paths.lease(cell2.cid))

    @staticmethod
    def recover(root: str) -> None:
        # The read side must get through any crash image untracebacked.
        from repro.farm.__main__ import main as farm_main

        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = farm_main(["status", root])
        if rc != 0:
            raise RuntimeError(f"farm status exited {rc}")
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        problems: List[str] = []
        paths = FarmPaths(root)
        fences: Dict[str, int] = {}
        for op in acked:
            if op.label.startswith(("cell-", "fence-")):
                cid = op.info["cid"]
                fences[cid] = max(fences.get(cid, 0), op.info["attempt"])
        for cid, attempt in fences.items():
            try:
                cell = fsl.read_cell(paths.cell(cid))
            except (OSError, ArtifactError) as exc:
                problems.append(f"acked cell spec {cid} lost: {exc}")
                continue
            if cell.attempt < attempt:
                problems.append(
                    f"cell {cid} fence regressed to attempt {cell.attempt} "
                    f"after attempt {attempt} was acked")
        for op in acked:
            if not op.label.startswith("result-"):
                continue
            path = paths.result(op.info["cid"], op.info["attempt"],
                                op.info["worker"])
            try:
                fsl.read_result(path)
            except (OSError, ArtifactError) as exc:
                problems.append(f"acked result {op.label} lost: {exc}")
        # Acked claims carry no durability promise (a lost lease file is
        # re-claimed: liveness, not safety) — nothing to check for them.
        return problems


# =========================================================== server-fence

@_register("server-fence",
           "HTTP lease service state: publish, claim (token issue), "
           "heartbeat, complete, second claim; recovery is _recover()")
class _ServerFence:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        from repro.farm.server import FarmState

        state = FarmState(root)
        c1 = CellSpec(cid=cid_of("s1"), key="s1", benchmark="gcc",
                      scheme="base", width=4, spec=dict(_FARM_SPEC))
        state.rpc_publish(c1.to_dict())
        ack("publish-1", cid=c1.cid)
        grant = state.rpc_claim(c1.cid, "w0", 30.0, 1)
        ack("token-1", token=grant["lease"]["token"])
        state.rpc_heartbeat(c1.cid, grant["lease"]["token"], 10, 5, None)
        done = state.rpc_complete(CellResult(
            cid=c1.cid, key="s1", worker="w0", attempt=1, status="ok",
            stats={"cycles": 100}).to_dict(), grant["lease"]["token"])
        assert done.get("ok") == 1
        ack("complete-1", cid=c1.cid, attempt=1, worker="w0")
        c2 = CellSpec(cid=cid_of("s2"), key="s2", benchmark="mesa",
                      scheme="ER", width=4, spec=dict(_FARM_SPEC))
        state.rpc_publish(c2.to_dict())
        ack("publish-2", cid=c2.cid)
        grant2 = state.rpc_claim(c2.cid, "w1", 30.0, 1)
        ack("token-2", token=grant2["lease"]["token"])

    @staticmethod
    def recover(root: str) -> None:
        from repro.farm.server import FarmState

        FarmState(root)  # must rebuild from any crash image
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        from repro.farm.server import FarmState

        problems: List[str] = []
        state = FarmState(root)
        tokens = [op.info["token"] for op in acked
                  if op.label.startswith("token-")]
        if tokens and state.fence < max(tokens):
            problems.append(
                f"fence counter recovered to {state.fence}, below issued "
                f"token {max(tokens)} — a restart could reuse it")
        for op in acked:
            if op.label.startswith("publish-") and op.info["cid"] not in state.cells:
                problems.append(f"acked cell {op.info['cid']} lost")
            if op.label.startswith("complete-"):
                key = (op.info["cid"], op.info["attempt"], op.info["worker"])
                if key not in state._result_keys:
                    problems.append(f"acked completion {key} lost")
        return problems


# ============================================================= serve-jobs

_SERVE_SPEC = {"benchmark": "gzip", "length": 500, "warmup": 1000}
_SERVE_STATS = {"cycles": 1234, "committed": 500}
_SERVE_COST = {"backend": "scalar", "cycles": 1234, "instructions": 500,
               "wall_seconds": 0.01, "batch_jobs": 1}


@_register("serve-jobs",
           "simulation service: job journal transitions + result-cache "
           "entry in the server's exact write order (cache durable "
           "before the done line); one job completes, one stays queued, "
           "one fails")
class _ServeJobs:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        from repro.serve.cache import ResultCache
        from repro.serve.jobs import JobJournal

        journal = JobJournal(os.path.join(root, "jobs.json"))
        cache = ResultCache(os.path.join(root, "cache"))

        def transition(jid: str, key: str, state: str, *,
                       durable: bool = True, **extra) -> None:
            journal.record({"id": jid, "key": key, "state": state,
                            "ts": 0.0, "spec": dict(_SERVE_SPEC), **extra},
                           durable=durable)

        # Job 1: the full happy path, in the server's write order —
        # the cache entry is durable strictly before the done line.
        j1, k1 = cid_of("serve-k1"), "serve-k1"
        transition(j1, k1, "queued")
        ack("queued-j1", id=j1, key=k1)
        transition(j1, k1, "running", durable=False)
        cache.put(k1, dict(_SERVE_STATS), dict(_SERVE_COST))
        ack("entry-j1", id=j1, key=k1)
        transition(j1, k1, "done", cost=dict(_SERVE_COST))
        ack("done-j1", id=j1, key=k1)
        # Job 2: acked, still queued at the crash — must be re-enqueued,
        # never lost.
        j2, k2 = cid_of("serve-k2"), "serve-k2"
        transition(j2, k2, "queued")
        ack("queued-j2", id=j2, key=k2)
        # Job 3: simulation failed after ack.
        j3, k3 = cid_of("serve-k3"), "serve-k3"
        transition(j3, k3, "queued")
        ack("queued-j3", id=j3, key=k3)
        transition(j3, k3, "running", durable=False)
        transition(j3, k3, "failed",
                   error={"error_type": "SimulationError",
                          "message": "injected"})
        ack("failed-j3", id=j3, key=k3)

    @staticmethod
    def recover(root: str) -> None:
        from repro.serve.jobs import JobJournal
        from repro.serve.server import ServeState

        path = os.path.join(root, "jobs.json")
        if os.path.exists(path):
            try:
                JobJournal(path)
            except (DigestMismatch, MalformedRecord):
                _store_repair(root)
        # Full service recovery must terminate on every crash image and
        # rebuild a servable state (re-queueing what never finished).
        ServeState(root)
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        from repro.serve.cache import ResultCache
        from repro.serve.jobs import JobJournal

        problems: List[str] = []
        path = os.path.join(root, "jobs.json")
        if not os.path.exists(path):
            if acked:
                problems.append("job journal lost with acked transitions")
            return problems
        try:
            journal = JobJournal(path)
        except Exception as exc:  # noqa: BLE001 — any raise here is the bug
            return [f"job journal unloadable after recovery: {exc}"]
        latest = journal.latest()
        cache = ResultCache(os.path.join(root, "cache"))
        for op in acked:
            jid, key = op.info["id"], op.info["key"]
            if op.label.startswith("queued-") and jid not in latest:
                problems.append(f"acked submission {jid} lost from journal")
            elif op.label.startswith("entry-"):
                entry = cache.get(key)
                if entry is None:
                    problems.append(f"acked cache entry {key} lost")
                elif entry.stats != _SERVE_STATS:
                    problems.append(f"acked cache entry {key} mutated")
            elif op.label.startswith("done-"):
                record = latest.get(jid)
                if record is None or record["state"] != "done":
                    problems.append(
                        f"acked done transition for {jid} lost "
                        f"(recovered state: "
                        f"{record['state'] if record else 'missing'})")
            elif op.label.startswith("failed-"):
                record = latest.get(jid)
                if record is None or record["state"] != "failed":
                    problems.append(
                        f"acked failed transition for {jid} lost")
        # Cross-layer write-order invariant, acked or not: a journaled
        # ``done`` implies its cache entry was already durable.
        for jid, record in latest.items():
            if record["state"] == "done" and cache.get(record["key"]) is None:
                problems.append(
                    f"journal says {jid} is done but its cache entry is "
                    f"unreadable — the cache-before-done ordering broke")
        return problems


# ======================================================== journal-archive

_LEGACY_DOC = json.dumps({"version": 2, "cells": {}})


@_register("journal-archive",
           "incompatible-journal migration: archive the v2 document, "
           "start a fresh v3 journal — the _archive durability fix's "
           "regression subject")
class _JournalArchive:
    @staticmethod
    def run(root: str, ack: Callable) -> None:
        path = os.path.join(root, "journal.json")
        atomic_write_text(path, _LEGACY_DOC)
        ack("legacy")
        journal = SweepJournal(path, archive_incompatible=True)
        # SweepJournal just told us where the archive lives; from this
        # instant its path is reportable, so it must survive a crash.
        ack("archived", backup=os.path.basename(journal.archived))
        journal.record_ok("cellA", SimStats(cycles=1000, committed=400))
        ack("ok-cellA")

    @staticmethod
    def recover(root: str) -> None:
        _store_repair(root)

    @staticmethod
    def check(root: str, acked: List[Op]) -> List[str]:
        problems: List[str] = []
        path = os.path.join(root, "journal.json")
        if not _acked(acked, "archived"):
            return problems
        backup = next(op.info["backup"] for op in acked
                      if op.label == "archived")
        backup_path = os.path.join(root, backup)
        if not os.path.exists(backup_path):
            problems.append(f"acked archive {backup} lost")
        else:
            with open(backup_path, encoding="utf-8") as handle:
                if handle.read() != _LEGACY_DOC:
                    problems.append(f"acked archive {backup} mutated")
        if os.path.exists(path):
            try:
                journal = SweepJournal(path)
            except ValueError:
                problems.append(
                    "incompatible journal resurrected after its archival "
                    "was acked")
            else:
                if _acked(acked, "ok-cellA") and journal.get("cellA") is None:
                    problems.append("acked cell lost from fresh journal")
        elif _acked(acked, "ok-cellA"):
            problems.append("fresh journal lost with acked cell")
        return problems
