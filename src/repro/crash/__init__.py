"""Deterministic crash-consistency harness (ALICE/CrashMonkey style).

Every durability layer in this repo — the checksummed envelope store,
the checked-line sweep journals, the farm lease protocol, the HTTP
lease service — funnels its disk traffic through the handful of
primitives in :mod:`repro.store.atomic` and
:mod:`repro.store.integrity`.  That narrow waist is what makes
crash-consistency *checkable* rather than argued about:

1. **Record** (:mod:`repro.crash.oplog`): run a workload with a
   :class:`~repro.crash.oplog.CrashRecorder` subscribed to the I/O
   observer hook, producing an ordered op log of every write, append,
   exclusive create, rename, unlink, fsync, and directory fsync under
   one root — plus ``ack`` pseudo-ops marking the instants where an API
   returned and the caller was promised durability.
2. **Enumerate** (:mod:`repro.crash.replay`): replay op-log prefixes
   into an in-memory filesystem model under every legal POSIX
   reordering — un-fsynced file data may be dropped or torn at block
   granularity, renames are atomic but may be lost entirely when the
   directory was never fsynced, a *skipped* directory fsync forces
   nothing — yielding the set of states a power cut could leave on
   disk.
3. **Recover and check** (:mod:`repro.crash.harness`): materialize
   each state into a scratch root, run the owning layer's recovery
   path (``repro.store`` fsck/repair, journal salvage, farm recovery),
   and assert the recovery oracle: recovery terminates without
   crashing, no acknowledged write is lost, no unacknowledged write
   surfaces as committed, fencing tokens never regress, and a final
   fsck pass is clean.

Workloads covering each durability layer live in
:mod:`repro.crash.workloads`; ``python -m repro.crash run`` drives them
all and is wired into CI via ``tools/ci_crash_consistency.py``.
"""

from repro.crash.harness import CrashReport, Violation, Workload, run_harness
from repro.crash.oplog import Op, CrashRecorder
from repro.crash.replay import CrashState, apply_ops, enumerate_states, forced_indices, materialize
from repro.crash.workloads import WORKLOADS

__all__ = [
    "CrashRecorder",
    "CrashReport",
    "CrashState",
    "Op",
    "Violation",
    "WORKLOADS",
    "Workload",
    "apply_ops",
    "enumerate_states",
    "forced_indices",
    "materialize",
    "run_harness",
]
