"""Record → enumerate → recover → check, for one workload at a time.

A workload is the unit of coverage: it exercises one durability layer's
write path against a live root while a :class:`CrashRecorder` listens,
declares its acknowledgment points, and knows how to (a) run that
layer's recovery against an arbitrary crash image and (b) state the
layer-specific half of the oracle.  The harness supplies the universal
half: recovery must terminate without an unhandled exception, and after
``fsck --repair`` the tree must verify clean.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.crash.oplog import CrashRecorder, Op
from repro.crash.replay import CrashState, enumerate_states, materialize
from repro.store import fsck_tree


@dataclass
class Workload:
    """One durability layer's crash-consistency contract.

    ``run(root, ack)`` performs the writes, calling ``ack(label,
    **info)`` immediately after each API that promises durability
    returns.  ``recover(root)`` runs the owning layer's recovery path
    against a crash image.  ``check(root, acked)`` returns a list of
    oracle-violation strings given which acks preceded the crash.
    """

    name: str
    description: str
    run: Callable[[str, Callable], None]
    recover: Callable[[str], None]
    check: Callable[[str, List[Op]], List[str]]


@dataclass
class Violation:
    """One crash state that recovery failed to handle."""

    workload: str
    state: CrashState
    problem: str

    def __str__(self) -> str:
        return (f"[{self.workload}] {self.state.description}: "
                f"{self.problem}")


@dataclass
class CrashReport:
    """Everything the harness learned about one workload."""

    workload: str
    ops: int = 0
    crash_points: int = 0
    states: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


def run_harness(
    workload: Workload,
    base_dir: str,
    limit: Optional[int] = None,
) -> CrashReport:
    """Record the workload's op log, enumerate every reachable crash
    state, and put each one through recovery plus the oracle.

    ``limit`` caps the number of states checked (smoke-test mode); the
    CI gate runs unlimited.
    """
    live = os.path.join(base_dir, "live")
    os.makedirs(live, exist_ok=True)
    with CrashRecorder(live) as recorder:
        workload.run(live, recorder.ack)

    report = CrashReport(workload=workload.name, ops=len(recorder.ops),
                         crash_points=len(recorder.ops) + 1)
    scratch = os.path.join(base_dir, "scratch")
    for state in enumerate_states(recorder.ops):
        if limit is not None and report.states >= limit:
            break
        report.states += 1
        if os.path.exists(scratch):
            shutil.rmtree(scratch)
        materialize(state.fs, scratch)
        try:
            workload.recover(scratch)
        except Exception as exc:  # noqa: BLE001 - the oracle's business
            report.violations.append(Violation(
                workload.name, state,
                f"recovery raised {type(exc).__name__}: {exc}"))
            continue
        for problem in workload.check(scratch, state.acked):
            report.violations.append(Violation(workload.name, state, problem))
        # Universal oracle: whatever recovery left behind, a repair pass
        # must converge and a plain verify pass must then come up clean.
        repair = fsck_tree(scratch, repair=True)
        if repair.unrepaired:
            report.violations.append(Violation(
                workload.name, state,
                "fsck --repair left unrepaired damage: "
                + "; ".join(f"{f.path}: {f.status}"
                            for f in repair.unrepaired[:3])))
            continue
        verify = fsck_tree(scratch)
        if verify.unrepaired:
            report.violations.append(Violation(
                workload.name, state,
                "post-repair fsck still dirty: "
                + "; ".join(f"{f.path}: {f.status}"
                            for f in verify.unrepaired[:3])))
    return report
