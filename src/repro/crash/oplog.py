"""Op-log recording: turn observed I/O into a replayable trace.

The grammar is small because the I/O surface is small.  One
:class:`Op` per event, in program order:

========== ============================================================
kind       meaning
========== ============================================================
write      full-file contents landed in ``path`` (temp file of an
           atomic write, or the payload of an exclusive create)
append     ``data`` appended to ``path`` at byte ``offset``
create     ``path`` created with ``O_EXCL`` (farm lease claim)
rename     ``path`` atomically renamed to ``dst`` (:func:`os.replace`)
unlink     ``path`` removed
fsync      file data of ``path`` forced to stable storage
fsync_dir  directory entries of ``path`` forced — unless ``skipped``
           is True, in which case the platform refused and *nothing*
           was forced
ack        not an I/O at all: the workload declares that an API just
           returned success for ``label``, so everything the API wrote
           must now survive any crash
========== ============================================================

Paths are stored relative to the recorder's root; events touching files
outside the root (quarantine moves into other trees, tempfiles from
other subsystems) are dropped so the model stays closed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.store.atomic import add_io_observer, remove_io_observer

#: Op kinds that change on-disk state (candidates for being lost in a
#: crash); fsync/fsync_dir are barriers, ack is bookkeeping.
STATEFUL = frozenset({"write", "append", "create", "rename", "unlink"})

#: Op kinds that move file *data* (forced by fsync on the same path).
DATA_OPS = frozenset({"write", "append"})

#: Op kinds that change *directory entries* (forced by fsync_dir on the
#: containing directory).
METADATA_OPS = frozenset({"create", "rename", "unlink"})


@dataclass
class Op:
    """One recorded I/O operation (or ack pseudo-op)."""

    kind: str
    path: str = ""
    dst: Optional[str] = None
    data: bytes = b""
    offset: int = 0
    skipped: bool = False
    label: Optional[str] = None
    info: Dict = field(default_factory=dict)

    def __repr__(self) -> str:  # compact, for violation messages
        bits = [self.kind, self.path]
        if self.dst is not None:
            bits.append("-> " + self.dst)
        if self.kind == "append":
            bits.append(f"@{self.offset}+{len(self.data)}")
        elif self.data:
            bits.append(f"[{len(self.data)}B]")
        if self.skipped:
            bits.append("(skipped)")
        if self.label:
            bits.append(f"ack:{self.label}")
        return "<" + " ".join(b for b in bits if b) + ">"


class CrashRecorder:
    """Context manager that subscribes to the store's I/O observers and
    accumulates an op log for everything under ``root``.

    Use::

        with CrashRecorder(root) as rec:
            workload_writes_things(root)
            rec.ack("first-envelope", version=1)
        states = enumerate_states(rec.ops)
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.ops: List[Op] = []

    # -------------------------------------------------------- recording

    def _relative(self, path: str) -> Optional[str]:
        """Root-relative form of ``path``, or None when outside root."""
        absolute = os.path.abspath(path)
        if absolute == self.root:
            return ""
        prefix = self.root + os.sep
        if not absolute.startswith(prefix):
            return None
        return absolute[len(prefix):].replace(os.sep, "/")

    def __call__(self, event: Dict) -> None:
        path = self._relative(event.get("path", ""))
        if path is None:
            return
        dst = event.get("dst")
        if dst is not None:
            dst = self._relative(dst)
            if dst is None:
                return  # renamed out of the modelled tree
        self.ops.append(Op(
            kind=event["op"],
            path=path,
            dst=dst,
            data=bytes(event.get("data", b"")),
            offset=int(event.get("offset", 0)),
            skipped=bool(event.get("skipped", False)),
        ))

    def ack(self, label: str, **info) -> None:
        """Mark this instant as an acknowledgment point: the workload's
        caller has been told ``label`` is durable, so the oracle will
        demand it survives any crash at or after this index."""
        self.ops.append(Op(kind="ack", label=label, info=dict(info)))

    # ------------------------------------------------- context manager

    def __enter__(self) -> "CrashRecorder":
        add_io_observer(self)
        return self

    def __exit__(self, *exc_info) -> None:
        remove_io_observer(self)
