"""Crash-state enumeration: op-log prefixes under legal reorderings.

The model is ALICE's, specialized to the ops this repo emits.  A crash
at index ``k`` persists some subset of the stateful ops in
``ops[:k]``, constrained by the barriers observed so far:

* ``fsync(F)`` forces every earlier ``write``/``append`` to ``F`` —
  file *data* only.  It does **not** persist F's directory entry, which
  is why a freshly created lease file can vanish even after its payload
  was fsynced (safe: claims are retried).
* a non-skipped ``fsync_dir(D)`` forces every earlier ``create`` /
  ``unlink`` of a file in D and every earlier ``rename`` whose source
  *or* destination lives in D.
* a ``fsync_dir`` the platform **skipped** forces nothing — the whole
  point of making skips observable.

Everything not forced is up for grabs, independently: dropped entirely,
applied, or — for data ops — torn at a byte-granularity prefix
(block-aligned tears plus first/middle/last byte).  Renames are atomic:
applied or dropped, never torn.  Two ordering facts keep the model
physical rather than merely combinatorial:

* a dropped ``create`` suppresses later data ops to the same path in
  that prefix (the inode's directory entry never existed);
* a dropped ``rename`` suppresses later data ops to its destination
  (they hit an inode reachable only through the lost entry) while the
  source file survives as temp debris for fsck to sweep.

Exhaustive 2^n subset expansion is replaced by the standard vector
family — all-applied, all-dropped, each single op dropped, each single
op applied alone, and tear points per data op — which covers every
single-fault persistence pattern plus both extremes; states are
deduplicated by content hash so the harness only pays for distinct
on-disk images.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.crash.oplog import DATA_OPS, METADATA_OPS, Op, STATEFUL

#: Tear granularity: filesystems persist page-cache pages independently.
BLOCK = 4096


def _dirname(path: str) -> str:
    return path.rsplit("/", 1)[0] if "/" in path else ""


def forced_indices(ops: List[Op], k: int) -> Set[int]:
    """Indices of ops in ``ops[:k]`` that every crash state at point
    ``k`` must include, because a later barrier forced them."""
    forced: Set[int] = set()
    for j in range(k):
        barrier = ops[j]
        if barrier.kind == "fsync":
            for i in range(j):
                if ops[i].kind in DATA_OPS and ops[i].path == barrier.path:
                    forced.add(i)
        elif barrier.kind == "fsync_dir" and not barrier.skipped:
            for i in range(j):
                op = ops[i]
                if op.kind not in METADATA_OPS:
                    continue
                if op.kind == "rename":
                    dirs = {_dirname(op.path), _dirname(op.dst or "")}
                else:
                    dirs = {_dirname(op.path)}
                if barrier.path in dirs:
                    forced.add(i)
    return forced


def apply_ops(
    ops: List[Op],
    k: int,
    drops: FrozenSet[int] = frozenset(),
    tears: Optional[Dict[int, int]] = None,
) -> Dict[str, bytes]:
    """Replay ``ops[:k]`` into a path→bytes filesystem image, dropping
    the stateful ops in ``drops`` and truncating the data op at each
    ``tears`` index to that many payload bytes.  Forced-op discipline is
    the *enumerator's* job — this function applies whatever it is told."""
    tears = tears or {}
    fs: Dict[str, bytes] = {}
    suppressed: Set[str] = set()
    for i in range(k):
        op = ops[i]
        if op.kind not in STATEFUL:
            continue
        if op.kind == "write":
            if op.path in suppressed:
                continue
            if i in drops:
                continue  # temp entry never persisted
            data = op.data[:tears[i]] if i in tears else op.data
            fs[op.path] = data
        elif op.kind == "append":
            if op.path in suppressed or i in drops:
                continue
            data = op.data[:tears[i]] if i in tears else op.data
            base = fs.get(op.path, b"")
            if len(base) < op.offset:
                base += b"\x00" * (op.offset - len(base))
            fs[op.path] = base[:op.offset] + data
        elif op.kind == "create":
            if i in drops:
                suppressed.add(op.path)
            else:
                suppressed.discard(op.path)
                fs[op.path] = b""
        elif op.kind == "rename":
            if i in drops:
                # Lost rename: dst keeps whatever it had, src remains as
                # debris, and post-rename data to dst is unreachable.
                suppressed.add(op.dst or "")
            else:
                suppressed.discard(op.dst or "")
                fs[op.dst or ""] = fs.pop(op.path, b"")
        elif op.kind == "unlink":
            if i not in drops:
                fs.pop(op.path, None)
    return fs


@dataclass
class CrashState:
    """One reachable power-loss image plus the promises made before it."""

    index: int                 # crash point: ops[:index] were in flight
    description: str           # which reordering produced this image
    fs: Dict[str, bytes]       # path -> bytes, relative to the root
    acked: List[Op] = field(default_factory=list)  # ack ops before index

    def digest(self) -> str:
        h = hashlib.sha256()
        for path in sorted(self.fs):
            h.update(path.encode())
            h.update(b"\x00")
            h.update(hashlib.sha256(self.fs[path]).digest())
        for ack in self.acked:
            h.update(("|" + (ack.label or "")).encode())
        return h.hexdigest()


def _tear_points(length: int) -> List[int]:
    points = {0, 1, length // 2, length - 1}
    points.update(range(BLOCK, length, BLOCK))
    return sorted(p for p in points if 0 <= p < length)


def enumerate_states(ops: List[Op]) -> Iterator[CrashState]:
    """Yield every distinct crash state reachable from the op log.

    For each crash point the vector family is: everything applied,
    everything pending dropped, each pending op dropped alone, each
    pending op applied alone, and each tear point of each pending data
    op (others applied).  Deduplicated by image digest, so the caller
    sees each distinct on-disk state exactly once.
    """
    seen: Set[str] = set()

    def emit(k: int, description: str, drops: FrozenSet[int],
             tears: Dict[int, int]) -> Iterator[CrashState]:
        acked = [op for op in ops[:k] if op.kind == "ack"]
        state = CrashState(index=k, description=description,
                           fs=apply_ops(ops, k, drops, tears), acked=acked)
        key = state.digest()
        if key not in seen:
            seen.add(key)
            yield state

    for k in range(len(ops) + 1):
        forced = forced_indices(ops, k)
        pending = [i for i in range(k)
                   if ops[i].kind in STATEFUL and i not in forced]
        yield from emit(k, f"@{k} all applied", frozenset(), {})
        if not pending:
            continue
        yield from emit(k, f"@{k} all pending dropped", frozenset(pending), {})
        for p in pending:
            yield from emit(k, f"@{k} drop {ops[p]!r}", frozenset([p]), {})
            others = frozenset(q for q in pending if q != p)
            yield from emit(k, f"@{k} only {ops[p]!r}", others, {})
            if ops[p].kind in DATA_OPS and len(ops[p].data) > 1:
                for t in _tear_points(len(ops[p].data)):
                    yield from emit(
                        k, f"@{k} tear {ops[p]!r} at {t}", frozenset(), {p: t})


def materialize(fs: Dict[str, bytes], scratch_root: str) -> None:
    """Write a crash image into a real directory tree for recovery."""
    os.makedirs(scratch_root, exist_ok=True)
    for path in sorted(fs):
        absolute = os.path.join(scratch_root, path.replace("/", os.sep))
        os.makedirs(os.path.dirname(absolute) or scratch_root, exist_ok=True)
        with open(absolute, "wb") as handle:
            handle.write(fs[path])
