"""Crash-consistency CLI.

::

    python -m repro.crash list                 # registered workloads
    python -m repro.crash run                  # all workloads, full sweep
    python -m repro.crash run --workload NAME  # just one
    python -m repro.crash run --limit N        # smoke mode: N states each

Exit status: 0 when every enumerated crash state recovered clean, 1
when any oracle violation survived, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.crash.harness import run_harness
from repro.crash.workloads import WORKLOADS


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crash",
        description="Enumerate power-loss states across every durability "
                    "layer and prove recovery handles each one.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list registered workloads")
    listing.set_defaults(func=_cmd_list)

    run = sub.add_parser("run", help="record, enumerate, recover, check")
    run.add_argument("--workload", default=None, choices=sorted(WORKLOADS),
                     help="run one workload (default: all)")
    run.add_argument("--limit", type=int, default=None, metavar="N",
                     help="check at most N states per workload (smoke mode)")
    run.add_argument("--root", default=None, metavar="DIR",
                     help="scratch directory (default: a fresh temp dir)")
    run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(WORKLOADS):
        print(f"  {name:<20} {WORKLOADS[name].description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = [args.workload] if args.workload else sorted(WORKLOADS)
    failed = False
    for name in names:
        workload = WORKLOADS[name]
        if args.root is not None:
            report = run_harness(workload, os.path.join(args.root, name),
                                 limit=args.limit)
        else:
            with tempfile.TemporaryDirectory(prefix=f"crash-{name}-") as tmp:
                report = run_harness(workload, tmp, limit=args.limit)
        verdict = "clean" if report.clean else (
            f"{len(report.violations)} VIOLATIONS")
        print(f"{name:<20} {report.ops:>3} ops  "
              f"{report.crash_points:>3} crash points  "
              f"{report.states:>4} states  {verdict}")
        for violation in report.violations[:20]:
            print(f"  FAIL {violation}")
        if len(report.violations) > 20:
            print(f"  ... and {len(report.violations) - 20} more")
        failed = failed or not report.clean
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
