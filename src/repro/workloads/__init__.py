"""Synthetic workload substrate.

The paper evaluates PRI on SPEC2000 (Alpha binaries, DEC C -O4, large
reduced inputs for most integer benchmarks, reference inputs for FP).
None of that is available here, so each benchmark is modelled as a
*statistical profile* — instruction mix, operand-width distribution,
dependence-distance distribution, control-flow predictability, and memory
locality — and :class:`~repro.workloads.generator.TraceGenerator` expands
a profile into a concrete micro-op trace with fully consistent dataflow
(every source operand carries the value it must observe).

The profiles are calibrated against the per-benchmark numbers the paper
itself reports: Table 2 (base IPC), Figure 2 (operand significance), and
the relative speedups of Figures 10 and 12.
"""

from repro.workloads.value_models import IntValueModel, FpValueModel, WidthAnchors
from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC_INT,
    SPEC_FP,
    ALL_BENCHMARKS,
    get_profile,
)
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.trace import Trace, TraceStats
from repro.workloads.builder import TraceBuilder
from repro.workloads.serialize import save_trace, load_trace

__all__ = [
    "IntValueModel",
    "FpValueModel",
    "WidthAnchors",
    "BenchmarkProfile",
    "SPEC_INT",
    "SPEC_FP",
    "ALL_BENCHMARKS",
    "get_profile",
    "TraceGenerator",
    "generate_trace",
    "Trace",
    "TraceStats",
    "TraceBuilder",
    "save_trace",
    "load_trace",
]
