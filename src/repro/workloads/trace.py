"""Trace container and summary statistics."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.isa.instruction import MicroOp


@dataclass
class TraceStats:
    """Static summary of a trace (mix and control-flow facts)."""

    length: int
    mix: Counter
    branches: int
    taken_branches: int
    loads: int
    stores: int
    reg_writers: int

    @property
    def taken_rate(self) -> float:
        return self.taken_branches / self.branches if self.branches else 0.0


class Trace:
    """An ordered sequence of :class:`MicroOp` with consistent dataflow.

    Traces are immutable once built.  ``name`` and ``seed`` identify the
    generating profile for reporting.
    """

    def __init__(
        self,
        name: str,
        ops: Sequence[MicroOp],
        seed: int = 0,
        initial_int: Sequence[int] = None,
        initial_fp: Sequence[int] = None,
        warmup_ops: Sequence[MicroOp] = (),
    ) -> None:
        self.name = name
        self.seed = seed
        self._ops: List[MicroOp] = list(ops)
        #: Architectural register contents before the first op; the
        #: machine seeds its committed physical registers from these.
        self.initial_int: List[int] = list(initial_int) if initial_int else [0] * 32
        self.initial_fp: List[int] = list(initial_fp) if initial_fp else [0] * 32
        #: Untimed prefix used to warm predictors and caches — the stand-in
        #: for the paper's 400M-instruction fast-forward.
        self.warmup_ops: List[MicroOp] = list(warmup_ops)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self._ops)

    def __getitem__(self, index: int) -> MicroOp:
        return self._ops[index]

    @property
    def ops(self) -> Sequence[MicroOp]:
        return self._ops

    def stats(self) -> TraceStats:
        """Compute mix/control statistics over the whole trace."""
        mix = Counter()
        branches = taken = loads = stores = writers = 0
        for op in self._ops:
            mix[op.op] += 1
            if op.is_branch:
                branches += 1
                taken += op.taken
            if op.is_load:
                loads += 1
            if op.is_store:
                stores += 1
            if op.dest is not None:
                writers += 1
        return TraceStats(
            length=len(self._ops),
            mix=mix,
            branches=branches,
            taken_branches=taken,
            loads=loads,
            stores=stores,
            reg_writers=writers,
        )

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self._ops)} ops, seed={self.seed})"
