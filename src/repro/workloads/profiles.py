"""Per-benchmark statistical profiles.

Each SPEC2000 benchmark the paper simulates is modelled by a
:class:`BenchmarkProfile`.  Profiles are calibrated against what the paper
itself reports per benchmark:

* Table 2 — base IPC on the 4-wide and 8-wide models (recorded here as
  ``paper_ipc_4w`` / ``paper_ipc_8w`` and compared in EXPERIMENTS.md).
* Figure 2 — cumulative operand-width distributions (``int_widths``) and
  FP exponent/significand significance (``fp_*``).
* Figures 10/12 — which benchmarks are register-pressure bound (high ILP,
  long-latency misses holding registers) versus bound elsewhere
  (``ammp`` is memory-serialised and gains nothing from PRI).

The knobs fall into four groups: instruction mix, value significance,
dependence structure (ILP), and control/memory behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.workloads.value_models import WidthAnchors


def int_anchors(f10: float, tail: float = 0.93) -> WidthAnchors:
    """Build a width CDF from its value at 10 bits (the paper's headline
    statistic: 23%-82% of integer operands fit in 10 bits).

    The curve shape follows Figure 2: roughly linear growth up to the
    10-bit anchor, then a long flat tail out to 64 bits.
    """
    tail = max(tail, f10 + 0.02)
    f1 = 0.30 * f10
    f4 = 0.58 * f10
    f7 = 0.85 * f10
    f16 = f10 + (tail - f10) * 0.35
    f24 = f10 + (tail - f10) * 0.60
    f32 = tail
    f48 = tail + (1.0 - tail) * 0.60
    return WidthAnchors((f1, f4, f7, f10, f16, f24, f32, f48, 1.0))


@dataclass(frozen=True)
class BenchmarkProfile:
    """Statistical model of one benchmark (see module docstring)."""

    name: str
    suite: str  # "int" or "fp"

    # --- instruction mix (fractions of all micro-ops; remainder is INT_ALU)
    load_frac: float = 0.25
    store_frac: float = 0.10
    branch_frac: float = 0.15
    mul_frac: float = 0.01
    div_frac: float = 0.001
    fp_add_frac: float = 0.0
    fp_mul_frac: float = 0.0
    fp_div_frac: float = 0.0
    #: Fraction of memory ops that move FP data (FP_LOAD/FP_STORE).
    fp_mem_frac: float = 0.0

    # --- value significance (Figure 2)
    int_widths: WidthAnchors = field(default_factory=lambda: int_anchors(0.5))
    fp_zero_frac: float = 0.50
    fp_ones_frac: float = 0.02
    fp_exp_narrow_frac: float = 0.77
    fp_sig_narrow_frac: float = 0.54

    # --- dependence structure (ILP)
    #: Mean distance (in dynamic instructions) from a consumer to its
    #: producer, for the "recent" fraction of sources; geometric.
    dep_mean: float = 6.0
    #: Probability a source is drawn from the recent-producer window (the
    #: rest read long-lived registers, i.e. distant producers).
    src_recent_frac: float = 0.75
    #: Probability a source operand is the hard-wired zero register.
    zero_reg_frac: float = 0.04
    #: Fraction of loads whose address depends on the previous load's
    #: result (pointer chasing; serialises mcf/ammp-like codes).
    pointer_chase_frac: float = 0.0
    #: Fraction of destinations drawn from a small hot pool (controls the
    #: logical-register redefinition distance, hence base free latency).
    dest_hot_frac: float = 0.6
    dest_hot_regs: int = 8

    # --- control flow
    branch_sites: int = 256
    #: Fraction of branch sites that are easy (strongly biased).
    easy_site_frac: float = 0.78
    easy_bias: float = 0.985
    hard_bias: float = 0.70
    #: Fraction of branch sites that are loops with a fixed trip count
    #: (pattern T..TN — bimodal mispredicts the exit, gshare learns it).
    loop_site_frac: float = 0.12
    #: Fraction of branches that are calls (matched by returns).
    call_frac: float = 0.04
    #: Fraction of taken branches that are loop back-edges (backward).
    backedge_frac: float = 0.6
    #: Static code footprint in bytes (drives IL1 behaviour).
    code_footprint: int = 12 * 1024

    # --- memory locality (directly calibratable service fractions):
    #: fraction of data accesses engineered to miss DL1 and hit L2;
    l2_access_frac: float = 0.04
    #: fraction of data accesses engineered to miss to main memory.
    mem_access_frac: float = 0.003

    # --- paper-reported numbers (for EXPERIMENTS.md comparison only)
    paper_ipc_4w: float = 0.0
    paper_ipc_8w: float = 0.0
    notes: str = ""

    @property
    def dl1_hit_frac(self) -> float:
        """Fraction of data accesses engineered to hit the DL1."""
        return max(0.0, 1.0 - self.l2_access_frac - self.mem_access_frac)

    @property
    def alu_frac(self) -> float:
        """INT_ALU fraction (whatever the explicit classes leave over)."""
        used = (
            self.load_frac
            + self.store_frac
            + self.branch_frac
            + self.mul_frac
            + self.div_frac
            + self.fp_add_frac
            + self.fp_mul_frac
            + self.fp_div_frac
        )
        if used >= 1.0:
            raise ValueError(f"{self.name}: instruction mix exceeds 1.0")
        return 1.0 - used


def _int_bench(name, f10, ipc4, ipc8, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        suite="int",
        int_widths=int_anchors(f10),
        paper_ipc_4w=ipc4,
        paper_ipc_8w=ipc8,
        **kw,
    )


def _fp_bench(name, ipc4, ipc8, **kw) -> BenchmarkProfile:
    kw.setdefault("branch_frac", 0.06)
    kw.setdefault("load_frac", 0.30)
    kw.setdefault("store_frac", 0.10)
    kw.setdefault("fp_add_frac", 0.20)
    kw.setdefault("fp_mul_frac", 0.15)
    kw.setdefault("fp_div_frac", 0.005)
    kw.setdefault("fp_mem_frac", 0.85)
    kw.setdefault("easy_site_frac", 0.93)
    kw.setdefault("easy_bias", 0.995)
    kw.setdefault("loop_site_frac", 0.05)
    kw.setdefault("int_widths", int_anchors(0.6))
    return BenchmarkProfile(
        name=name,
        suite="fp",
        paper_ipc_4w=ipc4,
        paper_ipc_8w=ipc8,
        **kw,
    )


#: SPEC2000 integer benchmarks (Table 2, left).  Width-CDF anchors span
#: the paper's reported 23%-82% range at 10 bits.
SPEC_INT: Tuple[BenchmarkProfile, ...] = (
    _int_bench(
        "bzip2", 0.72, 1.62, 1.67,
        load_frac=0.26, store_frac=0.09, branch_frac=0.13,
        dep_mean=7.0, easy_site_frac=0.74,
        l2_access_frac=0.035, mem_access_frac=0.003,
        notes="byte-granular compression; very narrow values",
    ),
    _int_bench(
        "crafty", 0.25, 1.35, 1.40,
        load_frac=0.28, store_frac=0.08, branch_frac=0.12,
        dep_mean=9.0, easy_site_frac=0.78,
        l2_access_frac=0.025, mem_access_frac=0.001,
        code_footprint=20 * 1024,
        notes="64-bit bitboards; widest operands of SPECint (Fig 2 worst case)",
    ),
    _int_bench(
        "eon", 0.55, 1.81, 2.11,
        load_frac=0.28, store_frac=0.14, branch_frac=0.10,
        fp_add_frac=0.04, fp_mul_frac=0.04, fp_mem_frac=0.15,
        dep_mean=13.0, easy_site_frac=0.90,
        l2_access_frac=0.01, mem_access_frac=0.0005,
        code_footprint=16 * 1024, notes="C++ ray tracer; high ILP, predictable",
    ),
    _int_bench(
        "gap", 0.50, 1.55, 1.59,
        load_frac=0.27, store_frac=0.11, branch_frac=0.13,
        dep_mean=7.5, easy_site_frac=0.84,
        l2_access_frac=0.05, mem_access_frac=0.002,
        notes="group theory interpreter",
    ),
    _int_bench(
        "gcc", 0.60, 1.16, 1.23,
        load_frac=0.27, store_frac=0.12, branch_frac=0.17,
        dep_mean=5.5, easy_site_frac=0.74,
        l2_access_frac=0.05, mem_access_frac=0.004,
        code_footprint=32 * 1024, notes="large code footprint; branchy",
    ),
    _int_bench(
        "gzip", 0.80, 1.51, 1.54,
        load_frac=0.24, store_frac=0.09, branch_frac=0.14,
        dep_mean=6.5, easy_site_frac=0.78,
        l2_access_frac=0.04, mem_access_frac=0.003,
        notes="narrowest operands of SPECint (Fig 2 best case)",
    ),
    _int_bench(
        "mcf", 0.55, 0.36, 0.37,
        load_frac=0.32, store_frac=0.09, branch_frac=0.16,
        dep_mean=4.5, pointer_chase_frac=0.35,
        easy_site_frac=0.70, l2_access_frac=0.12, mem_access_frac=0.12,
        notes="pointer-chasing over a huge graph; memory bound",
    ),
    _int_bench(
        "parser", 0.60, 0.98, 1.00,
        load_frac=0.27, store_frac=0.10, branch_frac=0.17,
        dep_mean=4.5, pointer_chase_frac=0.12,
        easy_site_frac=0.70, l2_access_frac=0.06, mem_access_frac=0.01,
        notes="linked-list heavy; branchy",
    ),
    _int_bench(
        "perlbmk", 0.55, 1.15, 1.21,
        load_frac=0.28, store_frac=0.13, branch_frac=0.16,
        dep_mean=5.5, easy_site_frac=0.76,
        l2_access_frac=0.04, mem_access_frac=0.004,
        code_footprint=24 * 1024, call_frac=0.08, notes="interpreter dispatch",
    ),
    _int_bench(
        "twolf", 0.50, 1.17, 1.22,
        load_frac=0.27, store_frac=0.08, branch_frac=0.14,
        dep_mean=5.5, easy_site_frac=0.74,
        l2_access_frac=0.075, mem_access_frac=0.005,
        notes="place-and-route; moderate everything",
    ),
    _int_bench(
        "vortex", 0.60, 1.40, 1.52,
        load_frac=0.29, store_frac=0.15, branch_frac=0.14,
        dep_mean=7.0, easy_site_frac=0.87,
        l2_access_frac=0.04, mem_access_frac=0.003,
        code_footprint=24 * 1024, call_frac=0.07,
        notes="OO database; store heavy, predictable branches",
    ),
    _int_bench(
        "vpr", 0.50, 1.36, 1.42,
        load_frac=0.28, store_frac=0.09, branch_frac=0.13,
        dep_mean=6.5, easy_site_frac=0.80,
        l2_access_frac=0.07, mem_access_frac=0.003,
        notes="reduced input: small working set",
    ),
    _int_bench(
        "vpr_ref", 0.50, 0.63, 0.64,
        load_frac=0.30, store_frac=0.09, branch_frac=0.13,
        dep_mean=4.5, easy_site_frac=0.74,
        l2_access_frac=0.10, mem_access_frac=0.035,
        notes="reference input: working set blows DL1/L2 (paper keeps both)",
    ),
)

#: SPEC2000 floating-point benchmarks (Table 2, right).
SPEC_FP: Tuple[BenchmarkProfile, ...] = (
    _fp_bench(
        "ammp", 0.06, 0.06,
        load_frac=0.58, store_frac=0.05, branch_frac=0.04,
        pointer_chase_frac=1.0, dep_mean=1.2,
        src_recent_frac=0.995, zero_reg_frac=0.0,
        fp_add_frac=0.04, fp_mul_frac=0.02, fp_mem_frac=0.25,
        l2_access_frac=0.08, mem_access_frac=0.65, fp_zero_frac=0.45,
        notes="serialised pointer-chasing misses; no scheme helps (Fig 12)",
    ),
    _fp_bench(
        "applu", 2.05, 2.20,
        dep_mean=18.0, l2_access_frac=0.04, mem_access_frac=0.003,
        fp_zero_frac=0.40, notes="dense PDE solver; streaming, high ILP",
    ),
    _fp_bench(
        "apsi", 1.37, 1.50,
        dep_mean=9.0, l2_access_frac=0.05, mem_access_frac=0.006,
        fp_zero_frac=0.50, notes="meteorology kernel mix",
    ),
    _fp_bench(
        "art", 0.37, 0.38,
        load_frac=0.36, dep_mean=5.0,
        l2_access_frac=0.18, mem_access_frac=0.09,
        fp_zero_frac=0.60, notes="neural net scans exceeding L2; memory bound",
    ),
    _fp_bench(
        "equake", 2.28, 2.38,
        dep_mean=18.0, l2_access_frac=0.025, mem_access_frac=0.002,
        fp_zero_frac=0.48, notes="sparse solver with good locality in reduced run",
    ),
    _fp_bench(
        "facerec", 1.35, 1.41,
        dep_mean=10.0, l2_access_frac=0.06, mem_access_frac=0.008,
        fp_zero_frac=0.52, notes="image correlation",
    ),
    _fp_bench(
        "fma3d", 1.91, 1.94,
        dep_mean=11.0, l2_access_frac=0.04, mem_access_frac=0.003,
        fp_zero_frac=0.50, code_footprint=16 * 1024,
        notes="crash simulation; big code",
    ),
    _fp_bench(
        "galgel", 0.65, 0.66,
        dep_mean=5.0, l2_access_frac=0.12, mem_access_frac=0.03,
        fp_zero_frac=0.55, notes="fluid dynamics with cache-hostile strides",
    ),
    _fp_bench(
        "lucas", 2.29, 2.43,
        dep_mean=20.0, l2_access_frac=0.04, mem_access_frac=0.002,
        fp_zero_frac=0.35, branch_frac=0.03,
        notes="FFT primality; nearly branch-free streaming",
    ),
    _fp_bench(
        "mesa", 1.97, 2.08,
        dep_mean=10.0, l2_access_frac=0.02, mem_access_frac=0.001,
        fp_zero_frac=0.55, branch_frac=0.10, fp_mem_frac=0.6,
        notes="software rasteriser; integer/FP mix",
    ),
    _fp_bench(
        "mgrid", 1.54, 1.59,
        dep_mean=11.0, l2_access_frac=0.07, mem_access_frac=0.008,
        fp_zero_frac=0.45, branch_frac=0.02, notes="multigrid stencil sweeps",
    ),
    _fp_bench(
        "sixtrack", 1.38, 1.44,
        dep_mean=8.0, l2_access_frac=0.055, mem_access_frac=0.004,
        fp_zero_frac=0.50, notes="particle tracking",
    ),
    _fp_bench(
        "swim", 1.86, 1.99,
        dep_mean=16.0, l2_access_frac=0.06, mem_access_frac=0.004,
        fp_zero_frac=0.42, branch_frac=0.02, notes="shallow-water stencils",
    ),
    _fp_bench(
        "wupwise", 1.83, 1.86,
        dep_mean=11.0, l2_access_frac=0.04, mem_access_frac=0.003,
        fp_zero_frac=0.48, notes="lattice QCD; matrix kernels",
    ),
)

ALL_BENCHMARKS: Tuple[BenchmarkProfile, ...] = SPEC_INT + SPEC_FP

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in ALL_BENCHMARKS}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name (raises KeyError if unknown)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
