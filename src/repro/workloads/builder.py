"""Hand-construction of traces with automatic dataflow bookkeeping.

:class:`TraceBuilder` lets tests and examples write micro-op sequences
the way one writes assembly, while the builder tracks architectural
register contents so every source operand carries the right expected
value (the machine verifies these end-to-end):

    b = TraceBuilder()
    b.alu(dest=1, value=5)                  # r1 <- 5
    b.alu(dest=2, srcs=[1], value=6)        # r2 <- f(r1)
    b.load(dest=3, base=2, addr=0x1000, value=7)
    b.store(data=3, base=2, addr=0x1008)
    b.branch(taken=True, target=0x400100)
    trace = b.build("example")
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instruction import MicroOp, SourceOperand
from repro.isa.opcodes import OpClass, RegClass
from repro.isa.registers import NUM_FP_ARCH_REGS, NUM_INT_ARCH_REGS
from repro.workloads.trace import Trace

_DEFAULT_PC = 0x0040_0000


class TraceBuilder:
    """Builds a :class:`~repro.workloads.trace.Trace` op by op."""

    def __init__(
        self,
        initial_int: Optional[Sequence[int]] = None,
        initial_fp: Optional[Sequence[int]] = None,
        start_pc: int = _DEFAULT_PC,
    ) -> None:
        self.int_values: List[int] = (
            list(initial_int) if initial_int else [0] * NUM_INT_ARCH_REGS
        )
        self.fp_values: List[int] = (
            list(initial_fp) if initial_fp else [0] * NUM_FP_ARCH_REGS
        )
        self._initial_int = list(self.int_values)
        self._initial_fp = list(self.fp_values)
        self.ops: List[MicroOp] = []
        self.pc = start_pc

    # ------------------------------------------------------------ helpers

    def _next_pc(self) -> int:
        pc = self.pc
        self.pc += 4
        return pc

    def _sources(self, regs: Sequence[int], reg_class: RegClass) -> tuple:
        values = self.int_values if reg_class == RegClass.INT else self.fp_values
        return tuple(SourceOperand(reg_class, r, values[r]) for r in regs)

    def _emit(self, op: MicroOp) -> MicroOp:
        op.validate()
        self.ops.append(op)
        if op.dest is not None:
            if op.dest_class == RegClass.INT:
                self.int_values[op.dest] = op.result
            else:
                self.fp_values[op.dest] = op.result
        return op

    # ----------------------------------------------------------- emitters

    def alu(
        self,
        dest: int,
        value: int,
        srcs: Sequence[int] = (),
        op_class: OpClass = OpClass.INT_ALU,
        pc: Optional[int] = None,
    ) -> MicroOp:
        """Integer ALU op writing ``value`` to ``dest`` (``srcs`` read)."""
        return self._emit(
            MicroOp(
                len(self.ops),
                pc if pc is not None else self._next_pc(),
                op_class,
                sources=self._sources(srcs, RegClass.INT),
                dest_class=RegClass.INT,
                dest=dest,
                result=value,
            )
        )

    def fp(
        self,
        dest: int,
        value: int,
        srcs: Sequence[int] = (),
        op_class: OpClass = OpClass.FP_ADD,
    ) -> MicroOp:
        """FP op writing bit pattern ``value`` to FP register ``dest``."""
        return self._emit(
            MicroOp(
                len(self.ops),
                self._next_pc(),
                op_class,
                sources=self._sources(srcs, RegClass.FP),
                dest_class=RegClass.FP,
                dest=dest,
                result=value,
            )
        )

    def load(
        self,
        dest: int,
        addr: int,
        value: int,
        base: Optional[int] = None,
        fp: bool = False,
    ) -> MicroOp:
        sources = self._sources([base] if base is not None else [], RegClass.INT)
        return self._emit(
            MicroOp(
                len(self.ops),
                self._next_pc(),
                OpClass.FP_LOAD if fp else OpClass.LOAD,
                sources=sources,
                dest_class=RegClass.FP if fp else RegClass.INT,
                dest=dest,
                result=value,
                mem_addr=addr,
            )
        )

    def store(
        self,
        data: int,
        addr: int,
        base: Optional[int] = None,
        fp: bool = False,
    ) -> MicroOp:
        data_class = RegClass.FP if fp else RegClass.INT
        sources = list(self._sources([data], data_class))
        if base is not None:
            sources.extend(self._sources([base], RegClass.INT))
        return self._emit(
            MicroOp(
                len(self.ops),
                self._next_pc(),
                OpClass.FP_STORE if fp else OpClass.STORE,
                sources=tuple(sources),
                dest=None,
                mem_addr=addr,
            )
        )

    def branch(
        self,
        taken: bool,
        target: int = 0,
        cond: Optional[int] = None,
        pc: Optional[int] = None,
    ) -> MicroOp:
        """Conditional branch; ``cond`` optionally names a source register."""
        sources = self._sources([cond] if cond is not None else [], RegClass.INT)
        branch_pc = pc if pc is not None else self._next_pc()
        op = self._emit(
            MicroOp(
                len(self.ops),
                branch_pc,
                OpClass.BRANCH,
                sources=sources,
                dest=None,
                taken=taken,
                target=target or branch_pc + 64,
            )
        )
        if taken:
            self.pc = op.target
        return op

    def call(self, target: int) -> MicroOp:
        pc = self._next_pc()
        op = self._emit(
            MicroOp(len(self.ops), pc, OpClass.CALL, dest=None, taken=True,
                    target=target)
        )
        self.pc = target
        return op

    def ret(self, target: int) -> MicroOp:
        pc = self._next_pc()
        op = self._emit(
            MicroOp(len(self.ops), pc, OpClass.RETURN, dest=None, taken=True,
                    target=target, is_indirect=True)
        )
        self.pc = target
        return op

    def nops(self, count: int, dest: int = 1, value: int = 0) -> None:
        """Emit ``count`` independent fillers (no sources)."""
        for _ in range(count):
            self.alu(dest=dest, value=value)

    # ------------------------------------------------------------- build

    def build(self, name: str = "manual") -> Trace:
        return Trace(
            name,
            self.ops,
            initial_int=self._initial_int,
            initial_fp=self._initial_fp,
        )
