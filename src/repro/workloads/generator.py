"""Synthetic trace generator.

Expands a :class:`~repro.workloads.profiles.BenchmarkProfile` into a
concrete micro-op stream with *consistent dataflow*: the generator tracks
architectural register contents as it emits instructions, so every source
operand records the exact value dataflow says it must observe.  The
simulator asserts this end-to-end (rename → scheduler → register file /
bypass / inlined immediate), which is what catches PRI bookkeeping bugs
such as the WAR violation of the paper's Figure 6.

The generator models:

* instruction mix and load/store/branch structure from the profile;
* producer-consumer distances via a geometric "recent destination" model
  (short distances → tight dependence chains → low ILP);
* pointer chasing (loads whose address depends on the previous load);
* a static set of branch sites with biased or patterned outcomes, calls
  and returns (exercising the RAS), and loop back-edges, laid out over a
  code footprint that drives IL1 behaviour;
* a three-region data working set (hot/warm/cold) with optional streaming,
  driving DL1/L2/memory behaviour.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Tuple

from repro.isa.instruction import MicroOp, SourceOperand
from repro.isa.opcodes import OpClass, RegClass
from repro.isa.registers import INT_ZERO_REG, NUM_INT_ARCH_REGS
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import Trace
from repro.workloads.value_models import FpValueModel, IntValueModel

_CODE_BASE = 0x0040_0000
_HOT_BASE = 0x1000_0000
_WARM_BASE = 0x2000_0000
_COLD_BASE = 0x4000_0000
_FUNC_COUNT = 32


class _BranchSite:
    """One static branch with a fixed PC and an outcome process.

    Three kinds: *easy* (strongly biased), *hard* (weakly biased — the
    data-dependent branches predictors cannot learn), and *loop* (a fixed
    trip count: taken ``k-1`` times then not taken once — bimodal
    mispredicts the exit, gshare learns it when the history window covers
    the trip count).
    """

    __slots__ = ("pc", "target", "bias", "taken_dir", "trip_count", "phase", "backward")

    def __init__(self, pc, target, bias, taken_dir, trip_count, backward):
        self.pc = pc
        self.target = target
        self.bias = bias
        self.taken_dir = taken_dir
        self.trip_count = trip_count  # 0 = biased site, else loop period
        self.phase = 0
        self.backward = backward

    def outcome(self, rng: random.Random) -> bool:
        if self.trip_count:
            taken = self.phase < self.trip_count - 1
            self.phase = (self.phase + 1) % self.trip_count
            return taken
        if rng.random() < self.bias:
            return self.taken_dir
        return not self.taken_dir


class TraceGenerator:
    """Generates micro-op traces from a benchmark profile.

    Deterministic for a given ``(profile, seed)`` pair; regenerate rather
    than persist traces.
    """

    def __init__(self, profile: BenchmarkProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        # zlib.crc32, not hash(): str hashes are salted per process and
        # would make traces irreproducible across runs.
        self.rng = random.Random(zlib.crc32(profile.name.encode()) * 1_000_003 + seed)
        self.int_model = IntValueModel(profile.int_widths)
        self.fp_model = FpValueModel(
            zero_frac=profile.fp_zero_frac,
            ones_frac=profile.fp_ones_frac,
            exp_narrow_frac=profile.fp_exp_narrow_frac,
            sig_narrow_frac=profile.fp_sig_narrow_frac,
        )
        self._init_registers()
        self._init_control_flow()
        self._init_memory()
        self._seq = 0
        self._op_classes, self._op_weights = self._build_mix()

    # ------------------------------------------------------------- setup

    def _init_registers(self) -> None:
        rng = self.rng
        self.int_values = [self.int_model.sample(rng) for _ in range(NUM_INT_ARCH_REGS)]
        self.int_values[INT_ZERO_REG] = 0
        self.fp_values = [self.fp_model.sample(rng) for _ in range(NUM_INT_ARCH_REGS)]
        # Recency lists: logical register indices, most recent last.
        self.recent_int: List[int] = []
        self.recent_fp: List[int] = []
        self.last_load_dest: Optional[int] = None

    def _init_control_flow(self) -> None:
        p, rng = self.profile, self.rng
        hard_frac = max(0.0, 1.0 - p.easy_site_frac - p.loop_site_frac)
        # Random site placement: regular strides would alias whole site
        # populations onto a few predictor/BTB sets.
        footprint = max(p.code_footprint, 4096)
        pcs = set()
        while len(pcs) < p.branch_sites:
            pcs.add(_CODE_BASE + rng.randrange(0, footprint, 4))
        site_pcs = sorted(pcs)
        self.sites: List[_BranchSite] = []
        for i in range(p.branch_sites):
            pc = site_pcs[i]
            backward = rng.random() < p.backedge_frac
            if backward:
                target = max(_CODE_BASE, pc - rng.randrange(64, 2048, 4))
            else:
                target = pc + rng.randrange(8, 512, 4)
            trip_count = 0
            bias, taken_dir = p.easy_bias, rng.random() < 0.6
            r = rng.random()
            if r < p.loop_site_frac:
                trip_count = rng.randint(4, 10)
                taken_dir = True
            elif r < p.loop_site_frac + hard_frac and i >= 8:
                # Hard (data-dependent) branches live in the zipf tail:
                # the hottest few branches in real code are loop branches
                # and are well predicted.
                bias = p.hard_bias
            self.sites.append(
                _BranchSite(pc, target, bias, taken_dir, trip_count, backward)
            )
        # Zipf-ish weights: a few hot loop branches dominate.
        weights = [1.0 / (i + 1) for i in range(len(self.sites))]
        total = sum(weights)
        cum, acc = [], 0.0
        for w in weights:
            acc += w / total
            cum.append(acc)
        self._site_cum = cum
        # Fixed call sites: (call PC, callee entry) pairs, so the BTB can
        # learn call targets and the RAS predicts the matching returns.
        entries = [
            _CODE_BASE + rng.randrange(0, footprint, 4) for _ in range(_FUNC_COUNT)
        ]
        call_pcs = set()
        while len(call_pcs) < _FUNC_COUNT * 2:
            pc = _CODE_BASE + rng.randrange(0, footprint, 4)
            if pc not in pcs:
                call_pcs.add(pc)
        self._call_sites = [(pc, rng.choice(entries)) for pc in sorted(call_pcs)]
        self._return_pcs: List[int] = []
        self._pc = _CODE_BASE

    def _init_memory(self) -> None:
        # Three engineered access classes (see profile docstring):
        # * hot — random inside an 8KB region: DL1-resident after warmup;
        # * l2  — a ring of lines that all map to the same DL1 set, more
        #   of them than the DL1's associativity, so every access conflict-
        #   misses the DL1 yet stays L2-resident (they occupy distinct L2
        #   sets);
        # * mem — a never-revisited pointer: compulsory miss to memory.
        self._hot_size = 8 * 1024
        dl1 = 32 * 1024 // 16 // 4  # sets in the paper's DL1 (512)
        stride = dl1 * 16  # 8KB: same DL1 set, different L2 sets
        self._l2_ring = [_WARM_BASE + i * stride for i in range(8)]
        self._l2_idx = 0
        self._mem_ptr = _COLD_BASE

    def _build_mix(self) -> Tuple[List[OpClass], List[float]]:
        p = self.profile
        pairs = [
            (OpClass.INT_ALU, p.alu_frac),
            (OpClass.INT_MUL, p.mul_frac),
            (OpClass.INT_DIV, p.div_frac),
            (OpClass.LOAD, p.load_frac),
            (OpClass.STORE, p.store_frac),
            (OpClass.BRANCH, p.branch_frac),
            (OpClass.FP_ADD, p.fp_add_frac),
            (OpClass.FP_MUL, p.fp_mul_frac),
            (OpClass.FP_DIV, p.fp_div_frac),
        ]
        classes = [c for c, w in pairs if w > 0]
        weights = [w for _, w in pairs if w > 0]
        cum, acc = [], 0.0
        total = sum(weights)
        for w in weights:
            acc += w / total
            cum.append(acc)
        return classes, cum

    # ----------------------------------------------------------- helpers

    def _pick_site(self) -> _BranchSite:
        u = self.rng.random()
        lo, hi = 0, len(self._site_cum) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._site_cum[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return self.sites[lo]

    def _pick_source(self, reg_class: RegClass) -> int:
        """Choose a source logical register via the dependence model."""
        p, rng = self.profile, self.rng
        if reg_class == RegClass.INT and rng.random() < p.zero_reg_frac:
            return INT_ZERO_REG
        recent = self.recent_int if reg_class == RegClass.INT else self.recent_fp
        if recent and rng.random() < p.src_recent_frac:
            # Geometric distance into the recency list (1 = most recent).
            dist = min(len(recent), 1 + int(rng.expovariate(1.0 / max(1.0, p.dep_mean))))
            return recent[-dist]
        limit = NUM_INT_ARCH_REGS - 1  # exclude the zero register
        return rng.randrange(limit)

    def _pick_dest(self, reg_class: RegClass) -> int:
        p, rng = self.profile, self.rng
        if rng.random() < p.dest_hot_frac:
            return rng.randrange(p.dest_hot_regs)
        return rng.randrange(p.dest_hot_regs, NUM_INT_ARCH_REGS - 1)

    def _record_dest(self, reg_class: RegClass, index: int, value: int) -> None:
        if reg_class == RegClass.INT:
            self.int_values[index] = value
            recent = self.recent_int
        else:
            self.fp_values[index] = value
            recent = self.recent_fp
        recent.append(index)
        if len(recent) > 64:
            del recent[:32]

    def _source_operand(self, reg_class: RegClass, index: int) -> SourceOperand:
        values = self.int_values if reg_class == RegClass.INT else self.fp_values
        return SourceOperand(reg_class, index, values[index])

    def _data_address(self) -> int:
        p, rng = self.profile, self.rng
        u = rng.random()
        if u < p.mem_access_frac:
            addr = self._mem_ptr
            self._mem_ptr += 64  # fresh L2 line every time: always a miss
            return addr
        if u < p.mem_access_frac + p.l2_access_frac:
            addr = self._l2_ring[self._l2_idx]
            self._l2_idx = (self._l2_idx + 1) % len(self._l2_ring)
            return addr
        return _HOT_BASE + rng.randrange(0, self._hot_size, 8)

    # ---------------------------------------------------------- emission

    def next_op(self) -> MicroOp:
        """Generate and return the next micro-op."""
        rng = self.rng
        u = rng.random()
        op_class = self._op_classes[-1]
        for cls, cum in zip(self._op_classes, self._op_weights):
            if u <= cum:
                op_class = cls
                break
        if op_class == OpClass.BRANCH:
            op = self._emit_branch()
        elif op_class == OpClass.LOAD:
            op = self._emit_load()
        elif op_class == OpClass.STORE:
            op = self._emit_store()
        elif op_class in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV):
            op = self._emit_fp_alu(op_class)
        else:
            op = self._emit_int_alu(op_class)
        op.validate()
        self._seq += 1
        return op

    def _next_pc(self) -> int:
        pc = self._pc
        self._pc += 4
        if self._pc >= _CODE_BASE + self.profile.code_footprint:
            self._pc = _CODE_BASE
        return pc

    def _emit_int_alu(self, op_class: OpClass) -> MicroOp:
        rng = self.rng
        nsrc = 0 if (op_class == OpClass.INT_ALU and rng.random() < 0.10) else (
            1 if rng.random() < 0.3 else 2
        )
        sources = tuple(
            self._source_operand(RegClass.INT, self._pick_source(RegClass.INT))
            for _ in range(nsrc)
        )
        dest = self._pick_dest(RegClass.INT)
        result = self.int_model.sample(rng)
        op = MicroOp(
            self._seq, self._next_pc(), op_class,
            sources=sources, dest_class=RegClass.INT, dest=dest, result=result,
        )
        self._record_dest(RegClass.INT, dest, result)
        return op

    def _emit_fp_alu(self, op_class: OpClass) -> MicroOp:
        rng = self.rng
        sources = tuple(
            self._source_operand(RegClass.FP, self._pick_source(RegClass.FP))
            for _ in range(2)
        )
        dest = self._pick_dest(RegClass.FP)
        result = self.fp_model.sample(rng)
        op = MicroOp(
            self._seq, self._next_pc(), op_class,
            sources=sources, dest_class=RegClass.FP, dest=dest, result=result,
        )
        self._record_dest(RegClass.FP, dest, result)
        return op

    def _emit_load(self) -> MicroOp:
        p, rng = self.profile, self.rng
        if self.last_load_dest is not None and rng.random() < p.pointer_chase_frac:
            base_reg = self.last_load_dest
        else:
            base_reg = self._pick_source(RegClass.INT)
        sources = (self._source_operand(RegClass.INT, base_reg),)
        is_fp = rng.random() < p.fp_mem_frac
        if is_fp:
            dest_class, op_class = RegClass.FP, OpClass.FP_LOAD
            result = self.fp_model.sample(rng)
        else:
            dest_class, op_class = RegClass.INT, OpClass.LOAD
            result = self.int_model.sample(rng)
        dest = self._pick_dest(dest_class)
        op = MicroOp(
            self._seq, self._next_pc(), op_class,
            sources=sources, dest_class=dest_class, dest=dest, result=result,
            mem_addr=self._data_address(),
        )
        self._record_dest(dest_class, dest, result)
        if not is_fp:
            self.last_load_dest = dest
        return op

    def _emit_store(self) -> MicroOp:
        p, rng = self.profile, self.rng
        is_fp = rng.random() < p.fp_mem_frac
        data_class = RegClass.FP if is_fp else RegClass.INT
        op_class = OpClass.FP_STORE if is_fp else OpClass.STORE
        sources = (
            self._source_operand(data_class, self._pick_source(data_class)),
            self._source_operand(RegClass.INT, self._pick_source(RegClass.INT)),
        )
        return MicroOp(
            self._seq, self._next_pc(), op_class,
            sources=sources, dest=None, mem_addr=self._data_address(),
        )

    def _emit_branch(self) -> MicroOp:
        p, rng = self.profile, self.rng
        if self._return_pcs and rng.random() < p.call_frac * 1.2:
            target = self._return_pcs.pop()
            op = MicroOp(
                self._seq, self._pc, OpClass.RETURN,
                sources=(), dest=None, taken=True, target=target, is_indirect=True,
            )
            self._pc = target
            return op
        if rng.random() < p.call_frac and len(self._return_pcs) < 64:
            pc, entry = rng.choice(self._call_sites)
            self._return_pcs.append(pc + 4)
            op = MicroOp(
                self._seq, pc, OpClass.CALL,
                sources=(), dest=None, taken=True, target=entry,
            )
            self._pc = entry
            return op
        site = self._pick_site()
        taken = site.outcome(rng)
        cond_reg = self._pick_source(RegClass.INT)
        op = MicroOp(
            self._seq, site.pc, OpClass.BRANCH,
            sources=(self._source_operand(RegClass.INT, cond_reg),),
            dest=None, taken=taken, target=site.target,
        )
        self._pc = site.target if taken else site.pc + 4
        return op

    def generate(self, length: int, warmup: int = 0) -> Trace:
        """Generate a trace of ``length`` timed micro-ops.

        ``warmup`` extra ops are generated *first* and attached as the
        trace's untimed warmup prefix (the machine uses them to train
        branch predictors and warm caches, standing in for the paper's
        400M-instruction fast-forward).  The trace records the
        architectural register contents at the start of the timed region.
        """
        warmup_ops = [self.next_op() for _ in range(warmup)]
        initial_int = list(self.int_values)
        initial_fp = list(self.fp_values)
        ops = [self.next_op() for _ in range(length)]
        return Trace(
            self.profile.name, ops, seed=self.seed,
            initial_int=initial_int, initial_fp=initial_fp,
            warmup_ops=warmup_ops,
        )


def generate_trace(profile_or_name, length: int, seed: int = 0, warmup: int = None) -> Trace:
    """Convenience: build a trace from a profile or benchmark name.

    ``warmup`` defaults to the timed length, at least 20k ops — enough to
    cover the code footprint and working set so the timed region sees
    steady-state predictor and cache behaviour.
    """
    from repro.workloads.profiles import get_profile

    profile = profile_or_name
    if isinstance(profile_or_name, str):
        profile = get_profile(profile_or_name)
    if warmup is None:
        warmup = max(length, 20_000)
    return TraceGenerator(profile, seed=seed).generate(length, warmup=warmup)
