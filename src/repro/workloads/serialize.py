"""Trace serialization.

Traces are deterministic in (profile, seed), so regeneration is the
normal path — but pinning a workload to a file is useful for sharing
exact inputs across machines or Python versions.  Two on-disk formats
exist:

**trace-v2** (written by :func:`save_trace`) — the checksummed format:
a header with the trace metadata and initial register state, one line
per micro-op, and a footer that carries the op-line count and the
SHA-256 of every byte above it, so truncation, bit-flips, and torn
tails are *detected* at load time instead of silently mis-parsing into
bogus IPC numbers::

    trace-v2 <name> <seed> <n_warmup> <n_ops>
    I <32 hex words>            # initial INT registers
    F <32 hex words>            # initial FP registers
    <op line> ...               # warmup ops, then timed ops
    %end trace-v2 lines=<n_warmup+n_ops> sha256=<64 hex>

**trace-v1** (legacy) — the same layout without the footer; still
loaded transparently, with line counts validated against the header
(a short file raises :class:`~repro.store.errors.TruncatedArtifact`,
never a bare ``IndexError``), but byte-level damage inside a
still-parseable op line is undetectable without the digest.

Op line fields (space-separated)::

    <opclass> <pc> <dest_class|-> <dest|-> <result> <mem|-> <T|N> <target>
        <ind:0|1> [<src_class>:<idx>:<value> ...]

All load failures raise the :mod:`repro.store.errors` hierarchy (a
:class:`ValueError` subclass) with the path and 1-based line number of
the damage.  Writes are atomic and fsynced via :mod:`repro.store`.
"""

from __future__ import annotations

import io
from typing import IO, List, Tuple

from repro.isa.instruction import MicroOp, SourceOperand
from repro.isa.opcodes import OpClass, RegClass
from repro.store.atomic import atomic_write_text
from repro.store.errors import (
    DigestMismatch,
    MalformedRecord,
    SchemaMismatch,
    TruncatedArtifact,
)
from repro.store.integrity import sha256_hex
from repro.workloads.trace import Trace

_MAGIC_V1 = "trace-v1"
_MAGIC_V2 = "trace-v2"
_FOOTER_PREFIX = "%end trace-v2 "


def _dump_op(op: MicroOp, out: IO[str]) -> None:
    fields = [
        op.op.name,
        f"{op.pc:x}",
        "-" if op.dest is None else str(int(op.dest_class)),
        "-" if op.dest is None else str(op.dest),
        f"{op.result:x}",
        "-" if op.mem_addr is None else f"{op.mem_addr:x}",
        "T" if op.taken else "N",
        f"{op.target:x}",
        "1" if op.is_indirect else "0",
    ]
    for src in op.sources:
        fields.append(f"{int(src.reg_class)}:{src.index}:{src.expected_value:x}")
    out.write(" ".join(fields) + "\n")


def _parse_op(line: str, seq: int, path: str, lineno: int) -> MicroOp:
    fields = line.split()
    try:
        op_class = OpClass[fields[0]]
        dest = None if fields[3] == "-" else int(fields[3])
        dest_class = RegClass.INT if fields[2] == "-" else RegClass(int(fields[2]))
        sources = tuple(
            SourceOperand(RegClass(int(c)), int(i), int(v, 16))
            for c, i, v in (part.split(":") for part in fields[9:])
        )
        op = MicroOp(
            seq,
            int(fields[1], 16),
            op_class,
            sources=sources,
            dest_class=dest_class,
            dest=dest,
            result=int(fields[4], 16),
            mem_addr=None if fields[5] == "-" else int(fields[5], 16),
            taken=fields[6] == "T",
            target=int(fields[7], 16),
            is_indirect=fields[8] == "1",
        )
        op.validate()
    except (IndexError, KeyError, ValueError) as exc:
        raise MalformedRecord(
            f"bad op line ({type(exc).__name__}: {exc})",
            path=path, kind="trace", line=lineno,
        ) from exc
    return op


def _render_body(trace: Trace) -> Tuple[str, int]:
    """The trace's header + register + op lines as one string, plus the
    number of op lines (what the footer asserts)."""
    out = io.StringIO()
    out.write(
        f"{_MAGIC_V2} {trace.name} {trace.seed} "
        f"{len(trace.warmup_ops)} {len(trace)}\n"
    )
    out.write("I " + " ".join(f"{v:x}" for v in trace.initial_int) + "\n")
    out.write("F " + " ".join(f"{v:x}" for v in trace.initial_fp) + "\n")
    for op in trace.warmup_ops:
        _dump_op(op, out)
    for op in trace.ops:
        _dump_op(op, out)
    return out.getvalue(), len(trace.warmup_ops) + len(trace)


def save_trace(trace: Trace, path: str) -> None:
    """Atomically write a trace (including its warmup prefix) to
    ``path`` in the checksummed ``trace-v2`` format."""
    body, n_lines = _render_body(trace)
    footer = (
        f"{_FOOTER_PREFIX}lines={n_lines} "
        f"sha256={sha256_hex(body.encode('utf-8'))}\n"
    )
    atomic_write_text(path, body + footer)


def _parse_header(line: str, path: str) -> Tuple[str, str, int, int, int]:
    header = line.split()
    if not header or header[0] not in (_MAGIC_V1, _MAGIC_V2):
        raise SchemaMismatch(
            f"not a {_MAGIC_V1}/{_MAGIC_V2} file", path=path, kind="trace",
            found=header[0] if header else None, expected=_MAGIC_V2,
        )
    try:
        name, seed = header[1], int(header[2])
        n_warmup, n_ops = int(header[3]), int(header[4])
    except (IndexError, ValueError) as exc:
        raise MalformedRecord(
            f"bad trace header ({exc})", path=path, kind="trace", line=1
        ) from exc
    return header[0], name, seed, n_warmup, n_ops


def _parse_regs(lines: List[str], path: str) -> Tuple[List[int], List[int]]:
    if len(lines) < 3:
        raise TruncatedArtifact(
            "file ends before the initial register state",
            path=path, kind="trace", line=len(lines),
        )
    int_line, fp_line = lines[1].split(), lines[2].split()
    if not int_line or not fp_line or int_line[0] != "I" or fp_line[0] != "F":
        raise MalformedRecord(
            "corrupt register-state header", path=path, kind="trace", line=2
        )
    try:
        initial_int = [int(v, 16) for v in int_line[1:]]
        initial_fp = [int(v, 16) for v in fp_line[1:]]
    except ValueError as exc:
        raise MalformedRecord(
            f"bad register-state value ({exc})", path=path, kind="trace", line=2
        ) from exc
    return initial_int, initial_fp


def verify_trace(path: str) -> Tuple[str, int]:
    """Integrity-check a trace file without building :class:`MicroOp`
    objects (fsck's verification pass): format magic, declared-vs-actual
    line counts, and — for trace-v2 — the footer digest.  Returns
    ``(format_magic, n_op_lines)``; raises the typed
    :mod:`repro.store.errors` hierarchy on damage."""
    with open(path, "r", encoding="utf-8", errors="surrogateescape") as fh:
        raw = fh.read()
    lines = raw.splitlines()
    if not lines:
        raise TruncatedArtifact("empty trace file", path=path, kind="trace")
    magic, _name, _seed, n_warmup, n_ops = _parse_header(lines[0], path)
    if magic == _MAGIC_V2:
        _check_v2_frame(raw, lines, n_warmup + n_ops, path)
        return magic, n_warmup + n_ops
    _parse_regs(lines, path)
    declared = n_warmup + n_ops
    actual = len(lines) - 3
    if actual < declared:
        raise TruncatedArtifact(
            f"header declares {declared} ops but only {actual} op lines "
            "are present", path=path, kind="trace", line=len(lines),
        )
    return magic, declared


def _check_v2_frame(raw: str, lines: List[str], declared: int, path: str) -> None:
    """Validate the trace-v2 footer: sentinel present, op-line count
    matches, digest matches the bytes above the footer."""
    footer = lines[-1]
    if not footer.startswith(_FOOTER_PREFIX):
        raise TruncatedArtifact(
            "trace-v2 footer sentinel missing (truncated or torn file)",
            path=path, kind="trace", line=len(lines),
        )
    try:
        fields = dict(
            part.split("=", 1) for part in footer[len(_FOOTER_PREFIX):].split()
        )
        footer_lines = int(fields["lines"])
        footer_digest = fields["sha256"]
    except (ValueError, KeyError) as exc:
        raise MalformedRecord(
            f"bad trace-v2 footer ({exc})", path=path, kind="trace",
            line=len(lines),
        ) from exc
    body = raw[: raw.rindex(footer)]
    actual_digest = sha256_hex(body.encode("utf-8", "surrogateescape"))
    if actual_digest != footer_digest:
        raise DigestMismatch(
            "trace body does not match its footer SHA-256", path=path,
            kind="trace", expected=footer_digest, actual=actual_digest,
        )
    actual = len(lines) - 4  # header, I, F, footer
    if actual != footer_lines or actual != declared:
        raise MalformedRecord(
            f"header declares {declared} ops, footer declares "
            f"{footer_lines}, file carries {actual}",
            path=path, kind="trace", line=len(lines),
        )


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace` — the checksummed
    ``trace-v2`` format or the legacy ``trace-v1`` layout.  Any damage
    (truncation, bit-flip, torn tail, malformed op line) raises a typed
    :class:`~repro.store.errors.ArtifactError` naming the path and
    line."""
    with open(path, "r", encoding="utf-8", errors="surrogateescape") as fh:
        raw = fh.read()
    lines = raw.splitlines()
    if not lines:
        raise TruncatedArtifact("empty trace file", path=path, kind="trace")
    magic, name, seed, n_warmup, n_ops = _parse_header(lines[0], path)
    if magic == _MAGIC_V2:
        # Verify the frame (counts + digest) *before* parsing any op:
        # a digest-checked body cannot mis-parse into a wrong-but-legal
        # trace.
        _check_v2_frame(raw, lines, n_warmup + n_ops, path)
    initial_int, initial_fp = _parse_regs(lines, path)
    first_op = 3
    declared = n_warmup + n_ops
    available = len(lines) - first_op - (1 if magic == _MAGIC_V2 else 0)
    if available < declared:
        raise TruncatedArtifact(
            f"header declares {n_warmup} warmup + {n_ops} timed ops but "
            f"only {max(available, 0)} op lines are present",
            path=path, kind="trace", line=len(lines),
        )
    warmup: List[MicroOp] = [
        _parse_op(lines[first_op + seq], seq, path, first_op + seq + 1)
        for seq in range(n_warmup)
    ]
    ops: List[MicroOp] = [
        _parse_op(lines[first_op + n_warmup + seq], seq, path,
                  first_op + n_warmup + seq + 1)
        for seq in range(n_ops)
    ]
    return Trace(
        name, ops, seed=seed,
        initial_int=initial_int, initial_fp=initial_fp, warmup_ops=warmup,
    )
