"""Trace serialization.

Traces are deterministic in (profile, seed), so regeneration is the
normal path — but pinning a workload to a file is useful for sharing
exact inputs across machines or Python versions.  The format is a
compact line-oriented text file: a header with the trace metadata and
initial register state, then one line per micro-op.

    trace-v1 <name> <seed> <n_warmup> <n_ops>
    I <32 hex words>            # initial INT registers
    F <32 hex words>            # initial FP registers
    <op line> ...               # warmup ops, then timed ops

Op line fields (space-separated)::

    <opclass> <pc> <dest_class|-> <dest|-> <result> <mem|-> <T|N> <target>
        <ind:0|1> [<src_class>:<idx>:<value> ...]
"""

from __future__ import annotations

from typing import IO, List

from repro.isa.instruction import MicroOp, SourceOperand
from repro.isa.opcodes import OpClass, RegClass
from repro.workloads.trace import Trace

_MAGIC = "trace-v1"


def _dump_op(op: MicroOp, out: IO[str]) -> None:
    fields = [
        op.op.name,
        f"{op.pc:x}",
        "-" if op.dest is None else str(int(op.dest_class)),
        "-" if op.dest is None else str(op.dest),
        f"{op.result:x}",
        "-" if op.mem_addr is None else f"{op.mem_addr:x}",
        "T" if op.taken else "N",
        f"{op.target:x}",
        "1" if op.is_indirect else "0",
    ]
    for src in op.sources:
        fields.append(f"{int(src.reg_class)}:{src.index}:{src.expected_value:x}")
    out.write(" ".join(fields) + "\n")


def _parse_op(line: str, seq: int) -> MicroOp:
    fields = line.split()
    op_class = OpClass[fields[0]]
    dest = None if fields[3] == "-" else int(fields[3])
    dest_class = RegClass.INT if fields[2] == "-" else RegClass(int(fields[2]))
    sources = tuple(
        SourceOperand(RegClass(int(c)), int(i), int(v, 16))
        for c, i, v in (part.split(":") for part in fields[9:])
    )
    op = MicroOp(
        seq,
        int(fields[1], 16),
        op_class,
        sources=sources,
        dest_class=dest_class,
        dest=dest,
        result=int(fields[4], 16),
        mem_addr=None if fields[5] == "-" else int(fields[5], 16),
        taken=fields[6] == "T",
        target=int(fields[7], 16),
        is_indirect=fields[8] == "1",
    )
    op.validate()
    return op


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace (including its warmup prefix) to ``path``."""
    with open(path, "w") as out:
        out.write(
            f"{_MAGIC} {trace.name} {trace.seed} "
            f"{len(trace.warmup_ops)} {len(trace)}\n"
        )
        out.write("I " + " ".join(f"{v:x}" for v in trace.initial_int) + "\n")
        out.write("F " + " ".join(f"{v:x}" for v in trace.initial_fp) + "\n")
        for op in trace.warmup_ops:
            _dump_op(op, out)
        for op in trace.ops:
            _dump_op(op, out)


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with open(path) as handle:
        header = handle.readline().split()
        if not header or header[0] != _MAGIC:
            raise ValueError(f"{path}: not a {_MAGIC} file")
        name, seed = header[1], int(header[2])
        n_warmup, n_ops = int(header[3]), int(header[4])
        int_line = handle.readline().split()
        fp_line = handle.readline().split()
        if int_line[0] != "I" or fp_line[0] != "F":
            raise ValueError(f"{path}: corrupt register-state header")
        initial_int = [int(v, 16) for v in int_line[1:]]
        initial_fp = [int(v, 16) for v in fp_line[1:]]
        warmup: List[MicroOp] = [
            _parse_op(handle.readline(), seq) for seq in range(n_warmup)
        ]
        ops: List[MicroOp] = [
            _parse_op(handle.readline(), seq) for seq in range(n_ops)
        ]
    return Trace(
        name, ops, seed=seed,
        initial_int=initial_int, initial_fp=initial_fp, warmup_ops=warmup,
    )
