"""Operand value models.

These produce the values that flow through the synthetic traces.  The
integer model is driven by a per-benchmark cumulative width distribution
(the curves of the paper's Figure 2, top); the FP model is driven by the
fraction of all-zero operands and the exponent/significand significance
distributions (Figure 2, bottom).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.isa.values import (
    MAX_UINT64,
    significant_bits,
)

#: Width grid on which integer CDF anchors are specified.
WIDTH_GRID = (1, 4, 7, 10, 16, 24, 32, 48, 64)


class WidthAnchors:
    """A cumulative distribution over two's-complement widths.

    ``fractions[i]`` is the probability that an operand needs at most
    ``WIDTH_GRID[i]`` significant bits.  The last fraction must be 1.0.
    Sampling interpolates within grid segments so every width is
    reachable.
    """

    __slots__ = ("fractions",)

    def __init__(self, fractions: Sequence[float]) -> None:
        if len(fractions) != len(WIDTH_GRID):
            raise ValueError(
                f"expected {len(WIDTH_GRID)} anchor fractions, got {len(fractions)}"
            )
        if abs(fractions[-1] - 1.0) > 1e-9:
            raise ValueError("final anchor fraction must be 1.0")
        prev = 0.0
        for f in fractions:
            if f < prev - 1e-12:
                raise ValueError("anchor fractions must be non-decreasing")
            prev = f
        self.fractions = tuple(float(f) for f in fractions)

    def fraction_at_most(self, width: int) -> float:
        """CDF value at ``width`` (linear interpolation between anchors)."""
        if width <= 0:
            return 0.0
        if width >= WIDTH_GRID[-1]:
            return 1.0
        lo_w, lo_f = 0, 0.0
        for w, f in zip(WIDTH_GRID, self.fractions):
            if width <= w:
                span = w - lo_w
                if span == 0:
                    return f
                return lo_f + (f - lo_f) * (width - lo_w) / span
            lo_w, lo_f = w, f
        return 1.0

    def sample_width(self, rng: random.Random) -> int:
        """Draw a width in ``[1, 64]`` from the distribution."""
        u = rng.random()
        lo_w, lo_f = 0, 0.0
        for w, f in zip(WIDTH_GRID, self.fractions):
            if u <= f:
                if f == lo_f:
                    return max(1, w)
                # Interpolate to an integer width inside (lo_w, w].
                frac = (u - lo_f) / (f - lo_f)
                width = lo_w + max(1, round(frac * (w - lo_w)))
                return min(max(1, width), w)
            lo_w, lo_f = w, f
        return WIDTH_GRID[-1]


class IntValueModel:
    """Generates signed 64-bit integer values with a target width CDF.

    Widths are drawn from :class:`WidthAnchors`; a value of exactly that
    two's-complement width is then constructed (positive with probability
    ``positive_bias``).
    """

    def __init__(self, anchors: WidthAnchors, positive_bias: float = 0.8) -> None:
        self.anchors = anchors
        self.positive_bias = positive_bias

    def sample(self, rng: random.Random) -> int:
        width = self.anchors.sample_width(rng)
        return self.value_of_width(width, rng)

    def value_of_width(self, width: int, rng: random.Random) -> int:
        """A signed value whose :func:`significant_bits` is exactly ``width``."""
        if width <= 1:
            return 0 if rng.random() < self.positive_bias else -1
        positive = rng.random() < self.positive_bias
        # Positive values of width k: [2**(k-2), 2**(k-1) - 1].
        lo = 1 << (width - 2)
        hi = (1 << (width - 1)) - 1
        if positive:
            value = rng.randint(lo, hi)
        else:
            # Negative values of width k: [-(2**(k-1)), -(2**(k-2)) - 1].
            value = -rng.randint(lo + 1, hi + 1)
        assert significant_bits(value) == width
        return value


class FpValueModel:
    """Generates 64-bit IEEE-754 bit patterns with target significance.

    ``zero_frac`` of operands are the all-zero pattern (inlineable and 0
    exponent/significand bits); ``ones_frac`` are the all-ones pattern.
    The remaining operands get exponent and significand fields sampled so
    that :func:`repro.isa.values.fp_exponent_bits` and
    :func:`repro.isa.values.fp_significand_bits` land on the benchmark's
    Figure 2 curves: with probability ``exp_narrow_frac`` the exponent
    field is all zeroes/ones, and with probability ``sig_narrow_frac`` the
    significand field is all zeroes.
    """

    def __init__(
        self,
        zero_frac: float = 0.5,
        ones_frac: float = 0.02,
        exp_narrow_frac: float = 0.5,
        sig_narrow_frac: float = 0.1,
        exp_mean_bits: float = 5.0,
        sig_mean_bits: float = 30.0,
    ) -> None:
        if zero_frac + ones_frac > 1.0:
            raise ValueError("zero_frac + ones_frac must not exceed 1")
        self.zero_frac = zero_frac
        self.ones_frac = ones_frac
        self.exp_narrow_frac = exp_narrow_frac
        self.sig_narrow_frac = sig_narrow_frac
        self.exp_mean_bits = exp_mean_bits
        self.sig_mean_bits = sig_mean_bits

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        if u < self.zero_frac:
            return 0
        if u < self.zero_frac + self.ones_frac:
            return MAX_UINT64
        exponent = self._sample_exponent_field(rng)
        significand = self._sample_significand_field(rng)
        sign = rng.getrandbits(1)
        return (sign << 63) | (exponent << 52) | significand

    def _sample_exponent_field(self, rng: random.Random) -> int:
        # Remaining (non-zero-valued) operands: `exp_narrow_frac` overall
        # must be all-zeroes/ones; the zero-pattern operands already
        # contribute `zero_frac + ones_frac`, so rescale.
        base = self.zero_frac + self.ones_frac
        if self.exp_narrow_frac > base:
            residual = (self.exp_narrow_frac - base) / max(1e-9, 1.0 - base)
        else:
            residual = 0.0
        if rng.random() < residual:
            return 0 if rng.random() < 0.5 else 0x7FF
        # Otherwise: an exponent field of bounded two's-complement width.
        width = min(11, max(2, int(rng.expovariate(1.0 / self.exp_mean_bits)) + 2))
        lo = 1 << (width - 2)
        hi = (1 << (width - 1)) - 1
        field = rng.randint(lo, hi)
        if rng.random() < 0.5:
            field = (-field - 1) & 0x7FF  # sign-extended negative pattern
        return field

    def _sample_significand_field(self, rng: random.Random) -> int:
        base = self.zero_frac + self.ones_frac
        if self.sig_narrow_frac > base:
            residual = (self.sig_narrow_frac - base) / max(1e-9, 1.0 - base)
        else:
            residual = 0.0
        if rng.random() < residual:
            return 0
        # `m` significant high-order bits: top m bits meaningful, the
        # m-th bit from the top set, lower 52-m bits zero.
        m = min(52, max(1, int(rng.gauss(self.sig_mean_bits, 10.0))))
        if m >= 52:
            field = rng.getrandbits(52) | 1
        else:
            field = ((rng.getrandbits(m - 1) << 1) | 1) << (52 - m) if m > 1 else 1 << 51
        if field == (1 << 52) - 1:
            field -= 2  # avoid the all-ones fraction (counted separately)
        return field
