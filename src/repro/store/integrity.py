"""Checksummed artifact framing.

Two wire formats, both designed so that corrupting any single byte of a
file is *detected* at read time as a typed
:class:`~repro.store.errors.ArtifactError` rather than surfacing as a
bogus simulation result or a bare exception:

**Framed JSON envelope** (snapshots, fuzz reproducers) — one header
line, the JSON payload, one trailer sentinel::

    %repro-artifact v1 kind=<kind> schema=<int> len=<bytes> sha256=<hex> hdr=<hex16>
    <payload: exactly len bytes of UTF-8 JSON>
    %repro-artifact-end

The header declares the payload length (truncation detection without
hashing), the SHA-256 of the payload (bit-level corruption detection),
the artifact kind (a snapshot handed to the reproducer loader is a
:class:`SchemaMismatch`, not garbage), and the artifact's own schema
version.  ``hdr`` is a truncated SHA-256 of the header fields
themselves — kind/schema/len are outside the payload digest's reach,
so without it a bit flip in the header could go unnoticed.  The
trailer sentinel catches torn tails: a crash that wrote the header and
part of the payload, or appended trailing garbage.

**Checksummed line records** (the append-style sweep journal) — each
line is independently framed as ``<sha256-hex16> <json>``, so a crash
mid-append damages only the final line and the valid prefix is
salvageable (:func:`read_checked_lines`).

Readers fall back transparently to the legacy formats (plain JSON for
envelope kinds, whole-document JSON for journals, ``trace-v1`` for
traces) so artifacts written before this layer still load.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.store.atomic import atomic_write_bytes, notify_io
from repro.store.errors import (
    DigestMismatch,
    MalformedRecord,
    SchemaMismatch,
    TruncatedArtifact,
)

#: Magic of the framed JSON envelope (also the sniffing key for fsck).
ENVELOPE_MAGIC = "%repro-artifact"
#: Envelope *framing* version — independent of each artifact's schema.
ENVELOPE_VERSION = 1
_TRAILER = b"%repro-artifact-end\n"

#: Hex digits of the per-line digest in checksummed line records.
LINE_DIGEST_HEX = 16


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class ArtifactMeta:
    """What the reader learned about an artifact's framing."""

    kind: str
    schema: Optional[int]
    legacy: bool
    payload_len: int
    digest: Optional[str]


# ============================================================= envelope


def envelope_bytes(kind: str, schema: int, payload: Any) -> bytes:
    """Frame a JSON-serializable ``payload`` into envelope bytes."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    data = body.encode("utf-8")
    core = (
        f"v{ENVELOPE_VERSION} kind={kind} schema={schema} "
        f"len={len(data)} sha256={sha256_hex(data)}"
    )
    # The header protects the payload; ``hdr`` protects the header
    # itself (kind/schema are not otherwise covered by any digest).
    hdr = sha256_hex(core.encode("ascii"))[:LINE_DIGEST_HEX]
    return (
        f"{ENVELOPE_MAGIC} {core} hdr={hdr}\n".encode("ascii")
        + data + b"\n" + _TRAILER
    )


def write_json_artifact(
    path: str, kind: str, schema: int, payload: Any, *, durable: bool = True
) -> None:
    """Atomically write ``payload`` to ``path`` as a framed, digest-
    bearing envelope (see module docstring)."""
    atomic_write_bytes(path, envelope_bytes(kind, schema, payload), durable=durable)


def _parse_header(line: bytes, path: str) -> dict:
    try:
        text = line.decode("ascii").rstrip("\n")
        if not text.startswith(ENVELOPE_MAGIC + " "):
            raise ValueError("bad magic separator")
        core, hdr = text[len(ENVELOPE_MAGIC) + 1 :].rsplit(" hdr=", 1)
        parts = core.split()
        fields = dict(part.split("=", 1) for part in parts[1:])
        header = {
            "version": int(parts[0].lstrip("v")),
            "kind": fields["kind"],
            "schema": int(fields["schema"]),
            "len": int(fields["len"]),
            "sha256": fields["sha256"],
        }
    except (UnicodeDecodeError, ValueError, KeyError, IndexError):
        raise MalformedRecord(
            "unparseable artifact envelope header", path=path, line=1
        ) from None
    actual = sha256_hex(core.encode("ascii"))[:LINE_DIGEST_HEX]
    if actual != hdr:
        # kind/schema are outside the payload digest's reach; the header
        # self-digest is what makes a flip there detectable.
        raise DigestMismatch(
            "envelope header does not match its self-digest",
            path=path, line=1, expected=hdr, actual=actual,
        )
    return header


def read_json_artifact(
    path: str,
    kind: str,
    *,
    expected_schema: Optional[int] = None,
    allow_legacy: bool = True,
) -> Tuple[Any, ArtifactMeta]:
    """Read and verify a framed JSON artifact; returns ``(payload,
    meta)``.

    Raises :class:`TruncatedArtifact` on short/empty files or a missing
    trailer, :class:`DigestMismatch` on any byte-level damage,
    :class:`SchemaMismatch` on a wrong kind (or, when
    ``expected_schema`` is given, a wrong schema version), and
    :class:`MalformedRecord` on framing/JSON that does not parse.  A
    file that does not start with the envelope magic is read as legacy
    plain JSON when ``allow_legacy`` (the pre-store on-disk format);
    its meta has ``legacy=True`` and no digest.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    if not raw.startswith(ENVELOPE_MAGIC.encode("ascii")):
        if not allow_legacy:
            raise SchemaMismatch(
                f"not a {ENVELOPE_MAGIC} envelope", path=path, kind=kind,
                found=None, expected=ENVELOPE_VERSION,
            )
        return _read_legacy_json(path, raw, kind)
    newline = raw.find(b"\n")
    if newline < 0:
        raise TruncatedArtifact(
            "envelope header line has no newline (torn write)",
            path=path, kind=kind, offset=len(raw),
        )
    header = _parse_header(raw[: newline + 1], path)
    if header["version"] != ENVELOPE_VERSION:
        raise SchemaMismatch(
            f"envelope framing version {header['version']} is not supported "
            f"(this build reads v{ENVELOPE_VERSION})",
            path=path, kind=kind,
            found=header["version"], expected=ENVELOPE_VERSION,
        )
    if header["kind"] != kind:
        raise SchemaMismatch(
            f"artifact kind is {header['kind']!r}, expected {kind!r}",
            path=path, kind=kind, found=header["kind"], expected=kind,
        )
    start = newline + 1
    payload = raw[start : start + header["len"]]
    if len(payload) < header["len"]:
        raise TruncatedArtifact(
            f"payload is {len(payload)} bytes, header declares "
            f"{header['len']} (truncated file)",
            path=path, kind=kind, offset=len(raw),
        )
    actual = sha256_hex(payload)
    if actual != header["sha256"]:
        raise DigestMismatch(
            "payload does not match its stored SHA-256", path=path,
            kind=kind, expected=header["sha256"], actual=actual,
        )
    tail = raw[start + header["len"] :]
    if tail != b"\n" + _TRAILER:
        if len(tail) < len(b"\n" + _TRAILER) and (b"\n" + _TRAILER).startswith(tail):
            raise TruncatedArtifact(
                "trailer sentinel missing (torn tail)",
                path=path, kind=kind, offset=len(raw),
            )
        raise MalformedRecord(
            f"{len(tail)} unexpected byte(s) after the trailer sentinel "
            "(concurrent writer or appended garbage)",
            path=path, kind=kind, offset=start + header["len"],
        )
    try:
        value = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        # Digest-valid but unparseable: the artifact was *written* wrong.
        raise MalformedRecord(
            f"digest-valid payload is not JSON ({exc})", path=path, kind=kind
        ) from exc
    if expected_schema is not None and header["schema"] != expected_schema:
        raise SchemaMismatch(
            f"{kind} schema version {header['schema']} is not supported "
            f"(this build reads version {expected_schema})",
            path=path, kind=kind,
            found=header["schema"], expected=expected_schema,
        )
    meta = ArtifactMeta(
        kind=header["kind"], schema=header["schema"], legacy=False,
        payload_len=header["len"], digest=header["sha256"],
    )
    return value, meta


def _read_legacy_json(path: str, raw: bytes, kind: str) -> Tuple[Any, ArtifactMeta]:
    if not raw.strip():
        raise TruncatedArtifact("empty artifact file", path=path, kind=kind)
    try:
        value = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise MalformedRecord(
            f"legacy (unframed) artifact is not valid JSON ({exc})",
            path=path, kind=kind,
        ) from exc
    meta = ArtifactMeta(
        kind=kind, schema=None, legacy=True, payload_len=len(raw), digest=None
    )
    return value, meta


def verify_envelope(path: str) -> ArtifactMeta:
    """Integrity-check a framed envelope without caring about its kind
    or schema (fsck's cheap pass).  Raises the same typed errors as
    :func:`read_json_artifact`."""
    with open(path, "rb") as fh:
        first = fh.read(len(ENVELOPE_MAGIC))
    if first != ENVELOPE_MAGIC.encode("ascii"):
        raise SchemaMismatch(
            f"not a {ENVELOPE_MAGIC} envelope", path=path, found=None,
            expected=ENVELOPE_VERSION,
        )
    header = _parse_header_of(path)
    _, meta = read_json_artifact(path, header["kind"], allow_legacy=False)
    return meta


def _parse_header_of(path: str) -> dict:
    with open(path, "rb") as fh:
        line = fh.readline(4096)
    if not line.endswith(b"\n"):
        raise TruncatedArtifact(
            "envelope header line has no newline (torn write)", path=path,
            offset=len(line),
        )
    return _parse_header(line, path)


# ==================================================== checksummed lines


def checked_line(payload: Any) -> str:
    """Frame one JSON-serializable record as a self-checksummed line."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return f"{sha256_hex(body.encode('utf-8'))[:LINE_DIGEST_HEX]} {body}\n"


@dataclass
class SalvageResult:
    """Outcome of reading an append-style checksummed-line file."""

    records: List[Any]
    #: Total physical lines seen (including damaged ones).
    total_lines: int
    #: 1-based line number of the first damaged line, or None if clean.
    bad_line: Optional[int] = None
    #: Why that line was rejected.
    bad_reason: Optional[str] = None
    #: True when the damage is a torn final line (expected after a crash
    #: mid-append) rather than interior corruption.
    torn_tail: bool = False

    @property
    def clean(self) -> bool:
        return self.bad_line is None


def read_checked_lines(path: str) -> SalvageResult:
    """Read an append-style file of :func:`checked_line` records,
    stopping at the first damaged line (the valid prefix is what an
    append-only writer guarantees; anything after interior damage has
    unknowable provenance).

    Never raises on damage — callers decide whether a non-clean result
    is an auto-salvageable torn tail or a hard
    :class:`~repro.store.errors.DigestMismatch`.
    """
    with open(path, "rb") as fh:
        raw = fh.read()
    lines = raw.split(b"\n")
    trailing_newline = lines and lines[-1] == b""
    if trailing_newline:
        lines.pop()
    records: List[Any] = []
    for index, line in enumerate(lines):
        number = index + 1
        is_last = index == len(lines) - 1
        torn = is_last and not trailing_newline
        reason = None
        body = None
        if b" " not in line or len(line) < LINE_DIGEST_HEX + 2:
            reason = "unframed line (no digest prefix)"
        else:
            digest, body = line.split(b" ", 1)
            try:
                digest_text = digest.decode("ascii")
            except UnicodeDecodeError:
                digest_text = ""
            if len(digest_text) != LINE_DIGEST_HEX:
                reason = "digest prefix has the wrong width"
            elif sha256_hex(body)[:LINE_DIGEST_HEX] != digest_text:
                reason = "line does not match its digest"
        if reason is None:
            try:
                records.append(json.loads(body.decode("utf-8")))
            except (UnicodeDecodeError, json.JSONDecodeError):
                reason = "digest-valid line is not JSON"
        if reason is not None:
            return SalvageResult(
                records=records, total_lines=len(lines),
                bad_line=number, bad_reason=reason, torn_tail=torn,
            )
    return SalvageResult(records=records, total_lines=len(lines))


def append_checked_line(path: str, payload: Any, *, durable: bool = True) -> None:
    """Append one checksummed record and (by default) fsync the file —
    the append-only analogue of :func:`write_json_artifact`."""
    line = checked_line(payload)
    try:
        offset = os.path.getsize(path)
    except OSError:
        offset = 0
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(line)
        notify_io(op="append", path=path, data=line.encode("utf-8"),
                  offset=offset)
        if durable:
            fh.flush()
            os.fsync(fh.fileno())
            notify_io(op="fsync", path=path)
