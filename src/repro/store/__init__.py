"""Checksummed artifact store: crash-safe I/O for persistent state.

Every artifact the simulator persists — trace files, machine
snapshots, sweep journals, fuzz reproducer specs — goes through this
layer, which provides:

* **atomic, durable writes** (:mod:`repro.store.atomic`) — one shared
  write-to-temp + fsync + :func:`os.replace` + directory-fsync
  implementation, so a crash at any instant leaves either the complete
  old file or the complete new one;
* **integrity framing** (:mod:`repro.store.integrity`) — a
  length/SHA-256/trailer envelope for JSON artifacts and per-line
  digests for append-style journals, so any single corrupted byte is
  *detected* at load time;
* **a typed error taxonomy** (:mod:`repro.store.errors`) —
  :class:`TruncatedArtifact` / :class:`DigestMismatch` /
  :class:`SchemaMismatch` / :class:`MalformedRecord` under
  :class:`ArtifactError`, so callers can quarantine corrupt files
  (:func:`quarantine_path`) instead of crashing sweeps, and can tell
  corruption from schema drift;
* **fsck** (:mod:`repro.store.fsck`, ``python -m repro.store fsck``) —
  scan a tree, verify every artifact, salvage journals, quarantine or
  delete the unrecoverable;
* **corruption injection** (:mod:`repro.store.inject`) — the on-disk
  analogue of :mod:`repro.audit.inject`, used by the corruption-matrix
  tests to prove all of the above actually fires.

Like the paper's map-table checkpoints that make PRI recoverable,
persistent simulator state carries integrity metadata plus a repair
path — so the resume/reproducer machinery the long sweeps depend on
fails loudly and locally, never silently.
"""

from repro.store.atomic import (
    FSYNC_DIR_STATS,
    FsyncDirStats,
    TMP_SUFFIX,
    add_fsync_dir_hook,
    add_io_observer,
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    create_exclusive_bytes,
    durable_replace,
    fsync_dir,
    fsync_file,
    notify_io,
    quarantine_path,
    remove_file,
    remove_fsync_dir_hook,
    remove_io_observer,
    set_strict_fsync_dir,
    strict_fsync_dir,
)
from repro.store.errors import (
    ArtifactError,
    DigestMismatch,
    MalformedRecord,
    SchemaMismatch,
    TruncatedArtifact,
)
from repro.store.fsck import Finding, FsckReport, fsck_tree
from repro.store.inject import CORRUPTIONS, Corruption, corrupt
from repro.store.integrity import (
    ArtifactMeta,
    ENVELOPE_MAGIC,
    ENVELOPE_VERSION,
    append_checked_line,
    checked_line,
    envelope_bytes,
    read_checked_lines,
    read_json_artifact,
    sha256_hex,
    verify_envelope,
    write_json_artifact,
)

__all__ = [
    "ArtifactError",
    "ArtifactMeta",
    "CORRUPTIONS",
    "Corruption",
    "DigestMismatch",
    "ENVELOPE_MAGIC",
    "ENVELOPE_VERSION",
    "FSYNC_DIR_STATS",
    "Finding",
    "FsckReport",
    "FsyncDirStats",
    "MalformedRecord",
    "SchemaMismatch",
    "TMP_SUFFIX",
    "TruncatedArtifact",
    "add_fsync_dir_hook",
    "add_io_observer",
    "append_checked_line",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "checked_line",
    "corrupt",
    "create_exclusive_bytes",
    "durable_replace",
    "envelope_bytes",
    "fsck_tree",
    "fsync_dir",
    "fsync_file",
    "notify_io",
    "quarantine_path",
    "read_checked_lines",
    "read_json_artifact",
    "remove_file",
    "remove_fsync_dir_hook",
    "remove_io_observer",
    "set_strict_fsync_dir",
    "sha256_hex",
    "strict_fsync_dir",
    "verify_envelope",
    "write_json_artifact",
]
