"""Artifact-corruption injection: prove the store's framing fires.

The on-disk counterpart of :mod:`repro.audit.inject`: where that
registry corrupts *in-memory* reclamation bookkeeping and asserts the
auditor converts it into a structured failure, this one corrupts
*persistent artifacts* — the damage a crashed writer, a bad disk, or a
concurrent process leaves behind — and the corruption-matrix tests
assert that every loader converts it into a typed
:class:`~repro.store.errors.ArtifactError` (or a documented salvage)
and that ``python -m repro.store fsck`` detects it.

Each :class:`Corruption` mutates one file deterministically (offsets
are derived from the file size, never from a clock or RNG) and returns
a detail string, or ``None`` when the file is too small for that damage
shape to be distinguishable (e.g. truncating a 1-byte file).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class Corruption:
    """One injectable on-disk corruption.

    ``detectable_without_digest`` marks damage that pre-checksum
    formats (trace-v1, legacy JSON) are still guaranteed to notice via
    structural validation alone; the rest *require* the v2 framing, which
    is the reason the framing exists.
    """

    name: str
    description: str
    apply: Callable[[str], Optional[str]]
    detectable_without_digest: bool = False


def _size(path: str) -> int:
    return os.path.getsize(path)


def _truncate(path: str, keep: int) -> str:
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    return f"truncated to {keep} bytes"


def _truncate_half(path: str) -> Optional[str]:
    size = _size(path)
    if size < 2:
        return None
    return _truncate(path, size // 2)


def _truncate_tail(path: str) -> Optional[str]:
    """Chop a handful of final bytes — the classic short write at the
    end of a file whose rename still landed."""
    size = _size(path)
    chop = min(7, size)
    if chop == 0:
        return None
    return _truncate(path, size - chop)


def _empty(path: str) -> Optional[str]:
    if _size(path) == 0:
        return None
    return _truncate(path, 0)


def _bit_flip(path: str) -> Optional[str]:
    """Flip one bit in the middle of the file — bit rot the framing
    digests exist to catch."""
    size = _size(path)
    if size == 0:
        return None
    offset = size // 2
    with open(path, "r+b") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0x10]))
    return f"flipped bit 4 of byte {offset}"


def _zero_fill(path: str) -> Optional[str]:
    """Overwrite a span with NULs — what a crashed filesystem journal
    replay typically leaves in a partially-flushed page."""
    size = _size(path)
    if size < 4:
        return None
    offset = size // 3
    span = min(16, size - offset)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        fh.write(b"\x00" * span)
    return f"zero-filled {span} bytes at offset {offset}"


def _torn_tail(path: str) -> Optional[str]:
    """Append half a record with no terminator — a writer that died
    mid-append (power cut between ``write`` and the final newline)."""
    with open(path, "ab") as fh:
        fh.write(b'deadbeefdeadbeef {"key":"torn')
    return "appended an unterminated partial record"


def _tmp_leftover(path: str) -> Optional[str]:
    """Drop a half-written ``*.tmp`` sibling next to the artifact — the
    debris an interrupted atomic writer leaves; the artifact itself
    stays intact."""
    leftover = path + ".partial.tmp"
    with open(leftover, "wb") as fh:
        fh.write(b'{"version": 1, "half": ')
    return f"left {os.path.basename(leftover)} beside the artifact"


#: Registry of injectable corruptions, keyed by name (the analogue of
#: :data:`repro.audit.inject.FAULTS`).
CORRUPTIONS: Dict[str, Corruption] = {
    c.name: c
    for c in (
        Corruption("truncate-half", "file cut to half its length",
                   _truncate_half, detectable_without_digest=True),
        Corruption("truncate-tail", "final bytes chopped (short write)",
                   _truncate_tail, detectable_without_digest=True),
        Corruption("empty", "file truncated to zero bytes",
                   _empty, detectable_without_digest=True),
        Corruption("bit-flip", "one bit flipped mid-file (bit rot)",
                   _bit_flip),
        Corruption("zero-fill", "a 16-byte span overwritten with NULs",
                   _zero_fill),
        Corruption("torn-tail", "unterminated partial record appended",
                   _torn_tail),
        Corruption("tmp-leftover", "abandoned .tmp sibling from a "
                   "concurrent writer", _tmp_leftover,
                   detectable_without_digest=True),
    )
}


def corrupt(path: str, name: str) -> Tuple[str, str]:
    """Apply one registered corruption to ``path``; returns
    ``(affected_path, detail)``.  Raises :class:`KeyError` on an unknown
    name and :class:`ValueError` when the corruption is not applicable
    to this file (too small)."""
    corruption = CORRUPTIONS[name]
    detail = corruption.apply(path)
    if detail is None:
        raise ValueError(f"corruption {name!r} is not applicable to {path!r}")
    affected = path + ".partial.tmp" if name == "tmp-leftover" else path
    return affected, detail
