"""``fsck`` for the artifact store: scan, verify, repair.

Walks a results/checkpoint/journal tree, recognizes every artifact kind
the simulator persists (traces v1/v2, machine snapshots, sweep
journals, fuzz reproducers — plus abandoned ``*.tmp`` files from
interrupted atomic writers), verifies each one's integrity framing, and
reports structured findings.  In repair mode it

* deletes concurrent-writer leftovers (``*.tmp``),
* salvages the valid prefix of damaged append-style journals
  (rewriting them atomically so they load again),
* quarantines unrecoverable artifacts to ``<name>.quarantine/``
  (or deletes them with ``delete=True``),

leaving a tree where every remaining artifact loads cleanly.  Files it
does not recognize are never touched.  CLI in
:mod:`repro.store.__main__`::

    python -m repro.store fsck <dir>            # report only
    python -m repro.store fsck --repair <dir>   # fix what can be fixed
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.store.atomic import TMP_SUFFIX, atomic_writer, quarantine_path
from repro.store.errors import ArtifactError, SchemaMismatch
from repro.store.integrity import (
    ENVELOPE_MAGIC,
    LINE_DIGEST_HEX,
    checked_line,
    read_checked_lines,
    verify_envelope,
)

_CHECKED_LINE_RE = re.compile(rb"^[0-9a-f]{%d} \{" % LINE_DIGEST_HEX)
_QUARANTINE_SUFFIX = ".quarantine"

#: File statuses a finding can carry.
OK = "ok"
CORRUPT = "corrupt"
SALVAGEABLE = "salvageable"
LEFTOVER = "leftover"
SKIPPED = "skipped"


@dataclass
class Finding:
    """One scanned file: what it is, what is wrong, what was done."""

    path: str
    kind: str          # trace | snapshot-or-reproducer envelope kind |
                       # sweep-journal | legacy-* | tmp | unknown
    status: str        # OK / CORRUPT / SALVAGEABLE / LEFTOVER / SKIPPED
    error: Optional[str] = None   # message of the integrity failure
    error_type: Optional[str] = None  # ArtifactError subclass name
    action: Optional[str] = None  # quarantined:<dst> | deleted | salvaged

    def __str__(self) -> str:
        line = f"{self.status:<11} {self.kind:<18} {self.path}"
        if self.error:
            line += f"\n{'':11}   {self.error_type}: {self.error}"
        if self.action:
            line += f"\n{'':11}   -> {self.action}"
        return line


@dataclass
class FsckReport:
    """Outcome of one :func:`fsck_tree` pass."""

    root: str
    repaired: bool
    findings: List[Finding] = field(default_factory=list)

    def _count(self, status: str) -> int:
        return sum(1 for f in self.findings if f.status == status)

    @property
    def scanned(self) -> int:
        return len(self.findings)

    @property
    def ok(self) -> int:
        return self._count(OK)

    @property
    def corrupt(self) -> List[Finding]:
        return [f for f in self.findings
                if f.status in (CORRUPT, SALVAGEABLE, LEFTOVER)]

    @property
    def unrepaired(self) -> List[Finding]:
        """Problems still on disk after this pass (drives the exit
        code: nonzero without ``--repair``, zero after a full repair)."""
        return [f for f in self.corrupt if f.action is None]

    def summary(self) -> str:
        actions = sum(1 for f in self.findings if f.action)
        return (
            f"fsck {self.root}: {self.scanned} file(s) scanned, "
            f"{self.ok} ok, {self._count(CORRUPT)} corrupt, "
            f"{self._count(SALVAGEABLE)} salvageable, "
            f"{self._count(LEFTOVER)} writer leftover(s), "
            f"{self._count(SKIPPED)} skipped; "
            f"{actions} repair action(s), "
            f"{len(self.unrepaired)} problem(s) remaining"
        )


# ========================================================= classification


def _sniff(path: str) -> str:
    """Classify a file by content, not extension — artifacts get copied
    around under arbitrary names."""
    try:
        with open(path, "rb") as fh:
            head = fh.read(4096)
    except OSError:
        return "unreadable"
    if head.startswith(b"trace-v1") or head.startswith(b"trace-v2"):
        return "trace"
    if head.startswith(ENVELOPE_MAGIC.encode("ascii")):
        return "envelope"
    if _CHECKED_LINE_RE.match(head):
        return "checked-lines"
    stripped = head.lstrip()
    if stripped.startswith(b"{"):
        return "legacy-json"
    return "unknown"


def _legacy_json_kind(doc) -> str:
    if not isinstance(doc, dict):
        return "unknown"
    if "cells" in doc and "version" in doc:
        return "legacy-journal"
    if "spec" in doc and "result" in doc:
        return "legacy-reproducer"
    if "config_digest" in doc and "rob" in doc:
        return "legacy-snapshot"
    return "unknown"


# ============================================================== verifiers


def _verify_trace(path: str, finding: Finding) -> None:
    # Lazy import: repro.workloads.serialize imports repro.store.
    from repro.workloads.serialize import load_trace, verify_trace

    with open(path, "rb") as fh:
        v2 = fh.read(8) == b"trace-v2"
    finding.kind = "trace"
    if v2:
        verify_trace(path)  # digest + counts: detects any byte of damage
    else:
        load_trace(path)    # v1 has no digest: deep-parse every op line


def _verify_envelope(path: str, finding: Finding) -> None:
    meta = verify_envelope(path)
    finding.kind = meta.kind


def _verify_journal_records(path: str, records) -> None:
    """Semantic validation of a digest-clean sweep journal: every record
    after the header must be a cell record (``key``/``cell``) or a
    well-formed lease record (``lease`` with the farm's required fields
    and a known state)."""
    from repro.experiments.journal import LEASE_FIELDS, LEASE_STATES

    for index, record in enumerate(records[1:], start=2):
        if not isinstance(record, dict):
            raise ArtifactError(
                "journal record is not an object", path=path,
                kind="sweep-journal", line=index,
            )
        if "lease" in record:
            lease = record["lease"]
            if not isinstance(lease, dict):
                raise ArtifactError(
                    "lease record is not an object", path=path,
                    kind="sweep-journal", line=index,
                )
            missing = [f for f in LEASE_FIELDS if f not in lease]
            if missing:
                raise ArtifactError(
                    f"lease record lacks fields {missing}", path=path,
                    kind="sweep-journal", line=index,
                )
            if lease["state"] not in LEASE_STATES:
                raise ArtifactError(
                    f"lease record has unknown state {lease['state']!r}",
                    path=path, kind="sweep-journal", line=index,
                )
        elif "key" not in record or "cell" not in record:
            raise ArtifactError(
                "journal record lacks key/cell fields", path=path,
                kind="sweep-journal", line=index,
            )


def _verify_job_records(path: str, records) -> None:
    """Semantic validation of a digest-clean serve job journal: every
    record after the header must wrap a job transition carrying the
    required fields and a known state."""
    from repro.serve.jobs import JOB_FIELDS, JOB_STATES

    for index, record in enumerate(records[1:], start=2):
        if not isinstance(record, dict) or not isinstance(
                record.get("job"), dict):
            raise ArtifactError(
                "job journal record lacks a job object", path=path,
                kind="serve-job-journal", line=index,
            )
        job = record["job"]
        missing = [f for f in JOB_FIELDS if f not in job]
        if missing:
            raise ArtifactError(
                f"job record lacks fields {missing}", path=path,
                kind="serve-job-journal", line=index,
            )
        if job["state"] not in JOB_STATES:
            raise ArtifactError(
                f"job record has unknown state {job['state']!r}",
                path=path, kind="serve-job-journal", line=index,
            )


def _verify_checked_lines(path: str, finding: Finding) -> None:
    """An append-style checksummed-line file (the sweep journal or the
    serve job journal — told apart by their header ``format`` tags)."""
    from repro.experiments.journal import JOURNAL_FORMAT
    from repro.serve.jobs import JOBS_FORMAT

    result = read_checked_lines(path)
    header = result.records[0] if result.records else None
    header_format = header.get("format") if isinstance(header, dict) else None
    if header_format == JOURNAL_FORMAT:
        finding.kind = "sweep-journal"
    elif header_format == JOBS_FORMAT:
        finding.kind = "serve-job-journal"
    else:
        finding.kind = "checked-lines"
    if result.clean and finding.kind == "sweep-journal":
        _verify_journal_records(path, result.records)
        return
    if result.clean and finding.kind == "serve-job-journal":
        _verify_job_records(path, result.records)
        return
    if result.clean:
        raise ArtifactError(
            "checksummed-line file has no recognizable journal header",
            path=path, kind=finding.kind, line=1,
        )
    # Any damage in an append-style file leaves its valid prefix
    # salvageable — provided the header survived.
    finding.status = SALVAGEABLE if header is not None else CORRUPT
    raise ArtifactError(
        f"line {result.bad_line}: {result.bad_reason}"
        + (" (torn tail)" if result.torn_tail else ""),
        path=path, kind=finding.kind, line=result.bad_line,
    )


def _verify_legacy_json(path: str, finding: Finding) -> None:
    with open(path, "rb") as fh:
        raw = fh.read()
    try:
        doc = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        finding.kind = "legacy-json"
        raise ArtifactError(
            f"legacy JSON artifact does not parse ({exc})", path=path
        ) from exc
    finding.kind = _legacy_json_kind(doc)
    if finding.kind == "unknown":
        # Parseable JSON that is none of our artifacts: not ours to judge.
        finding.status = SKIPPED


# ================================================================ repair


def _salvage_journal(path: str, finding: Finding) -> None:
    """Rewrite a damaged append-style journal with its valid prefix."""
    result = read_checked_lines(path)
    kept = len(result.records)
    with atomic_writer(path) as handle:
        for record in result.records:
            handle.write(checked_line(record))
    finding.action = (
        f"salvaged: kept the {kept}-record valid prefix, dropped "
        f"line {result.bad_line}+"
    )


def fsck_tree(
    root: str,
    *,
    repair: bool = False,
    delete: bool = False,
    progress: Optional[Callable[[Finding], None]] = None,
) -> FsckReport:
    """Scan ``root`` (a directory tree or a single file), verify every
    recognized artifact, and — with ``repair`` — delete writer
    leftovers, salvage damaged journals, and quarantine (``delete=True``:
    remove) unrecoverable artifacts.  Returns a :class:`FsckReport`;
    ``progress`` is called once per finding as it lands."""
    report = FsckReport(root=root, repaired=repair)
    for path in _walk(root):
        finding = _check_file(path)
        if repair and finding.status in (CORRUPT, SALVAGEABLE, LEFTOVER):
            _repair_file(finding, delete)
        report.findings.append(finding)
        if progress is not None:
            progress(finding)
    return report


def _walk(root: str):
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        # Never descend into quarantine dirs: their contents are known-bad.
        dirnames[:] = sorted(
            d for d in dirnames if not d.endswith(_QUARANTINE_SUFFIX)
        )
        for name in sorted(filenames):
            yield os.path.join(dirpath, name)


_VERIFIERS = {
    "trace": _verify_trace,
    "envelope": _verify_envelope,
    "checked-lines": _verify_checked_lines,
    "legacy-json": _verify_legacy_json,
}


def _check_file(path: str) -> Finding:
    if path.endswith(TMP_SUFFIX):
        return Finding(
            path=path, kind="tmp", status=LEFTOVER,
            error="abandoned atomic-writer temp file", error_type="Leftover",
        )
    try:
        if os.path.getsize(path) == 0:
            # An empty file carries nothing to sniff; flag it only when
            # its name claims to be one of our artifacts (.gitkeep-style
            # markers stay untouched).
            if path.endswith((".json", ".trace", ".ckpt")):
                return Finding(
                    path=path, kind="unknown", status=CORRUPT,
                    error="empty artifact file (truncated to zero bytes)",
                    error_type="TruncatedArtifact",
                )
            return Finding(path=path, kind="unknown", status=SKIPPED)
    except OSError as exc:
        return Finding(
            path=path, kind="unknown", status=CORRUPT,
            error=f"unreadable: {exc}", error_type=type(exc).__name__,
        )
    sniffed = _sniff(path)
    finding = Finding(path=path, kind=sniffed, status=OK)
    verifier = _VERIFIERS.get(sniffed)
    if verifier is None:
        finding.status = SKIPPED
        return finding
    try:
        verifier(path, finding)
    except SchemaMismatch as exc:
        # Intact but incompatible (old schema, foreign kind): report it,
        # but never quarantine — regenerating/archiving is the caller's
        # decision, and the file is not damaged.
        finding.status = SKIPPED
        finding.error = str(exc)
        finding.error_type = type(exc).__name__
    except ArtifactError as exc:
        if finding.status == OK:
            finding.status = CORRUPT
        finding.error = str(exc)
        finding.error_type = type(exc).__name__
    except OSError as exc:
        finding.status = CORRUPT
        finding.error = f"unreadable: {exc}"
        finding.error_type = type(exc).__name__
    return finding


def _repair_file(finding: Finding, delete: bool) -> None:
    try:
        if finding.status == LEFTOVER:
            os.unlink(finding.path)
            finding.action = "deleted"
        elif finding.status == SALVAGEABLE:
            _salvage_journal(finding.path, finding)
        elif delete:
            os.unlink(finding.path)
            finding.action = "deleted"
        else:
            finding.action = f"quarantined: {quarantine_path(finding.path)}"
    except OSError as exc:
        finding.action = None
        finding.error = (finding.error or "") + f" [repair failed: {exc}]"
