"""Artifact-store CLI: fsck and repair for persistent simulator state.

::

    python -m repro.store fsck <dir|file>             # verify, report
    python -m repro.store fsck --repair <dir|file>    # also fix
    python -m repro.store repair <dir|file>           # == fsck --repair
    python -m repro.store repair --delete <dir|file>  # delete, don't quarantine

Exit status: 0 when the tree is clean (or every problem was repaired),
1 when problems remain on disk, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.store.fsck import fsck_tree


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Verify and repair the simulator's persistent "
                    "artifacts (traces, snapshots, journals, reproducers).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
        ("fsck", "scan a tree and verify every artifact's integrity"),
        ("repair", "fsck, then salvage journals, remove writer leftovers, "
                   "and quarantine unrecoverable artifacts"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("path", help="directory tree (or single file) to scan")
        cmd.add_argument(
            "--delete", action="store_true",
            help="delete unrecoverable artifacts instead of quarantining "
                 "them to <name>.quarantine/",
        )
        cmd.add_argument(
            "-q", "--quiet", action="store_true",
            help="print only the summary line",
        )
        if name == "fsck":
            cmd.add_argument(
                "--repair", action="store_true",
                help="fix what can be fixed (same as the repair command)",
            )
    args = parser.parse_args(argv)

    repair = args.command == "repair" or getattr(args, "repair", False)
    if args.delete and not repair:
        parser.error("--delete requires repair mode (use repair or --repair)")

    def progress(finding) -> None:
        if not args.quiet and finding.status != "ok":
            print(finding)

    report = fsck_tree(
        args.path, repair=repair, delete=args.delete, progress=progress
    )
    print(report.summary())
    return 1 if report.unrepaired else 0


if __name__ == "__main__":
    sys.exit(main())
