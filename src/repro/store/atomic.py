"""Crash-safe file replacement and quarantine.

One implementation of write-to-temp + fsync + :func:`os.replace` +
directory fsync, shared by every artifact producer (traces, snapshots,
journals, reproducers) — previously `runner.py`, `snapshot.py`, and
`journal.py` each had an ad-hoc copy, none of which fsynced, so the
"atomic" rename could still land an empty or partial file after a power
cut (the rename is durable before the data on many filesystems).

The contract: after :func:`atomic_write_bytes` (or the
:func:`atomic_writer` context) returns, a crash at *any* point leaves
either the complete new file or the complete previous one — never a
mix, never a truncation.  The temp file is created in the destination
directory (same filesystem, so ``os.replace`` is atomic) with a
``.tmp`` suffix that :mod:`repro.store.fsck` recognizes as a
concurrent-writer leftover and cleans up.

Two observability layers ride on top of the primitives:

* **I/O observers** (:func:`add_io_observer`) — every write, append,
  fsync, rename, exclusive create, unlink, and directory fsync that
  flows through this module is reported as one event dict.  This is the
  recording surface of the crash-consistency harness
  (:mod:`repro.crash`): because every durability layer funnels its disk
  traffic through these few functions, observing them yields a complete
  op log from which all reachable power-loss states can be enumerated.
* **directory-fsync accounting** (:data:`FSYNC_DIR_STATS`,
  :func:`add_fsync_dir_hook`, :func:`set_strict_fsync_dir`) — a
  directory fsync the platform refuses is normally survivable (some
  filesystems cannot fsync directories at all), but silently swallowing
  it used to make "this fs gives no rename durability" indistinguishable
  from "everything is fine".  Skips are now counted, reported to hooks,
  and fatal in strict mode, so tests and the crash harness can pin the
  count to zero on filesystems that do support it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Union

#: Suffix of in-flight temp files; fsck treats ``*<TMP_SUFFIX>`` as
#: abandoned writer state, safe to delete.
TMP_SUFFIX = ".tmp"


# ========================================================== I/O observers

#: Registered observers; each is called with one event dict per I/O
#: operation: ``{"op": "write|append|fsync|rename|create|unlink|
#: fsync_dir", "path": ..., ...}``.  Empty in normal operation — the
#: fast path is a single truthiness check.
_IO_OBSERVERS: List[Callable[[Dict], None]] = []


def add_io_observer(observer: Callable[[Dict], None]) -> None:
    """Register a callable to receive one event dict per I/O operation
    performed through this module (the crash harness's recorder)."""
    _IO_OBSERVERS.append(observer)


def remove_io_observer(observer: Callable[[Dict], None]) -> None:
    with contextlib.suppress(ValueError):
        _IO_OBSERVERS.remove(observer)


def io_observed() -> bool:
    """True when at least one observer is registered (producers use this
    to skip read-back work that only observers consume)."""
    return bool(_IO_OBSERVERS)


def notify_io(**event) -> None:
    """Report one I/O event to every registered observer."""
    if not _IO_OBSERVERS:
        return
    for observer in list(_IO_OBSERVERS):
        observer(event)


# ================================================ directory-fsync skips


@dataclass
class FsyncDirStats:
    """Counters for :func:`fsync_dir` outcomes since the last
    :meth:`reset` — the observable record of every directory fsync the
    platform refused (and this module used to swallow silently)."""

    attempted: int = 0
    synced: int = 0
    #: ``os.open`` on the directory failed (no O_RDONLY dirs on this OS).
    skipped_open: int = 0
    #: The fsync itself failed (directories not fsyncable on this fs).
    skipped_fsync: int = 0

    @property
    def skipped(self) -> int:
        return self.skipped_open + self.skipped_fsync

    def reset(self) -> None:
        self.attempted = 0
        self.synced = 0
        self.skipped_open = 0
        self.skipped_fsync = 0


#: Module-wide directory-fsync accounting.
FSYNC_DIR_STATS = FsyncDirStats()

#: Callables invoked as ``hook(directory, exc)`` whenever a directory
#: fsync is skipped.
_FSYNC_DIR_HOOKS: List[Callable[[str, OSError], None]] = []

_STRICT_FSYNC_DIR = False


def add_fsync_dir_hook(hook: Callable[[str, OSError], None]) -> None:
    """Register a callback fired on every skipped directory fsync."""
    _FSYNC_DIR_HOOKS.append(hook)


def remove_fsync_dir_hook(hook: Callable[[str, OSError], None]) -> None:
    with contextlib.suppress(ValueError):
        _FSYNC_DIR_HOOKS.remove(hook)


def set_strict_fsync_dir(strict: bool) -> bool:
    """Make a skipped directory fsync raise its :class:`OSError` instead
    of degrading silently.  Returns the previous setting."""
    global _STRICT_FSYNC_DIR
    previous = _STRICT_FSYNC_DIR
    _STRICT_FSYNC_DIR = strict
    return previous


@contextlib.contextmanager
def strict_fsync_dir() -> Iterator[None]:
    """Context manager form of :func:`set_strict_fsync_dir` for tests:
    within the block, a skipped directory fsync is a hard failure."""
    previous = set_strict_fsync_dir(True)
    try:
        yield
    finally:
        set_strict_fsync_dir(previous)


def _fsync_dir_skipped(directory: str, exc: OSError, stage: str) -> None:
    if stage == "open":
        FSYNC_DIR_STATS.skipped_open += 1
    else:
        FSYNC_DIR_STATS.skipped_fsync += 1
    # A skipped directory fsync forces nothing: the crash harness must
    # see it as a non-barrier, which is why the event says so.
    notify_io(op="fsync_dir", path=directory, skipped=True)
    for hook in list(_FSYNC_DIR_HOOKS):
        hook(directory, exc)
    if _STRICT_FSYNC_DIR:
        raise exc


def fsync_dir(directory: str) -> bool:
    """Flush a directory's entry table so a just-renamed file survives a
    crash.  Returns True when the directory was actually fsynced; a
    platform that cannot fsync directories yields False, counts the skip
    in :data:`FSYNC_DIR_STATS`, notifies every registered hook, and —
    under :func:`set_strict_fsync_dir` — raises the underlying
    :class:`OSError` instead."""
    FSYNC_DIR_STATS.attempted += 1
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError as exc:
        _fsync_dir_skipped(directory, exc, "open")
        return False
    try:
        os.fsync(fd)
    except OSError as exc:
        _fsync_dir_skipped(directory, exc, "fsync")
        return False
    finally:
        os.close(fd)
    FSYNC_DIR_STATS.synced += 1
    notify_io(op="fsync_dir", path=directory, skipped=False)
    return True


def fsync_file(handle) -> None:
    """Flush one open file handle to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def atomic_write_bytes(path: str, data: bytes, *, durable: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    ``durable=False`` skips the fsyncs (atomic against concurrent
    readers but not against power loss) — useful in tests and for
    throwaway output.
    """
    with atomic_writer(path, binary=True, durable=durable) as handle:
        handle.write(data)


def atomic_write_text(
    path: str, text: str, *, encoding: str = "utf-8", durable: bool = True
) -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)


@contextlib.contextmanager
def atomic_writer(
    path: Union[str, os.PathLike],
    *,
    binary: bool = False,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Iterator:
    """Context manager yielding a temp-file handle; on clean exit the
    temp file is fsynced and renamed over ``path`` (and the directory
    fsynced), on exception it is removed and ``path`` is untouched."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=TMP_SUFFIX
    )
    try:
        mode = "wb" if binary else "w"
        kwargs = {} if binary else {"encoding": encoding}
        with os.fdopen(fd, mode, **kwargs) as handle:
            yield handle
            if durable:
                fsync_file(handle)
        if io_observed():
            with open(tmp, "rb") as readback:
                notify_io(op="write", path=tmp, data=readback.read())
            if durable:
                notify_io(op="fsync", path=tmp)
        os.replace(tmp, path)
        notify_io(op="rename", path=tmp, dst=path)
        if durable:
            fsync_dir(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
            notify_io(op="unlink", path=tmp)
        raise


def durable_replace(src: str, dst: str, *, durable: bool = True) -> None:
    """:func:`os.replace` plus the directory fsync that makes the rename
    itself survive a power cut.  Without the fsync, a crash after the
    caller has moved on can silently undo the rename — the exact gap the
    journal-archive path had before the crash harness caught it."""
    os.replace(src, dst)
    notify_io(op="rename", path=src, dst=dst)
    if durable:
        fsync_dir(os.path.dirname(os.path.abspath(dst)))


def create_exclusive_bytes(path: str, data: bytes) -> bool:
    """Atomically create ``path`` with ``data`` iff it does not already
    exist (the farm's O_EXCL lease claim: the filesystem is the
    arbiter).  Returns False when somebody else holds the file.  The
    data is fsynced; note the *directory entry* is not — losing a fresh
    claim file to a crash is safe (liveness, not safety: the claim is
    simply retried), so no caller pays for a directory fsync here."""
    try:
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return False
    notify_io(op="create", path=path)
    try:
        os.write(fd, data)
        notify_io(op="write", path=path, data=data)
        os.fsync(fd)
        notify_io(op="fsync", path=path)
    finally:
        os.close(fd)
    return True


def remove_file(path: str) -> bool:
    """Unlink ``path`` if present; returns False when it was already
    gone (or unremovable).  The observable counterpart of the bare
    ``os.unlink`` the lease/server layers used to scatter."""
    try:
        os.unlink(path)
    except OSError:
        return False
    notify_io(op="unlink", path=path)
    return True


def quarantine_path(path: str) -> str:
    """Move a corrupt artifact into ``<path>.quarantine/`` (created on
    demand) instead of deleting it, so the evidence survives for
    post-mortem while sweeps stop tripping over it.  Returns the new
    location; repeated quarantines of the same name get ``.1``, ``.2``
    ... suffixes."""
    directory = path + ".quarantine"
    os.makedirs(directory, exist_ok=True)
    base = os.path.basename(path)
    dest = os.path.join(directory, base)
    counter = 0
    while os.path.exists(dest):
        counter += 1
        dest = os.path.join(directory, f"{base}.{counter}")
    durable_replace(path, dest, durable=False)
    fsync_dir(os.path.dirname(os.path.abspath(path)))
    return dest
