"""Crash-safe file replacement and quarantine.

One implementation of write-to-temp + fsync + :func:`os.replace` +
directory fsync, shared by every artifact producer (traces, snapshots,
journals, reproducers) — previously `runner.py`, `snapshot.py`, and
`journal.py` each had an ad-hoc copy, none of which fsynced, so the
"atomic" rename could still land an empty or partial file after a power
cut (the rename is durable before the data on many filesystems).

The contract: after :func:`atomic_write_bytes` (or the
:func:`atomic_writer` context) returns, a crash at *any* point leaves
either the complete new file or the complete previous one — never a
mix, never a truncation.  The temp file is created in the destination
directory (same filesystem, so ``os.replace`` is atomic) with a
``.tmp`` suffix that :mod:`repro.store.fsck` recognizes as a
concurrent-writer leftover and cleans up.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from typing import Iterator, Union

#: Suffix of in-flight temp files; fsck treats ``*<TMP_SUFFIX>`` as
#: abandoned writer state, safe to delete.
TMP_SUFFIX = ".tmp"


def fsync_dir(directory: str) -> None:
    """Flush a directory's entry table so a just-renamed file survives a
    crash.  A no-op on platforms that cannot open directories."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # e.g. directories are not fsyncable on this OS/filesystem
    finally:
        os.close(fd)


def fsync_file(handle) -> None:
    """Flush one open file handle to stable storage."""
    handle.flush()
    os.fsync(handle.fileno())


def atomic_write_bytes(path: str, data: bytes, *, durable: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    ``durable=False`` skips the fsyncs (atomic against concurrent
    readers but not against power loss) — useful in tests and for
    throwaway output.
    """
    with atomic_writer(path, binary=True, durable=durable) as handle:
        handle.write(data)


def atomic_write_text(
    path: str, text: str, *, encoding: str = "utf-8", durable: bool = True
) -> None:
    """Atomically replace ``path`` with ``text``."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)


@contextlib.contextmanager
def atomic_writer(
    path: Union[str, os.PathLike],
    *,
    binary: bool = False,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Iterator:
    """Context manager yielding a temp-file handle; on clean exit the
    temp file is fsynced and renamed over ``path`` (and the directory
    fsynced), on exception it is removed and ``path`` is untouched."""
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=TMP_SUFFIX
    )
    try:
        mode = "wb" if binary else "w"
        kwargs = {} if binary else {"encoding": encoding}
        with os.fdopen(fd, mode, **kwargs) as handle:
            yield handle
            if durable:
                fsync_file(handle)
        os.replace(tmp, path)
        if durable:
            fsync_dir(directory)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise


def quarantine_path(path: str) -> str:
    """Move a corrupt artifact into ``<path>.quarantine/`` (created on
    demand) instead of deleting it, so the evidence survives for
    post-mortem while sweeps stop tripping over it.  Returns the new
    location; repeated quarantines of the same name get ``.1``, ``.2``
    ... suffixes."""
    directory = path + ".quarantine"
    os.makedirs(directory, exist_ok=True)
    base = os.path.basename(path)
    dest = os.path.join(directory, base)
    counter = 0
    while os.path.exists(dest):
        counter += 1
        dest = os.path.join(directory, f"{base}.{counter}")
    os.replace(path, dest)
    fsync_dir(os.path.dirname(os.path.abspath(path)))
    return dest
