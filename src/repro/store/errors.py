"""Typed artifact-integrity errors.

Every persistent artifact reader in the tree (traces, machine
snapshots, sweep journals, fuzz reproducers) raises exactly one
hierarchy on bad input, so callers can tell *corrupt* (quarantine the
file, keep the sweep alive) from *incompatible* (a schema migration —
archive or regenerate) without string-matching messages, and no bare
``IndexError``/``KeyError``/``json.JSONDecodeError`` ever escapes a
load path.

:class:`ArtifactError` subclasses :class:`ValueError` deliberately:
pre-store call sites (and tests) that caught ``ValueError`` on corrupt
input keep working, while new code can catch the precise class.
"""

from __future__ import annotations

from typing import Optional


class ArtifactError(ValueError):
    """Base class: a persistent artifact cannot be read.

    Carries enough location detail to report *where* the damage is:
    ``path`` always, ``line`` (1-based) for line-oriented formats,
    ``offset`` (bytes) for framed formats.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str,
        kind: Optional[str] = None,
        line: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> None:
        self.path = path
        self.kind = kind
        self.line = line
        self.offset = offset
        where = path
        if line is not None:
            where += f":{line}"
        elif offset is not None:
            where += f" @byte {offset}"
        super().__init__(f"{where}: {message}")


class TruncatedArtifact(ArtifactError):
    """The file ends before its own framing says it should: a missing
    trailer sentinel, fewer payload bytes than the declared length,
    fewer trace lines than the declared op counts, an empty file."""


class DigestMismatch(ArtifactError):
    """The stored SHA-256 digest does not match the bytes on disk —
    silent corruption (bit rot, torn write, manual edit)."""

    def __init__(
        self,
        message: str,
        *,
        path: str,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
        **kw,
    ) -> None:
        self.expected = expected
        self.actual = actual
        if expected and actual:
            message += f" (stored {expected[:16]}…, computed {actual[:16]}…)"
        super().__init__(message, path=path, **kw)


class SchemaMismatch(ArtifactError):
    """The artifact is intact but written by an incompatible schema (or
    is a different artifact kind entirely).  Not corruption: the right
    response is archive/regenerate, never quarantine."""

    def __init__(
        self,
        message: str,
        *,
        path: str,
        found=None,
        expected=None,
        **kw,
    ) -> None:
        self.found = found
        self.expected = expected
        super().__init__(message, path=path, **kw)


class MalformedRecord(ArtifactError):
    """One record inside the artifact does not parse: a trace op line
    with the wrong field count, an unframed journal line, JSON that does
    not decode.  ``line``/``offset`` point at the record."""
