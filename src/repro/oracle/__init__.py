"""Golden-model differential oracle and config×trace fuzzing.

The machine's inline dataflow assertions and the structural auditor
(:mod:`repro.audit`) each cover part of the correctness surface of
aggressive register reclamation; this package covers the rest — *value
correctness at commit*:

* :class:`GoldenModel` — a small in-order ISA-level functional model
  (no timing) that executes the same trace the out-of-order machine
  runs, maintaining the committed architectural register state;
* :class:`CommitOracle` — hooked into :class:`~repro.core.machine.Machine`
  commit, it compares every retired instruction's destination value,
  branch outcome, and memory effect against the golden model, plus a
  periodic full architectural-state sweep.  Any divergence raises a
  structured :class:`OracleDivergence` (trace index, logical/physical
  register, expected vs. actual value, scheme, in-flight window) — the
  value-level analogue of :class:`~repro.audit.AuditError`;
* :mod:`repro.oracle.fuzz` — a seeded property-based harness that
  samples random machine configurations (scheme × width × PRF size ×
  WAR policy × inline-bit threshold) and workload profiles, runs them
  under oracle + auditor, and shrinks any divergence to a minimal
  on-disk reproducer spec.

Enable via ``MachineConfig.with_oracle()`` or ``--oracle`` on either CLI.
"""

from repro.oracle.golden import CommitOracle, GoldenModel, OracleDivergence
from repro.oracle.fuzz import (
    FuzzFinding,
    FuzzReport,
    FuzzSpec,
    fuzz,
    replay_spec,
    run_spec,
    sample_spec,
    shrink_spec,
)

__all__ = [
    "CommitOracle",
    "GoldenModel",
    "OracleDivergence",
    "FuzzFinding",
    "FuzzReport",
    "FuzzSpec",
    "fuzz",
    "replay_spec",
    "run_spec",
    "sample_spec",
    "shrink_spec",
]
