"""Seeded config×trace fuzzing under the golden-model oracle.

Every fuzz case is a :class:`FuzzSpec`: an explicit, JSON-serializable
bag of knobs — benchmark profile and trace seed, machine width, PRF
size, reclamation scheme (PRI on/off, WAR policy, checkpoint policy,
early release, virtual-physical), PRI inline-bit threshold — plus an
optional *seeded fault* from the PR-1 injection registry
(:data:`repro.audit.inject.FAULTS`).  :func:`sample_spec` derives a spec
deterministically from an integer seed, so a fuzz campaign is fully
described by its seed list.

Semantics of one case (:func:`run_spec`):

* **no seeded fault** — the machine is presumed healthy, so *any*
  :class:`~repro.core.machine.SimulationError` (an
  :class:`~repro.oracle.OracleDivergence`, an
  :class:`~repro.audit.AuditError`, a deadlock) is a real finding;
* **seeded fault** — the corruption is applied mid-run and must be
  *caught* by the oracle or the auditor; a run that finishes cleanly
  with the fault applied is an escape, also a finding.

Findings are shrunk (:func:`shrink_spec` — drop warmup, halve the trace)
and written to disk as reproducer specs; :func:`replay_spec` re-runs a
reproducer and verifies the recorded failure comes back identically.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import random
import sys
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.config import (
    CheckpointPolicy,
    MachineConfig,
    WarPolicy,
    eight_wide,
    four_wide,
)
from repro.core.machine import Machine, SimulationError
from repro.workloads import ALL_BENCHMARKS, generate_trace

#: Schema version of on-disk reproducer specs.
REPRODUCER_VERSION = 1

_PRF_CHOICES = (40, 48, 56, 64, 80, 96)
_WIDTH_BITS_CHOICES = (4, 7, 10, 12)


class ReplayMismatch(AssertionError):
    """A reproducer spec no longer reproduces its recorded failure."""


@dataclass(frozen=True)
class FuzzSpec:
    """One fuzz case: machine knobs × workload knobs × optional fault."""

    seed: int = 0
    # -- workload
    benchmark: str = "gzip"
    length: int = 3000
    warmup: int = 2000
    trace_seed: int = 1
    # -- machine shape
    width: int = 4
    int_phys_regs: int = 64
    fp_phys_regs: int = 64
    # -- reclamation scheme
    pri: bool = True
    war_policy: str = "refcount"
    checkpoint_policy: str = "ckptcount"
    int_width_bits: int = 7
    early_release: bool = False
    virtual_physical: bool = False
    # -- checkers
    oracle_interval: int = 256
    audit: bool = True
    audit_interval: int = 256
    # -- optional seeded corruption (name from audit.inject.FAULTS)
    fault: Optional[str] = None
    fault_cycle: int = 60
    # -- watchdog
    max_cycles: int = 500_000

    def config(self) -> MachineConfig:
        """Materialize the machine configuration this spec describes."""
        base = four_wide() if self.width == 4 else eight_wide()
        cfg = dataclasses.replace(
            base,
            int_phys_regs=self.int_phys_regs,
            fp_phys_regs=self.fp_phys_regs,
            early_release=self.early_release,
            virtual_physical=self.virtual_physical,
        )
        if self.pri:
            cfg = cfg.with_pri(
                WarPolicy(self.war_policy),
                CheckpointPolicy(self.checkpoint_policy),
                int_width_bits=self.int_width_bits,
            )
        if self.fault:
            # Seeded corruption must be caught, not merely survive until
            # the end of the run: audit at every cycle and commit (the
            # same regime PR 1's run_with_fault uses) and sweep the
            # architectural state frequently.
            cfg = cfg.with_oracle(interval=min(self.oracle_interval, 64))
            if self.audit:
                cfg = cfg.with_audit(interval=1, check_commits=True)
        else:
            cfg = cfg.with_oracle(interval=self.oracle_interval)
            if self.audit:
                cfg = cfg.with_audit(interval=self.audit_interval)
        return cfg

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FuzzSpec":
        return cls(**data)


def sample_spec(
    seed: int,
    *,
    benchmarks: Optional[Sequence[str]] = None,
    fault_rate: float = 0.0,
) -> FuzzSpec:
    """Derive one :class:`FuzzSpec` deterministically from ``seed``.

    ``fault_rate`` is the probability of seeding a corruption from the
    injection registry (exercising the *catch* path rather than the
    healthy path).  Incompatible knob combinations are repaired, not
    rejected: virtual-physical allocation drops early release (the
    machine refuses that composition).
    """
    rng = random.Random(seed)
    names = list(benchmarks) if benchmarks else [p.name for p in ALL_BENCHMARKS]
    pri = rng.random() < 0.7
    virtual_physical = rng.random() < 0.2
    early_release = rng.random() < 0.3 and not virtual_physical
    fault = None
    fault_cycle = 60
    if rng.random() < fault_rate:
        from repro.audit.inject import FAULTS  # lazy: keeps import light

        fault = rng.choice(sorted(FAULTS))
        fault_cycle = rng.randrange(20, 400)
    length = rng.choice((1500, 3000, 6000))
    if fault:
        length = min(length, 3000)  # every-cycle auditing is expensive
    return FuzzSpec(
        seed=seed,
        benchmark=rng.choice(names),
        length=length,
        warmup=rng.choice((0, 2000, 8000)),
        trace_seed=rng.randrange(1, 1 << 16),
        width=rng.choice((4, 8)),
        int_phys_regs=rng.choice(_PRF_CHOICES),
        fp_phys_regs=rng.choice(_PRF_CHOICES),
        pri=pri,
        war_policy=rng.choice(("refcount", "ideal", "replay")),
        checkpoint_policy=rng.choice(("ckptcount", "lazy")),
        int_width_bits=rng.choice(_WIDTH_BITS_CHOICES),
        early_release=early_release,
        virtual_physical=virtual_physical,
        oracle_interval=rng.choice((64, 256, 512)),
        audit=True,
        audit_interval=rng.choice((256, 1024)),
        fault=fault,
        fault_cycle=fault_cycle,
    )


# ================================================================== run


def run_spec(spec: FuzzSpec) -> Dict:
    """Execute one fuzz case and classify the outcome.

    Returns a dict with ``outcome`` one of:

    * ``"clean"`` — no fault seeded, run finished, no checker fired;
    * ``"caught"`` — the seeded fault was converted into a structured
      failure (the desired behavior); ``error_type``/``diagnostic``
      describe it;
    * ``"not-applicable"`` — the seeded fault never found machine state
      to corrupt (e.g. a refcount fault on a non-counting scheme);
    * ``"timeout"`` — the cycle watchdog expired before the trace
      committed (not treated as a finding);
    * ``"finding"`` — a real problem: a checker fired with no fault
      seeded, or a seeded fault escaped both checkers.
    """
    trace = generate_trace(
        spec.benchmark, spec.length, seed=spec.trace_seed, warmup=spec.warmup
    )
    machine = Machine(spec.config())
    applied: List = []
    if spec.fault:
        from repro.audit.inject import FAULTS

        fault = FAULTS[spec.fault]

        def hook(m: Machine) -> None:
            if not applied and m.now >= spec.fault_cycle:
                detail = fault.apply(m)
                if detail is not None:
                    applied.append([m.now, detail])

        machine.add_cycle_hook(hook)
    try:
        stats = machine.run(trace, max_cycles=spec.max_cycles)
    except SimulationError as err:
        record = {
            "error_type": type(err).__name__,
            "message": str(err),
            "diagnostic": getattr(err, "diagnostic", None),
            "fault_applied": applied[0] if applied else None,
        }
        if spec.fault and applied:
            record["outcome"] = "caught"
        else:
            # No fault was seeded (or it never applied), yet a checker
            # fired: the machine itself diverged.
            record["outcome"] = "finding"
            record["kind"] = "divergence"
        return record
    if spec.fault:
        if not applied:
            return {"outcome": "not-applicable"}
        return {
            "outcome": "finding",
            "kind": "fault-escaped",
            "error_type": "FaultEscaped",
            "message": (
                f"seeded fault {spec.fault!r} ({applied[0][1]}, cycle "
                f"{applied[0][0]}) escaped oracle and auditor: run "
                f"finished cleanly at cycle {machine.now}"
            ),
            "diagnostic": None,
            "fault_applied": applied[0],
        }
    if stats.committed < min(spec.length, len(trace)):
        return {
            "outcome": "timeout",
            "message": (
                f"committed {stats.committed}/{len(trace)} in "
                f"{spec.max_cycles} cycles"
            ),
        }
    return {"outcome": "clean"}


# ================================================================ shrink


def shrink_spec(spec: FuzzSpec, result: Optional[Dict] = None) -> FuzzSpec:
    """Greedily minimize a failing spec while preserving its failure.

    The failure signature is the recorded ``error_type`` (plus the
    divergence/audit ``kind``/``check`` when present): a shrunk candidate
    counts only if it fails the same way.  Tries, in order: dropping the
    warmup prefix, halving the trace, and halving the fault onset cycle.
    """
    result = result or run_spec(spec)
    if result["outcome"] not in ("finding", "caught"):
        return spec
    signature = _signature(result)

    def still_fails(candidate: FuzzSpec) -> bool:
        r = run_spec(candidate)
        return (
            r["outcome"] == result["outcome"] and _signature(r) == signature
        )

    current = spec
    if current.warmup:
        candidate = replace(current, warmup=0)
        if still_fails(candidate):
            current = candidate
    while current.length > 128:
        candidate = replace(current, length=current.length // 2)
        if not still_fails(candidate):
            break
        current = candidate
    while current.fault and current.fault_cycle > 20:
        candidate = replace(current, fault_cycle=current.fault_cycle // 2)
        if not still_fails(candidate):
            break
        current = candidate
    return current


def _signature(result: Dict) -> tuple:
    diagnostic = result.get("diagnostic") or {}
    return (
        result.get("error_type"),
        diagnostic.get("kind") or diagnostic.get("check"),
    )


# =========================================================== reproducers


#: Artifact kind tag of reproducer specs in the store envelope.
REPRODUCER_KIND = "fuzz-reproducer"


def write_reproducer(spec: FuzzSpec, result: Dict, path: str) -> str:
    """Atomically write a self-contained reproducer spec to ``path``
    inside the store's checksummed envelope (:mod:`repro.store`) — a
    reproducer that survives a crash half-written is worse than none,
    since it would replay a different failure than it records."""
    from repro.store import write_json_artifact  # lazy: keeps import light

    payload = {
        "version": REPRODUCER_VERSION,
        "spec": spec.to_dict(),
        "result": result,
    }
    write_json_artifact(path, REPRODUCER_KIND, REPRODUCER_VERSION, payload)
    return path


def load_reproducer(path: str) -> Dict:
    """Read a reproducer spec (enveloped, or legacy plain JSON).
    Corruption raises a typed
    :class:`~repro.store.errors.ArtifactError`; a reproducer from a
    different schema version raises :class:`ValueError`."""
    from repro.store import read_json_artifact  # lazy: keeps import light

    payload, _meta = read_json_artifact(path, REPRODUCER_KIND)
    version = payload.get("version") if isinstance(payload, dict) else None
    if version != REPRODUCER_VERSION:
        raise ValueError(
            f"reproducer {path!r} has version {version!r}, "
            f"this build reads version {REPRODUCER_VERSION}"
        )
    return payload


def replay_spec(path: str, strict: bool = True) -> Dict:
    """Re-run a reproducer spec; return the fresh result.

    With ``strict`` (the default), a fresh result whose outcome or
    failure signature differs from the recorded one raises
    :class:`ReplayMismatch` — either the bug was fixed (rerecord or
    delete the reproducer) or determinism broke (much worse).
    """
    payload = load_reproducer(path)
    spec = FuzzSpec.from_dict(payload["spec"])
    recorded = payload["result"]
    fresh = run_spec(spec)
    if strict and (
        fresh["outcome"] != recorded["outcome"]
        or _signature(fresh) != _signature(recorded)
    ):
        raise ReplayMismatch(
            f"reproducer {path!r}: recorded "
            f"{recorded['outcome']}/{_signature(recorded)} but replay "
            f"produced {fresh['outcome']}/{_signature(fresh)}"
        )
    return fresh


# ============================================================== campaign


@dataclass
class FuzzFinding:
    """One confirmed finding, with its (shrunk) reproducer."""

    spec: FuzzSpec
    result: Dict
    reproducer_path: Optional[str] = None

    def __str__(self) -> str:
        kind = self.result.get("kind", "divergence")
        return (
            f"seed {self.spec.seed} [{kind}] "
            f"{self.result.get('error_type')}: "
            f"{self.result.get('message', '')[:160]}"
        )


@dataclass
class FuzzReport:
    """Summary of one fuzz campaign."""

    seeds: List[int] = field(default_factory=list)
    clean: int = 0
    caught: int = 0
    not_applicable: int = 0
    timeouts: int = 0
    findings: List[FuzzFinding] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def cases(self) -> int:
        return len(self.seeds)

    def summary(self) -> str:
        return (
            f"{self.cases} cases in {self.elapsed:.1f}s: "
            f"{self.clean} clean, {self.caught} faults caught, "
            f"{self.not_applicable} fault-n/a, {self.timeouts} timeouts, "
            f"{len(self.findings)} findings"
        )


def fuzz(
    seeds: Sequence[int],
    *,
    benchmarks: Optional[Sequence[str]] = None,
    fault_rate: float = 0.0,
    out_dir: Optional[str] = None,
    time_budget: Optional[float] = None,
    shrink: bool = True,
    log=None,
) -> FuzzReport:
    """Run a fuzz campaign over ``seeds``.

    Findings are shrunk and, when ``out_dir`` is given, written there as
    ``repro-seed<N>-<kind>.json`` reproducer specs.  ``time_budget``
    (seconds) stops the campaign early — already-started cases finish —
    which is how the CI job bounds itself.
    """
    report = FuzzReport()
    started = time.monotonic()
    for seed in seeds:
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        spec = sample_spec(seed, benchmarks=benchmarks, fault_rate=fault_rate)
        result = run_spec(spec)
        report.seeds.append(seed)
        outcome = result["outcome"]
        if log:
            log(f"seed {seed}: {outcome} ({spec.benchmark} w{spec.width} "
                f"prf={spec.int_phys_regs} fault={spec.fault})")
        if outcome == "clean":
            report.clean += 1
        elif outcome == "caught":
            report.caught += 1
        elif outcome == "not-applicable":
            report.not_applicable += 1
        elif outcome == "timeout":
            report.timeouts += 1
        else:
            if shrink:
                spec = shrink_spec(spec, result)
                result = run_spec(spec)
            finding = FuzzFinding(spec=spec, result=result)
            if out_dir:
                kind = result.get("kind", "divergence")
                finding.reproducer_path = write_reproducer(
                    spec, result, os.path.join(out_dir, f"repro-seed{seed}-{kind}.json")
                )
            report.findings.append(finding)
    report.elapsed = time.monotonic() - started
    return report


# =================================================================== CLI


def _parse_seeds(text: str) -> List[int]:
    """``"0-19"`` or ``"1,5,9"`` or a single integer."""
    seeds: List[int] = []
    for part in text.split(","):
        part = part.strip()
        if "-" in part[1:]:
            lo, hi = part.split("-", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.oracle.fuzz",
        description="Config×trace fuzzing under the golden-model oracle.",
    )
    parser.add_argument(
        "--seeds", default="0-9",
        help="seed list: '0-19', '1,5,9', or a single integer (default 0-9)",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="probability of seeding an injected fault per case (default 0)",
    )
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated benchmark profiles (default: all)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for shrunk reproducer specs (written on findings)",
    )
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; stop starting new cases past it",
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="record findings without minimizing them first",
    )
    parser.add_argument(
        "--replay", default=None, metavar="SPEC.json",
        help="re-run a recorded reproducer spec and verify it still fails",
    )
    args = parser.parse_args(argv)

    if args.replay:
        try:
            result = replay_spec(args.replay)
        except ReplayMismatch as err:
            print(f"MISMATCH: {err}")
            return 1
        print(f"reproduced: {result['outcome']} "
              f"{result.get('error_type', '')} {result.get('message', '')[:200]}")
        return 0

    benchmarks = args.benchmarks.split(",") if args.benchmarks else None
    report = fuzz(
        _parse_seeds(args.seeds),
        benchmarks=benchmarks,
        fault_rate=args.fault_rate,
        out_dir=args.out,
        time_budget=args.budget,
        shrink=not args.no_shrink,
        log=lambda line: print(line, flush=True),
    )
    print(report.summary())
    for finding in report.findings:
        print(f"FINDING: {finding}")
        if finding.reproducer_path:
            print(f"  reproducer: {finding.reproducer_path}")
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())
