"""In-order golden functional model and the commit-time differential
oracle.

The golden model is deliberately trivial: it has no pipeline, no renaming
and no reclamation — just the 32+32 architected registers, executed in
trace order.  Because every reclamation scheme in this reproduction must
preserve *exactly* the committed architectural values, any bookkeeping
bug that corrupts a value (the paper's Figure 6 WAR violation is the
canonical case) shows up as a mismatch between the out-of-order machine's
physical state and the golden model's architectural state.

The oracle observes the machine at three points:

* **per commit** — the retiring instruction's trace index must match the
  golden model's program counter (commit order is architecturally
  in-order), its source operands must match the golden register values,
  its destination's physical register (or virtual tag) must hold the
  golden result when still observable, and a committing store's address
  must match the golden memory effect;
* **periodically** (``OracleConfig.interval``) — every logical register
  with *no in-flight writer* is read through the machine's rename map
  (pointer → physical register value, immediate → inlined value) and
  compared against the golden architectural state.  This is what catches
  a corrupted map entry or a WAR-clobbered register that no later
  instruction happens to read;
* **value-fault routing** — the machine's inline dataflow checks (stale
  generation at select/read, delivered-value mismatch) raise through
  :meth:`CommitOracle.divergence` when an oracle is attached, so every
  value-level failure carries the same structured diagnostic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.audit.auditor import scheme_label
from repro.core.machine import SimulationError, _VID_FLAG
from repro.core.regfile import RegState
from repro.isa.opcodes import RegClass
from repro.isa.registers import FP_ZERO_REG, INT_ZERO_REG
from repro.workloads.trace import Trace

_CLASS_NAMES = {RegClass.INT: "int", RegClass.FP: "fp"}


class OracleDivergence(SimulationError):
    """The machine's committed state diverged from the golden model.

    ``diagnostic`` holds the structured fields — mirror-image of
    :class:`repro.audit.AuditError` — so harnesses (and the fuzz
    shrinker) can classify divergences without parsing messages.
    """

    def __init__(
        self,
        kind: str,
        reason: str,
        *,
        cycle: int,
        scheme: str,
        trace_index: Optional[int] = None,
        seq: Optional[int] = None,
        reg_class: Optional[str] = None,
        lreg: Optional[int] = None,
        preg: Optional[int] = None,
        expected: Optional[int] = None,
        actual: Optional[int] = None,
        inflight: Optional[tuple] = None,
        details: Optional[Dict] = None,
    ) -> None:
        self.diagnostic = {
            "kind": kind,
            "reason": reason,
            "cycle": cycle,
            "scheme": scheme,
            "trace_index": trace_index,
            "seq": seq,
            "reg_class": reg_class,
            "lreg": lreg,
            "preg": preg,
            "expected": expected,
            "actual": actual,
            "inflight": inflight,
            "details": details or {},
        }
        where = f"cycle {cycle}, scheme {scheme}"
        if trace_index is not None:
            where += f", trace[{trace_index}]"
        if seq is not None:
            where += f" #{seq}"
        if reg_class is not None and lreg is not None:
            where += f", {reg_class} r{lreg}"
        if preg is not None:
            where += f" -> p{preg}"
        if expected is not None:
            actual_str = f"{actual:#x}" if actual is not None else "?"
            where += f", expected {expected:#x} actual {actual_str}"
        if inflight is not None:
            oldest, youngest, count = inflight
            where += f", inflight #{oldest}..#{youngest} ({count} ops)"
        super().__init__(f"oracle[{kind}] {reason} ({where})")


class GoldenModel:
    """Committed architectural state, maintained in trace order.

    ``index`` is the golden program counter: the number of instructions
    architecturally executed so far.  Reads of the hard-wired zero
    register return 0 regardless of writes, matching the renamer.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.index = 0
        self.int_regs: List[int] = list(trace.initial_int)
        self.fp_regs: List[int] = list(trace.initial_fp)
        #: Sparse committed memory image: address -> last store's data
        #: operand (the machine's caches are timing-only, so this is the
        #: oracle's record of the in-order store stream).
        self.memory: Dict[int, int] = {}
        self.stores = 0

    def read(self, reg_class: RegClass, lreg: int) -> int:
        if reg_class == RegClass.INT:
            return 0 if lreg == INT_ZERO_REG else self.int_regs[lreg]
        return 0 if lreg == FP_ZERO_REG else self.fp_regs[lreg]

    def write(self, reg_class: RegClass, lreg: int, value: int) -> None:
        if reg_class == RegClass.INT:
            self.int_regs[lreg] = value
        else:
            self.fp_regs[lreg] = value

    def apply(self, op) -> None:
        """Architecturally execute ``op`` (which must be the next op)."""
        if op.dest is not None:
            self.write(op.dest_class, op.dest, op.result)
        if op.is_store:
            # A store's data operand is its last source (the trace
            # builder's convention); address-only stores record 0.
            data = op.sources[-1].expected_value if op.sources else 0
            self.memory[op.mem_addr] = data
            self.stores += 1
        self.index += 1

    def snapshot(self) -> Dict:
        """JSON-serializable state (machine checkpointing)."""
        return {
            "index": self.index,
            "int_regs": list(self.int_regs),
            "fp_regs": list(self.fp_regs),
            "memory": [[addr, value] for addr, value in self.memory.items()],
            "stores": self.stores,
        }

    def restore(self, data: Dict) -> None:
        self.index = data["index"]
        self.int_regs = list(data["int_regs"])
        self.fp_regs = list(data["fp_regs"])
        self.memory = {addr: value for addr, value in data["memory"]}
        self.stores = data["stores"]


class CommitOracle:
    """Differential checker attached to one machine run."""

    def __init__(self, config, trace: Trace) -> None:
        self.cfg = config
        self.golden = GoldenModel(trace)

    # ---------------------------------------------------------- failures

    def divergence(
        self, machine, kind: str, reason: str, **fields
    ) -> OracleDivergence:
        """Build (not raise) a divergence with full machine context."""
        return OracleDivergence(
            kind,
            reason,
            cycle=machine.now,
            scheme=scheme_label(machine.cfg),
            inflight=machine.inflight_window(),
            **fields,
        )

    def _fail(self, machine, kind, reason, **fields):
        raise self.divergence(machine, kind, reason, **fields)

    # ------------------------------------------------------------ commit

    def on_commit(self, machine, instr) -> None:
        """Differential check for one retiring instruction."""
        golden = self.golden
        machine.stats.oracle_commits += 1
        op = instr.op
        if instr.trace_idx != golden.index or op is not golden.trace[instr.trace_idx]:
            self._fail(
                machine,
                "commit-order",
                f"machine committed trace[{instr.trace_idx}] but the golden "
                f"model expects trace[{golden.index}] — the commit stream "
                f"left architectural program order",
                trace_index=instr.trace_idx,
                seq=instr.seq,
                details={"golden_index": golden.index},
            )
        for src in op.sources:
            expected = golden.read(src.reg_class, src.index)
            if src.expected_value != expected:
                self._fail(
                    machine,
                    "src-value",
                    f"committed source {src!r} disagrees with the golden "
                    f"architectural value — trace dataflow and in-order "
                    f"execution have diverged",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    reg_class=_CLASS_NAMES[src.reg_class],
                    lreg=src.index,
                    expected=expected,
                    actual=src.expected_value,
                )
        if op.dest is not None:
            actual = self._observe_dest(machine, instr)
            if actual is None:
                machine.stats.oracle_unobserved += 1
            else:
                machine.stats.oracle_dest_checks += 1
                if actual != op.result:
                    self._fail(
                        machine,
                        "dest-value",
                        f"destination of committed #{instr.seq} holds the "
                        f"wrong value — a younger writer's register reuse "
                        f"or a corrupted write clobbered it",
                        trace_index=instr.trace_idx,
                        seq=instr.seq,
                        reg_class=_CLASS_NAMES[op.dest_class],
                        lreg=op.dest,
                        preg=instr.dest_preg if instr.dest_preg >= 0 else None,
                        expected=op.result,
                        actual=actual,
                    )
        if op.is_branch:
            pred = instr.prediction
            if pred is None:
                self._fail(
                    machine,
                    "branch-outcome",
                    f"branch #{instr.seq} committed without ever being "
                    f"predicted/resolved",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                )
            # Recompute the misprediction verdict from the trace's actual
            # outcome; a disagreement means the machine resolved the branch
            # against the wrong architectural direction or target.
            wrong = pred.pred_taken != op.taken or (
                op.taken and pred.pred_target != op.target
            )
            if pred.mispredicted != wrong:
                self._fail(
                    machine,
                    "branch-outcome",
                    f"branch #{instr.seq} predicted "
                    f"{'taken' if pred.pred_taken else 'not-taken'}"
                    f"->{pred.pred_target:#x} was resolved "
                    f"{'mispredicted' if pred.mispredicted else 'correct'}, "
                    f"but the trace outcome "
                    f"({'taken' if op.taken else 'not-taken'}"
                    f"->{op.target:#x}) says "
                    f"{'mispredicted' if wrong else 'correct'}",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    details={
                        "pred_taken": pred.pred_taken,
                        "pred_target": pred.pred_target,
                        "actual_taken": op.taken,
                        "actual_target": op.target,
                    },
                )
        golden.apply(op)

    def on_store_commit(self, machine, instr, addr: int) -> None:
        """The machine performed a committing store's memory access."""
        if addr != instr.op.mem_addr:
            self._fail(
                machine,
                "mem-addr",
                f"store #{instr.seq} wrote address {addr:#x} but the trace "
                f"orders a store to {instr.op.mem_addr:#x}",
                trace_index=instr.trace_idx,
                seq=instr.seq,
                expected=instr.op.mem_addr,
                actual=addr,
            )

    def _observe_dest(self, machine, instr) -> Optional[int]:
        """The machine's view of a just-committed destination, or None
        when the value is no longer observable (already inlined-and-freed
        by PRI, or reclaimed) — the periodic architectural sweep covers
        those through the map."""
        cls = instr.op.dest_class
        if instr.dest_vid >= 0:
            v = machine._vregs.get(instr.dest_vid - _VID_FLAG)
            if v is not None and v.written:
                return v.value
            return None
        preg = instr.dest_preg
        if preg < 0:
            return None
        rf = machine.rf[cls]
        if rf.state[preg] == RegState.FREE or rf.gen[preg] != instr.dest_gen:
            return None
        return rf.value[preg]

    # ----------------------------------------------- architectural sweep

    def maybe_check(self, machine) -> None:
        interval = self.cfg.interval
        if interval > 0 and machine.now % interval == 0:
            self.check_arch(machine)

    def check_arch(self, machine, final: bool = False) -> None:
        """Compare every logical register with no in-flight writer
        against the golden model, reading through the rename map exactly
        as a consumer would."""
        machine.stats.oracle_arch_checks += 1
        golden = self.golden
        if final and golden.index != machine.stats.committed:
            self._fail(
                machine,
                "commit-order",
                f"machine committed {machine.stats.committed} instructions "
                f"but the golden model executed {golden.index}",
                details={"golden_index": golden.index},
            )
        inflight_writers = set()
        for entry in machine.rob:
            if entry.op.dest is not None:
                inflight_writers.add((entry.op.dest_class, entry.op.dest))
        for cls in (RegClass.INT, RegClass.FP):
            zero = INT_ZERO_REG if cls == RegClass.INT else FP_ZERO_REG
            table = machine.maps[cls]
            rf = machine.rf[cls]
            for lreg in range(table.num_logical):
                if lreg == zero or (cls, lreg) in inflight_writers:
                    continue
                entry = table.lookup(lreg)
                expected = golden.read(cls, lreg)
                if entry.is_immediate:
                    actual = entry.value
                    preg = None
                else:
                    preg = entry.value
                    if preg < 0:
                        continue
                    if preg >= _VID_FLAG:
                        v = machine._vregs.get(preg - _VID_FLAG)
                        if v is None or not v.written:
                            continue
                        actual = v.value
                        preg = None
                    elif preg >= rf.num_regs or rf.state[preg] == RegState.FREE:
                        self._fail(
                            machine,
                            "arch-map",
                            f"architectural r{lreg} (no in-flight writer) "
                            f"maps to "
                            f"{'out-of-range' if preg >= rf.num_regs else 'free'} "
                            f"register p{preg}",
                            trace_index=max(0, golden.index - 1),
                            reg_class=_CLASS_NAMES[cls],
                            lreg=lreg,
                            preg=preg if preg < rf.num_regs else None,
                            expected=expected,
                        )
                        continue
                    else:
                        actual = rf.value[preg]
                if actual != expected:
                    self._fail(
                        machine,
                        "arch-value",
                        f"architectural r{lreg} (no in-flight writer) reads "
                        f"{actual:#x} through the map but the golden model "
                        f"has {expected:#x}",
                        trace_index=max(0, golden.index - 1),
                        reg_class=_CLASS_NAMES[cls],
                        lreg=lreg,
                        preg=preg,
                        expected=expected,
                        actual=actual,
                    )
