"""The full memory hierarchy: split L1s over a unified L2 over memory."""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.memory.cache import Cache


class MemoryHierarchy:
    """IL1 + DL1 sharing a unified L2, backed by fixed-latency memory.

    * :meth:`fetch_latency` — instruction fetch of a PC.
    * :meth:`load_latency` — data read (latency to use).
    * :meth:`store_access` — data write at commit (write-allocate; latency
      returned but stores do not stall commit in the model).
    """

    def __init__(self, config: MemoryConfig = None) -> None:
        config = config or MemoryConfig()
        self.config = config
        self.l2 = Cache("L2", config.l2, next_level=None,
                        memory_latency=config.memory_latency)
        self.il1 = Cache("IL1", config.il1, next_level=self.l2)
        self.dl1 = Cache("DL1", config.dl1, next_level=self.l2)

    def fetch_latency(self, pc: int) -> int:
        return self.il1.access_latency(pc)

    def load_latency(self, addr: int) -> int:
        return self.dl1.access_latency(addr)

    def store_access(self, addr: int) -> int:
        return self.dl1.access_latency(addr)

    @property
    def dl1_hit_latency(self) -> int:
        """The latency speculative scheduling assumes for every load."""
        return self.config.dl1.latency

    def flush(self) -> None:
        self.il1.flush()
        self.dl1.flush()
        self.l2.flush()
