"""Set-associative cache model with LRU replacement.

Timing-only: caches track presence of lines, not data (trace micro-ops
carry their own values).  ``access`` returns whether the line hit and the
latency contributed by this level; the hierarchy composes levels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig


@dataclass
class AccessResult:
    """Result of one access at one cache level."""

    hit: bool
    latency: int  # total cycles from this level down (includes misses below)


class Cache:
    """One level of set-associative cache, LRU, write-allocate.

    ``next_level`` is another :class:`Cache` or ``None`` (then
    ``memory_latency`` applies on miss).
    """

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        next_level: "Cache" = None,
        memory_latency: int = 150,
    ) -> None:
        num_lines = config.size // config.line
        if num_lines % config.assoc:
            raise ValueError(f"{name}: lines not divisible by associativity")
        self.name = name
        self.config = config
        self.num_sets = num_lines // config.assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: set count must be a power of two")
        self.assoc = config.assoc
        self.line_shift = config.line.bit_length() - 1
        if (1 << self.line_shift) != config.line:
            raise ValueError(f"{name}: line size must be a power of two")
        self.next_level = next_level
        self.memory_latency = memory_latency
        # Precomputed indexing constants: access_latency runs once per
        # fetched instruction and per load/store, so the set mask and tag
        # shift must not be re-derived per access.
        self._set_mask = self.num_sets - 1
        self._tag_shift = self.num_sets.bit_length() - 1
        self._hit_latency = config.latency
        # sets[i] is an ordered list of tags; index 0 is MRU.
        self._sets = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        """Check presence without updating LRU or statistics."""
        line = addr >> self.line_shift
        tag = line >> self._tag_shift
        entries = self._sets[line & self._set_mask]
        return tag in entries

    def access_latency(self, addr: int) -> int:
        """Access a line; allocate on miss; return the composed latency.

        The hot-path form of :meth:`access` — no result object."""
        line = addr >> self.line_shift
        tag = line >> self._tag_shift
        entries = self._sets[line & self._set_mask]
        if tag in entries:
            if entries[0] != tag:
                entries.remove(tag)
                entries.insert(0, tag)
            self.hits += 1
            return self._hit_latency
        self.misses += 1
        nxt = self.next_level
        if nxt is not None:
            latency = self._hit_latency + nxt.access_latency(addr)
        else:
            latency = self._hit_latency + self.memory_latency
        entries.insert(0, tag)
        if len(entries) > self.assoc:
            entries.pop()
        return latency

    def access(self, addr: int) -> AccessResult:
        """Access a line; allocate on miss; return composed latency."""
        misses_before = self.misses
        latency = self.access_latency(addr)
        return AccessResult(hit=self.misses == misses_before, latency=latency)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def flush(self) -> None:
        """Empty the cache (used between experiment runs)."""
        self._sets = [[] for _ in range(self.num_sets)]
