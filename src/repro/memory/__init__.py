"""Memory hierarchy substrate (Table 1).

32KB 2-way 32B-line IL1 (2 cycles), 32KB 4-way 16B-line DL1 (2 cycles),
512KB 4-way 64B-line unified L2 (12 cycles), main memory (150 cycles).
Caches are set-associative with LRU replacement and write-allocate.
"""

from repro.memory.cache import Cache, AccessResult
from repro.memory.hierarchy import MemoryHierarchy

__all__ = ["Cache", "AccessResult", "MemoryHierarchy"]
