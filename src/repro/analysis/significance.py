"""Operand significance analysis (the paper's Figure 2).

Figure 2 plots, per benchmark, the dynamic cumulative distribution of

* the number of two's-complement bits needed to represent each integer
  register operand (top graph);
* the number of significant exponent bits and significand bits of each
  floating-point register operand (bottom graphs), where a field that is
  all zeroes or all ones counts as zero significant bits.

We measure *dynamic register operands*: every source register value an
instruction reads plus every result it writes, matching the paper's
"dynamic cumulative distribution of the number of bits needed to
represent integer operands".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.isa.instruction import MicroOp
from repro.isa.opcodes import RegClass
from repro.isa.values import (
    fp_exponent_bits,
    fp_significand_bits,
    significant_bits,
)
from repro.workloads.trace import Trace


def _dynamic_operands(ops: Iterable[MicroOp], reg_class: RegClass) -> List[int]:
    """All dynamic register operand values of one class in a stream."""
    values: List[int] = []
    for op in ops:
        for src in op.sources:
            if src.reg_class == reg_class:
                values.append(src.expected_value)
        if op.dest is not None and op.dest_class == reg_class:
            values.append(op.result)
    return values


def _cdf(counts: Dict[int, int], max_bits: int) -> List[float]:
    """counts[bits] -> cumulative fraction list indexed by bit count."""
    total = sum(counts.values())
    cdf: List[float] = []
    acc = 0
    for bits in range(max_bits + 1):
        acc += counts.get(bits, 0)
        cdf.append(acc / total if total else 0.0)
    return cdf


def int_width_cdf(trace: Trace) -> List[float]:
    """CDF over [0..64] of integer operand two's-complement widths."""
    counts: Dict[int, int] = {}
    for value in _dynamic_operands(trace.ops, RegClass.INT):
        bits = significant_bits(value)
        counts[bits] = counts.get(bits, 0) + 1
    return _cdf(counts, 64)


def fp_exponent_cdf(trace: Trace) -> List[float]:
    """CDF over [0..11] of FP exponent significant bits (0 = all 0s/1s)."""
    counts: Dict[int, int] = {}
    for value in _dynamic_operands(trace.ops, RegClass.FP):
        bits = fp_exponent_bits(value)
        counts[bits] = counts.get(bits, 0) + 1
    return _cdf(counts, 11)


def fp_significand_cdf(trace: Trace) -> List[float]:
    """CDF over [0..52] of FP significand significant bits."""
    counts: Dict[int, int] = {}
    for value in _dynamic_operands(trace.ops, RegClass.FP):
        bits = fp_significand_bits(value)
        counts[bits] = counts.get(bits, 0) + 1
    return _cdf(counts, 52)


@dataclass
class SignificanceSummary:
    """Headline statistics the paper quotes from Figure 2."""

    name: str
    #: Fraction of integer operands representable in <= 10 bits.
    int_at_10_bits: float
    #: Fraction of integer operands representable in <= 7 bits.
    int_at_7_bits: float
    #: Fraction of FP exponents containing only zeroes or ones.
    fp_exp_zero_bits: float
    #: Fraction of FP significands containing only zeroes or ones.
    fp_sig_zero_bits: float

    def __str__(self) -> str:
        return (
            f"{self.name}: int<=7b {self.int_at_7_bits:.1%}, "
            f"int<=10b {self.int_at_10_bits:.1%}, "
            f"fp exp 0b {self.fp_exp_zero_bits:.1%}, "
            f"fp sig 0b {self.fp_sig_zero_bits:.1%}"
        )


def summarize_trace(trace: Trace) -> SignificanceSummary:
    """Compute the Figure 2 headline statistics for one trace."""
    int_cdf = int_width_cdf(trace)
    has_fp = any(
        src.reg_class == RegClass.FP for op in trace.ops for src in op.sources
    ) or any(op.dest is not None and op.dest_class == RegClass.FP for op in trace.ops)
    if has_fp:
        exp_cdf = fp_exponent_cdf(trace)
        sig_cdf = fp_significand_cdf(trace)
        exp0, sig0 = exp_cdf[0], sig_cdf[0]
    else:
        exp0 = sig0 = 0.0
    return SignificanceSummary(
        name=trace.name,
        int_at_10_bits=int_cdf[10],
        int_at_7_bits=int_cdf[7],
        fp_exp_zero_bits=exp0,
        fp_sig_zero_bits=sig0,
    )
