"""Trace and result analysis.

* :mod:`repro.analysis.significance` — operand-significance distributions
  (the paper's Figure 2).
* :mod:`repro.analysis.lifetime` — register-lifetime phase breakdowns
  (Figures 1 and 8) extracted from simulation statistics.
"""

from repro.analysis.significance import (
    int_width_cdf,
    fp_exponent_cdf,
    fp_significand_cdf,
    SignificanceSummary,
    summarize_trace,
)
from repro.analysis.lifetime import LifetimeBreakdown, breakdown_from_stats

__all__ = [
    "int_width_cdf",
    "fp_exponent_cdf",
    "fp_significand_cdf",
    "SignificanceSummary",
    "summarize_trace",
    "LifetimeBreakdown",
    "breakdown_from_stats",
]
