"""Register-lifetime phase analysis (Figures 1 and 8)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import SimStats


@dataclass
class LifetimeBreakdown:
    """Average physical register lifetime split into the paper's three
    phases: allocate→write, write→last-read, last-read→release."""

    label: str
    alloc_to_write: float
    write_to_last_read: float
    last_read_to_release: float

    @property
    def total(self) -> float:
        return self.alloc_to_write + self.write_to_last_read + self.last_read_to_release

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.total:.1f} cycles "
            f"(alloc->write {self.alloc_to_write:.1f}, "
            f"write->last-read {self.write_to_last_read:.1f}, "
            f"last-read->release {self.last_read_to_release:.1f})"
        )


def breakdown_from_stats(
    stats: SimStats, label: str, reg_class: str = "int"
) -> LifetimeBreakdown:
    """Extract one stacked bar of Figure 1/8 from a simulation run."""
    life = stats.lifetime(reg_class)
    return LifetimeBreakdown(
        label=label,
        alloc_to_write=life.avg_alloc_to_write,
        write_to_last_read=life.avg_write_to_last_read,
        last_read_to_release=life.avg_last_read_to_release,
    )
