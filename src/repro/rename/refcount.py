"""Per-physical-register reference counting.

Two kinds of references keep a PRI-freed (or ER-freed) register alive:

* *consumer* references — taken when an instruction renames a source to
  the register, dropped when that instruction actually reads it in the
  register-read stage (Sections 3.3-3.4);
* *checkpoint* references — taken when a shadow map naming the register
  is created, dropped when the checkpoint retires or is discarded
  (Section 3.2, the ``ckptcount`` policy, modelled on Akkary et al.).
"""

from __future__ import annotations

from typing import List


class RefCountTable:
    """Counts for one register class, indexed by physical register."""

    def __init__(self, num_physical: int) -> None:
        self.num_physical = num_physical
        self._consumer: List[int] = [0] * num_physical
        self._checkpoint: List[int] = [0] * num_physical
        self._er_checkpoint: List[int] = [0] * num_physical

    def extend(self, new_num_physical: int) -> None:
        """Grow to ``new_num_physical`` registers, new counts all zero
        (the vector backend's fork-at-exhaustion step)."""
        added = new_num_physical - self.num_physical
        if added < 0:
            raise ValueError("refcount table cannot shrink")
        self._consumer.extend([0] * added)
        self._checkpoint.extend([0] * added)
        self._er_checkpoint.extend([0] * added)
        self.num_physical = new_num_physical

    # --------------------------------------------------------- consumers

    def add_consumer(self, preg: int) -> None:
        self._consumer[preg] += 1

    def drop_consumer(self, preg: int) -> None:
        count = self._consumer[preg]
        if count <= 0:
            raise RuntimeError(f"consumer refcount underflow on p{preg}")
        self._consumer[preg] = count - 1

    def consumers(self, preg: int) -> int:
        return self._consumer[preg]

    # ------------------------------------------------------- checkpoints

    def add_checkpoint_ref(self, preg: int) -> None:
        self._checkpoint[preg] += 1

    def drop_checkpoint_ref(self, preg: int) -> None:
        count = self._checkpoint[preg]
        if count <= 0:
            raise RuntimeError(f"checkpoint refcount underflow on p{preg}")
        self._checkpoint[preg] = count - 1

    def checkpoint_refs(self, preg: int) -> int:
        return self._checkpoint[preg]

    # ---------------------------------- commit-scoped (ER) checkpoints

    def add_er_checkpoint_ref(self, preg: int) -> None:
        self._er_checkpoint[preg] += 1

    def drop_er_checkpoint_ref(self, preg: int) -> None:
        count = self._er_checkpoint[preg]
        if count <= 0:
            raise RuntimeError(f"ER checkpoint refcount underflow on p{preg}")
        self._er_checkpoint[preg] = count - 1

    def er_checkpoint_refs(self, preg: int) -> int:
        return self._er_checkpoint[preg]

    # -------------------------------------------------- bulk operations
    #
    # Checkpoint take/release touches every pinned pointer of a class at
    # once; these bulk forms keep that on the fast path (one call per
    # class instead of one per register).  The drop forms return the
    # registers whose count reached zero, which is exactly the set the
    # free policies can act on.

    def add_checkpoint_refs(self, pregs: List[int]) -> None:
        counts = self._checkpoint
        for preg in pregs:
            counts[preg] += 1

    def drop_checkpoint_refs(self, pregs: List[int]) -> List[int]:
        """Drop one checkpoint ref per entry; return registers now at zero."""
        counts = self._checkpoint
        zeroed = []
        for preg in pregs:
            count = counts[preg]
            if count <= 0:
                raise RuntimeError(f"checkpoint refcount underflow on p{preg}")
            count -= 1
            counts[preg] = count
            if count == 0:
                zeroed.append(preg)
        return zeroed

    def add_er_checkpoint_refs(self, pregs: List[int]) -> None:
        counts = self._er_checkpoint
        for preg in pregs:
            counts[preg] += 1

    def drop_er_checkpoint_refs(self, pregs: List[int]) -> List[int]:
        """Drop one ER checkpoint ref per entry; return registers now at zero."""
        counts = self._er_checkpoint
        zeroed = []
        for preg in pregs:
            count = counts[preg]
            if count <= 0:
                raise RuntimeError(f"ER checkpoint refcount underflow on p{preg}")
            count -= 1
            counts[preg] = count
            if count == 0:
                zeroed.append(preg)
        return zeroed

    # ----------------------------------------------------------- queries

    def counts(self, preg: int) -> tuple:
        """(consumer, checkpoint, er_checkpoint) for one register."""
        return (self._consumer[preg], self._checkpoint[preg], self._er_checkpoint[preg])

    def snapshot(self) -> tuple:
        """Copies of all three count arrays (for auditing)."""
        return (list(self._consumer), list(self._checkpoint), list(self._er_checkpoint))

    def pinned(self, preg: int, include_checkpoints: bool = True) -> bool:
        """True while references forbid freeing ``preg``."""
        if self._consumer[preg] > 0:
            return True
        return include_checkpoints and self._checkpoint[preg] > 0

    def assert_clean(self) -> None:
        """Debug invariant: no dangling references (end of simulation)."""
        for preg in range(self.num_physical):
            if (
                self._consumer[preg]
                or self._checkpoint[preg]
                or self._er_checkpoint[preg]
            ):
                raise AssertionError(
                    f"p{preg} leaked refs: consumers={self._consumer[preg]} "
                    f"checkpoints={self._checkpoint[preg]} "
                    f"er={self._er_checkpoint[preg]}"
                )
