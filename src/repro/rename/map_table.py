"""RAM rename map table with dual addressing modes (Figure 3 + Section 3).

A conventional RAM map entry holds a physical register number.  With
physical register inlining, each entry gains a mode bit: *pointer* mode
holds a physical register number, *immediate* mode holds a narrow value
directly.  The table is indexed by logical register number; shadow copies
(checkpoints) are handled by :mod:`repro.rename.checkpoints`.

Storage layout: the table keeps two parallel ``int`` lists (``modes``,
``values``) rather than a list of entry objects.  The cycle-level core
reads and checkpoints the map for every renamed instruction and branch,
so snapshots must be C-level list copies, not per-entry object
construction.  :class:`MapEntry` remains as the value type returned by
:meth:`RenameMapTable.lookup` for callers outside the hot path.
"""

from __future__ import annotations

import enum
from typing import List, Tuple

from repro.isa.values import fits_in_bits, is_all_zeros_or_ones


class EntryMode(enum.IntEnum):
    """Addressing mode of one map entry (the mode bit of Section 1)."""

    POINTER = 0
    IMMEDIATE = 1


#: Plain ints for the hot path (IntEnum comparison costs a method call).
MODE_POINTER = int(EntryMode.POINTER)
MODE_IMMEDIATE = int(EntryMode.IMMEDIATE)


class MapEntry:
    """One rename map entry: (mode, payload).

    In POINTER mode ``value`` is a physical register number; in IMMEDIATE
    mode it is the inlined (full-precision) value.  The width check that
    the value actually fits in the map's storage happens at inline time
    (:meth:`RenameMapTable.try_inline`), so the entry itself can store the
    semantic value.
    """

    __slots__ = ("mode", "value")

    def __init__(self, mode: EntryMode, value: int) -> None:
        self.mode = mode
        self.value = value

    @property
    def is_immediate(self) -> bool:
        return self.mode == EntryMode.IMMEDIATE

    def as_tuple(self) -> Tuple[int, int]:
        return (int(self.mode), self.value)

    def __repr__(self) -> str:
        kind = "imm" if self.is_immediate else "p"
        return f"<{kind}:{self.value}>"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MapEntry)
            and self.mode == other.mode
            and self.value == other.value
        )


class RenameMapTable:
    """RAM map table for one register class.

    ``value_bits`` is the number of value bits an IMMEDIATE entry can hold
    (Table 1: 7 for the 4-wide model, 10 for the 8-wide).  For FP maps the
    convention differs: an FP register can be inlined only when its 64-bit
    pattern is all zeroes or all ones, so ``fp_mode=True`` switches the
    width check accordingly.

    The ``modes`` and ``values`` lists are public on purpose: the rename
    stage indexes them directly instead of materializing a
    :class:`MapEntry` per source operand.
    """

    def __init__(self, num_logical: int, value_bits: int, fp_mode: bool = False) -> None:
        if num_logical <= 0:
            raise ValueError("map table needs at least one entry")
        self.num_logical = num_logical
        self.value_bits = value_bits
        self.fp_mode = fp_mode
        self.modes: List[int] = [MODE_POINTER] * num_logical
        self.values: List[int] = [-1] * num_logical

    # ------------------------------------------------------------- reads

    def lookup(self, lreg: int) -> MapEntry:
        """Current mapping for a logical register, as a value object.

        Allocates a fresh :class:`MapEntry`; hot-path callers should read
        ``modes[lreg]`` / ``values[lreg]`` directly.
        """
        return MapEntry(EntryMode(self.modes[lreg]), self.values[lreg])

    def pointer_of(self, lreg: int) -> int:
        """Physical register the entry points at, or -1 if inlined/unset."""
        if self.modes[lreg] == MODE_IMMEDIATE:
            return -1
        return self.values[lreg]

    def value_fits(self, value: int) -> bool:
        """Would ``value`` fit in this map's immediate storage?"""
        if self.fp_mode:
            return is_all_zeros_or_ones(value)
        return fits_in_bits(value, self.value_bits)

    # ------------------------------------------------------------ writes

    def set_pointer(self, lreg: int, preg: int) -> None:
        """Rename-stage write: map ``lreg`` to physical register ``preg``."""
        self.modes[lreg] = MODE_POINTER
        self.values[lreg] = preg

    def set_immediate(self, lreg: int, value: int) -> None:
        """Force an entry to immediate mode (rename-stage write used by
        the load-immediate extension; retire-stage writes should go
        through :meth:`try_inline`)."""
        if not self.value_fits(value):
            raise ValueError(f"value {value:#x} does not fit in {self.value_bits} bits")
        self.modes[lreg] = MODE_IMMEDIATE
        self.values[lreg] = value

    def try_inline(self, lreg: int, preg: int, value: int) -> bool:
        """Retire-stage late update with the WAW check of Figure 7.

        The narrow ``value`` produced into ``preg`` is written into the
        entry only if the entry still points at ``preg`` — if a younger
        writer has already remapped the logical register, the update is
        dropped (returns False).
        """
        if not self.value_fits(value):
            return False
        if self.modes[lreg] == MODE_IMMEDIATE or self.values[lreg] != preg:
            return False
        self.modes[lreg] = MODE_IMMEDIATE
        self.values[lreg] = value
        return True

    # ------------------------------------------------------ checkpointing

    def snapshot(self) -> Tuple[List[int], List[int]]:
        """Shadow copy of the whole table (taken at each branch): a
        ``(modes, values)`` pair of fresh lists."""
        return (self.modes[:], self.values[:])

    def restore(self, snap) -> None:
        """Recover the table from a shadow copy (misprediction recovery).

        Accepts the ``(modes, values)`` pair produced by :meth:`snapshot`,
        or a legacy list of :class:`MapEntry` objects.
        """
        if isinstance(snap, tuple):
            modes, values = snap
            if len(modes) != self.num_logical or len(values) != self.num_logical:
                raise ValueError("snapshot size mismatch")
            self.modes[:] = modes
            self.values[:] = values
            return
        if len(snap) != self.num_logical:
            raise ValueError("snapshot size mismatch")
        for lreg, saved in enumerate(snap):
            self.modes[lreg] = int(saved.mode)
            self.values[lreg] = saved.value

    def pointers(self) -> List[int]:
        """All physical registers currently named by POINTER entries."""
        return [
            v
            for m, v in zip(self.modes, self.values)
            if m == MODE_POINTER and v >= 0
        ]

    def __len__(self) -> int:
        return self.num_logical
