"""CAM rename map table (Figure 4), with the PRI incompatibility the
paper argues in Section 2.1.

In a CAM map the number of entries equals the number of *physical*
registers; each entry stores a logical register number and a valid bit,
and the physical register number is encoded positionally.  Checkpoints
copy only the valid bits.

Because the physical register number is the entry's *position*, using it
to encode an inlined value means a given value has exactly one slot — two
logical registers cannot both hold the inlined value 0 at the same time.
:meth:`CamMapTable.try_inline` implements that faithfully and raises
:class:`CamInlineError` on the conflicting case, demonstrating why PRI is
only practical with RAM maps.
"""

from __future__ import annotations

from typing import List, Optional


class CamInlineError(RuntimeError):
    """Raised when a CAM map cannot represent a second copy of a value."""


class CamMapTable:
    """CAM map table for one register class."""

    def __init__(self, num_logical: int, num_physical: int) -> None:
        self.num_logical = num_logical
        self.num_physical = num_physical
        self._lreg: List[int] = [-1] * num_physical
        self._valid: List[bool] = [False] * num_physical
        #: Positional value-encoding space for the inlining demonstration:
        #: value v (0 <= v < num_physical) is "stored" by dedicating the
        #: entry at position v.
        self._inlined_value_slots: List[Optional[int]] = [None] * num_physical

    # ------------------------------------------------------------- reads

    def lookup(self, lreg: int) -> int:
        """Associative search: physical register currently mapped to
        ``lreg``, or -1 if unmapped."""
        for preg in range(self.num_physical):
            if self._valid[preg] and self._lreg[preg] == lreg:
                return preg
        return -1

    # ------------------------------------------------------------ writes

    def allocate(self, lreg: int, preg: int) -> None:
        """Map ``lreg`` to ``preg``: write the entry, clear the old
        mapping's valid bit."""
        old = self.lookup(lreg)
        if old >= 0:
            self._valid[old] = False
        self._lreg[preg] = lreg
        self._valid[preg] = True

    def invalidate(self, preg: int) -> None:
        self._valid[preg] = False

    def try_inline(self, lreg: int, value: int) -> int:
        """Attempt to store ``value`` for ``lreg`` positionally.

        Returns the slot used.  Raises :class:`CamInlineError` when the
        value's slot is already occupied by a *different* logical register
        — the structural limitation that rules CAM maps out for PRI.
        """
        if not 0 <= value < self.num_physical:
            raise CamInlineError(
                f"value {value} outside the positional name space "
                f"[0, {self.num_physical})"
            )
        holder = self._inlined_value_slots[value]
        if holder is not None and holder != lreg:
            raise CamInlineError(
                f"value {value} already inlined for logical register "
                f"{holder}; a CAM map can hold only one copy per value"
            )
        old = self.lookup(lreg)
        if old >= 0:
            self._valid[old] = False
        self._inlined_value_slots[value] = lreg
        return value

    def release_inlined(self, value: int) -> None:
        self._inlined_value_slots[value] = None

    # ------------------------------------------------------ checkpointing

    def snapshot_valid_bits(self) -> List[bool]:
        """CAM checkpointing copies only the valid bits (Section 2.1)."""
        return list(self._valid)

    def restore_valid_bits(self, snap: List[bool]) -> None:
        if len(snap) != self.num_physical:
            raise ValueError("snapshot size mismatch")
        self._valid = list(snap)
