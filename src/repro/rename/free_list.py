"""Physical register free list, tolerant of duplicate deallocation.

Section 3.2: when PRI frees a register early at retire, the *next writer*
of the same logical register will later try to free it again at commit
(it has no way to know about the early release).  The free-list manager
must ensure a register enters the list at most once per allocation.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional


class FreeList:
    """FIFO free list over physical register numbers.

    ``release`` returns False (and does nothing) for a register that is
    already free — the duplicate-deallocation case.  Callers that want to
    treat duplicates as errors can check the return value.
    """

    def __init__(self, pregs: Iterable[int]) -> None:
        self._queue = deque(pregs)
        self._free = set(self._queue)
        if len(self._free) != len(self._queue):
            raise ValueError("duplicate registers in initial free list")
        self.duplicate_releases = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, preg: int) -> bool:
        return preg in self._free

    @property
    def empty(self) -> bool:
        return not self._queue

    def free_pregs(self) -> frozenset:
        """Snapshot of the registers currently free (for auditing)."""
        return frozenset(self._free)

    def assert_well_formed(self) -> None:
        """Audit hook: the FIFO queue and the membership set must agree
        exactly (a divergence means a double-free slipped past
        :meth:`release` or an entry was dropped)."""
        if len(self._queue) != len(self._free):
            raise AssertionError(
                f"free list corrupt: queue holds {len(self._queue)} entries "
                f"but membership set holds {len(self._free)}"
            )
        if set(self._queue) != self._free:
            raise AssertionError(
                "free list corrupt: queue and membership set name "
                "different registers"
            )

    def allocate(self) -> Optional[int]:
        """Pop the next free register, or None when empty."""
        if not self._queue:
            return None
        preg = self._queue.popleft()
        self._free.discard(preg)
        return preg

    def release(self, preg: int) -> bool:
        """Return a register to the list; duplicate releases are ignored.

        Returns True if the register was actually (re)freed.
        """
        if preg in self._free:
            self.duplicate_releases += 1
            return False
        self._queue.append(preg)
        self._free.add(preg)
        return True
