"""Physical register free list, tolerant of duplicate deallocation.

Section 3.2: when PRI frees a register early at retire, the *next writer*
of the same logical register will later try to free it again at commit
(it has no way to know about the early release).  The free-list manager
must ensure a register enters the list at most once per allocation.

Two allocation policies are supported:

``ordered``
    Always allocate the lowest-numbered free register (a min-heap).
    This is the default, and it is what makes the batched lockstep
    backend (:mod:`repro.vector`) possible: with lowest-first
    allocation, a machine with ``C2 > C1`` physical registers pops the
    *exact same* register sequence as a ``C1``-register machine until
    the moment the smaller machine's free list empties — the extra
    registers ``C1..C2-1`` are all numerically above every member of
    the shared free set, so the min never differs.  A capacity sweep
    can therefore share one simulation and fork only at the first
    register-exhaustion stall.

``fifo``
    Classic circular free list: registers come back out in the order
    they were released.  Kept for modeling comparisons; FIFO recycling
    breaks the capacity-monotonicity property above, so FIFO configs
    are never capacity-grouped by the vector backend.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Iterable, List, Optional

#: Allocation policies a free list (and a MachineConfig) may name.
ALLOC_POLICIES = ("ordered", "fifo")


class FreeList:
    """Free list over physical register numbers.

    ``release`` returns False (and does nothing) for a register that is
    already free — the duplicate-deallocation case.  Callers that want to
    treat duplicates as errors can check the return value.
    """

    def __init__(self, pregs: Iterable[int], policy: str = "fifo") -> None:
        if policy not in ALLOC_POLICIES:
            raise ValueError(
                f"unknown free-list policy {policy!r} "
                f"(expected one of {ALLOC_POLICIES})"
            )
        self.policy = policy
        initial = list(pregs)
        self._free = set(initial)
        if len(self._free) != len(initial):
            raise ValueError("duplicate registers in initial free list")
        if policy == "ordered":
            self._queue: List[int] = initial
            heapq.heapify(self._queue)
        else:
            self._queue = deque(initial)
        self.duplicate_releases = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, preg: int) -> bool:
        return preg in self._free

    @property
    def empty(self) -> bool:
        return not self._queue

    def free_pregs(self) -> frozenset:
        """Snapshot of the registers currently free (for auditing)."""
        return frozenset(self._free)

    def assert_well_formed(self) -> None:
        """Audit hook: the queue and the membership set must agree
        exactly (a divergence means a double-free slipped past
        :meth:`release` or an entry was dropped)."""
        if len(self._queue) != len(self._free):
            raise AssertionError(
                f"free list corrupt: queue holds {len(self._queue)} entries "
                f"but membership set holds {len(self._free)}"
            )
        if set(self._queue) != self._free:
            raise AssertionError(
                "free list corrupt: queue and membership set name "
                "different registers"
            )

    def allocate(self) -> Optional[int]:
        """Pop the next free register (policy-defined order), or None
        when empty."""
        if not self._queue:
            return None
        if self.policy == "ordered":
            preg = heapq.heappop(self._queue)
        else:
            preg = self._queue.popleft()
        self._free.discard(preg)
        return preg

    def release(self, preg: int) -> bool:
        """Return a register to the list; duplicate releases are ignored.

        Returns True if the register was actually (re)freed.
        """
        if preg in self._free:
            self.duplicate_releases += 1
            return False
        if self.policy == "ordered":
            heapq.heappush(self._queue, preg)
        else:
            self._queue.append(preg)
        self._free.add(preg)
        return True

    # ------------------------------------------------- capacity extension

    def extend_range(self, start: int, stop: int) -> None:
        """Add fresh, never-allocated registers ``start..stop-1`` to the
        free set — the vector backend's fork-at-exhaustion step.  The new
        registers must not already be tracked."""
        fresh = range(start, stop)
        if any(p in self._free for p in fresh):
            raise ValueError("extension overlaps existing free registers")
        self._free.update(fresh)
        if self.policy == "ordered":
            for preg in fresh:
                heapq.heappush(self._queue, preg)
        else:
            self._queue.extend(fresh)

    # --------------------------------------------------- (de)serialization

    def serialize(self) -> List[int]:
        """Policy-appropriate list form for snapshots: FIFO order for
        ``fifo``, heap-array order for ``ordered`` (a heap's own backing
        list restores to an identical heap)."""
        return list(self._queue)

    def restore(self, entries: Iterable[int]) -> None:
        """Install a :meth:`serialize` image (same policy assumed —
        snapshot compatibility is guarded upstream by the config
        digest)."""
        entries = list(entries)
        if self.policy == "ordered":
            self._queue = entries  # a heap's list is already a heap
        else:
            self._queue = deque(entries)
        self._free = set(entries)
