"""Rename-map checkpoints for control speculation (Sections 2.3, 3.2).

A checkpoint is taken at every renamed branch (as in the MIPS R10000) and
holds: shadow copies of both map tables, the return-address stack, and
the global branch history.  Each checkpoint also takes references on
every physical register its shadow maps name, in two scopes:

* **resolve-scoped** references (``checkpoint_refs``) — dropped as soon as
  the branch resolves, when the shadow map can no longer be a recovery
  target.  This is PRI's ``ckptcount`` policy, modelled on the aggressive
  checkpoint reclamation of Akkary et al. [29].
* **commit-scoped** references (``er_checkpoint_refs``) — dropped only
  when the branch commits (or is squashed).  This models the early-release
  scheme's requirement that the *unmap flag be true for current and
  checkpointed copies* [27]: ER predates checkpoint reference counting,
  and propagating unmap flags into live shadow copies is exactly the
  update complexity Section 3.2 calls non-trivial, so the conservative
  implementation keeps a register pinned while any shadow copy from an
  uncommitted branch still names it.

For PRI's ``lazy`` policy, :meth:`CheckpointManager.patch_inlined` walks
the live checkpoints and rewrites stale pointers to the inlined immediate
(modelling the background copy logic of Section 3.2), dropping their
resolve-scoped references so the register can free immediately.

Shadow copies are stored as ``(modes, values)`` parallel ``int`` lists
(the representation of :meth:`repro.rename.map_table.RenameMapTable.snapshot`)
— a checkpoint is taken for *every* renamed branch, so creating it must
be two C-level list copies, not per-entry object construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.opcodes import RegClass
from repro.rename.map_table import MODE_POINTER, RenameMapTable
from repro.rename.refcount import RefCountTable


class Checkpoint:
    """Shadow state for one renamed branch."""

    __slots__ = (
        "branch_seq",
        "snapshots",
        "gens",
        "pins",
        "ras",
        "history",
        "resolve_released",
        "commit_released",
    )

    def __init__(self, branch_seq, snapshots, ras, history, gens=None):
        self.branch_seq = branch_seq
        #: Mapping RegClass -> (modes, values) parallel int lists.
        self.snapshots: Dict[RegClass, Tuple[List[int], List[int]]] = snapshots
        #: Mapping RegClass -> list of pregs this checkpoint holds
        #: references on, computed once at take time (when the manager
        #: tracks references) instead of re-scanning the shadow maps on
        #: every release.  ``patch_inlined`` keeps it in sync.  ``None``
        #: when references are untracked.
        self.pins: Optional[Dict[RegClass, List[int]]] = None
        #: Mapping RegClass -> list[int], parallel to ``snapshots``: the
        #: allocation generation of each POINTER entry at snapshot time
        #: (-1 for immediates, or when the manager has no ``gen_source``).
        #: The auditor uses this to prove a checkpointed pointer still
        #: names the same allocation it was taken against.
        self.gens: Optional[Dict[RegClass, List[int]]] = gens
        self.ras: List[int] = ras
        self.history: int = history
        self.resolve_released = False
        self.commit_released = False

    def pointer_entries(self, reg_class: RegClass) -> List[int]:
        modes, values = self.snapshots[reg_class]
        return [
            v for m, v in zip(modes, values) if m == MODE_POINTER and v >= 0
        ]

    def pointer_items(self, reg_class: RegClass) -> List[tuple]:
        """(lreg, preg, snapshot_gen) for every live POINTER entry."""
        modes, values = self.snapshots[reg_class]
        gens = self.gens[reg_class] if self.gens is not None else None
        return [
            (lreg, v, gens[lreg] if gens is not None else -1)
            for lreg, (m, v) in enumerate(zip(modes, values))
            if m == MODE_POINTER and v >= 0
        ]


class CheckpointManager:
    """Bounded stack of checkpoints, oldest first.

    ``on_unref(reg_class, preg)`` — if set — is invoked when a reference
    drop brings that scope's count on ``preg`` to zero, so the machine
    can re-check pending early frees.  (Drops that leave the count
    positive cannot unblock a free: both PRI and ER freeing require the
    relevant count to reach zero, so non-zero drops are not reported.)
    """

    def __init__(
        self,
        capacity: int,
        maps: Dict[RegClass, RenameMapTable],
        refcounts: Dict[RegClass, RefCountTable],
        track_er_refs: bool = False,
        track_refs: bool = True,
        gen_source: Optional[Callable[[RegClass], List[int]]] = None,
    ) -> None:
        self.capacity = capacity
        self.maps = maps
        self.refcounts = refcounts
        self.track_er_refs = track_er_refs
        #: Disabled in virtual-physical mode, where map pointers name
        #: unbounded virtual tags rather than physical registers — and in
        #: plain baseline machines, where nothing ever consults the
        #: counts (no PRI, no ER, no auditor).
        self.track_refs = track_refs
        #: Returns the live allocation-generation list of a class's
        #: register file, read once per take for snapshot stamping.
        self.gen_source = gen_source
        self.on_unref: Optional[Callable[[RegClass, int], None]] = None
        self._stack: List[Checkpoint] = []
        #: Checkpoints released from the stack (branch resolved) that
        #: still pin commit-scoped ER references.  The auditor walks this
        #: to recompute ``er_checkpoint`` counts.
        self._er_pending: List[Checkpoint] = []
        self.taken = 0
        self.patches_applied = 0

    def __len__(self) -> int:
        return len(self._stack)

    @property
    def full(self) -> bool:
        return len(self._stack) >= self.capacity

    def checkpoints(self) -> List[Checkpoint]:
        return list(self._stack)

    def er_pending(self) -> List[Checkpoint]:
        """Checkpoints whose commit-scoped (ER) references are still
        outstanding — a superset of the stack under ER tracking."""
        return list(self._er_pending)

    # ------------------------------------------------------------ create

    def take(self, branch_seq: int, ras: List[int], history: int) -> Optional[Checkpoint]:
        """Checkpoint the current rename state; None when full (the
        renamer must stall)."""
        if self.full:
            return None
        snapshots = {cls: table.snapshot() for cls, table in self.maps.items()}
        gens = None
        if self.gen_source is not None:
            gens = {}
            for cls, (modes, values) in snapshots.items():
                gen_table = self.gen_source(cls)
                gens[cls] = [
                    gen_table[v] if m == MODE_POINTER and v >= 0 else -1
                    for m, v in zip(modes, values)
                ]
        ckpt = Checkpoint(branch_seq, snapshots, ras, history, gens)
        if self.track_refs:
            pins = {}
            track_er = self.track_er_refs
            for cls, (modes, values) in snapshots.items():
                pinned = [
                    v for m, v in zip(modes, values)
                    if m == MODE_POINTER and v >= 0
                ]
                pins[cls] = pinned
                counts = self.refcounts[cls]
                counts.add_checkpoint_refs(pinned)
                if track_er:
                    counts.add_er_checkpoint_refs(pinned)
            ckpt.pins = pins
            if track_er:
                self._er_pending.append(ckpt)
        self._stack.append(ckpt)
        self.taken += 1
        return ckpt

    # ----------------------------------------------------------- release

    def _drop_resolve_refs(self, ckpt: Checkpoint) -> None:
        if ckpt.resolve_released:
            return
        ckpt.resolve_released = True
        if not self.track_refs:
            return
        on_unref = self.on_unref
        for cls in ckpt.snapshots:
            pinned = (
                ckpt.pins[cls] if ckpt.pins is not None
                else ckpt.pointer_entries(cls)
            )
            zeroed = self.refcounts[cls].drop_checkpoint_refs(pinned)
            if on_unref is not None:
                for preg in zeroed:
                    on_unref(cls, preg)

    def _drop_commit_refs(self, ckpt: Checkpoint) -> None:
        if ckpt.commit_released or not self.track_er_refs or not self.track_refs:
            ckpt.commit_released = True
            return
        ckpt.commit_released = True
        try:
            self._er_pending.remove(ckpt)
        except ValueError:
            pass
        on_unref = self.on_unref
        for cls in ckpt.snapshots:
            pinned = (
                ckpt.pins[cls] if ckpt.pins is not None
                else ckpt.pointer_entries(cls)
            )
            zeroed = self.refcounts[cls].drop_er_checkpoint_refs(pinned)
            if on_unref is not None:
                for preg in zeroed:
                    on_unref(cls, preg)

    def release(self, ckpt: Checkpoint) -> None:
        """The branch resolved: the shadow map can never be a recovery
        target again.  Drops resolve-scoped references and removes the
        checkpoint from the stack; commit-scoped (ER) references persist
        until :meth:`commit_retire` or :meth:`discard`."""
        try:
            self._stack.remove(ckpt)
        except ValueError:
            pass
        self._drop_resolve_refs(ckpt)

    def commit_retire(self, ckpt: Checkpoint) -> None:
        """The branch committed: drop the ER (commit-scoped) references."""
        self._drop_commit_refs(ckpt)

    def discard(self, ckpt: Checkpoint) -> None:
        """The branch was squashed: drop everything."""
        self._drop_resolve_refs(ckpt)
        self._drop_commit_refs(ckpt)

    def recover(self, ckpt: Checkpoint) -> None:
        """Misprediction recovery to ``ckpt``: restore the maps from its
        shadow copies and discard every *younger* checkpoint.  ``ckpt``
        itself stays in the stack — the machine releases it right after
        (the branch has resolved)."""
        index = self._stack.index(ckpt)
        for cls, table in self.maps.items():
            table.restore(ckpt.snapshots[cls])
        for discarded in self._stack[index + 1:]:
            self._drop_resolve_refs(discarded)
            self._drop_commit_refs(discarded)
        del self._stack[index + 1:]

    # ----------------------------------------------------- lazy patching

    def patch_inlined(self, reg_class: RegClass, preg: int, value: int) -> int:
        """Rewrite stale pointers to ``preg`` in all live checkpointed
        copies to the inlined immediate (the lazy-update policy), dropping
        their resolve-scoped references.  Returns the entries patched."""
        counts = self.refcounts[reg_class]
        patched = 0
        for ckpt in self._stack:
            modes, values = ckpt.snapshots[reg_class]
            for lreg, (m, v) in enumerate(zip(modes, values)):
                if m == MODE_POINTER and v == preg:
                    modes[lreg] = 1  # MODE_IMMEDIATE
                    values[lreg] = value
                    counts.drop_checkpoint_ref(preg)
                    if self.track_er_refs:
                        counts.drop_er_checkpoint_ref(preg)
                    if ckpt.pins is not None:
                        ckpt.pins[reg_class].remove(preg)
                    patched += 1
        self.patches_applied += patched
        return patched

    def clear(self) -> None:
        """Drop all checkpoints (end of run), releasing their references."""
        for ckpt in self._stack:
            self._drop_resolve_refs(ckpt)
        for ckpt in list(self._er_pending):
            self._drop_commit_refs(ckpt)
        for ckpt in self._stack:
            self._drop_commit_refs(ckpt)
        self._stack.clear()
