"""Register renaming substrate.

Implements the structures of the paper's Section 2 and the PRI-specific
extensions of Section 3:

* :class:`~repro.rename.map_table.RenameMapTable` — a RAM map table whose
  entries support two addressing modes: *pointer* (a physical register
  number, the conventional case) and *immediate* (a narrow value inlined
  into the entry, the paper's contribution).
* :class:`~repro.rename.cam_map.CamMapTable` — a CAM map table, provided
  to demonstrate Section 2.1's argument that PRI is practical only with
  RAM maps (a CAM map cannot hold the same inlined value for two logical
  registers at once).
* :class:`~repro.rename.free_list.FreeList` — tolerant of the duplicate
  deallocations PRI creates (Section 3.2).
* :class:`~repro.rename.refcount.RefCountTable` — consumer and checkpoint
  reference counts (Sections 3.2-3.4).
* :class:`~repro.rename.checkpoints.CheckpointManager` — shadow maps for
  control speculation, with lazy patching or checkpoint counting.
"""

from repro.rename.map_table import MapEntry, RenameMapTable, EntryMode
from repro.rename.cam_map import CamMapTable, CamInlineError
from repro.rename.free_list import FreeList
from repro.rename.refcount import RefCountTable
from repro.rename.checkpoints import Checkpoint, CheckpointManager

__all__ = [
    "MapEntry",
    "RenameMapTable",
    "EntryMode",
    "CamMapTable",
    "CamInlineError",
    "FreeList",
    "RefCountTable",
    "Checkpoint",
    "CheckpointManager",
]
