"""Configurable invariant auditor for :class:`repro.core.machine.Machine`.

Every check re-derives a piece of reclamation bookkeeping from an
independent source of truth and compares it against the machine's live
structures:

===================  =========================================================
``free-list``        the FIFO queue, its membership set, and the per-register
                     state array agree register by register
``conservation``     every allocated physical register is reachable from a
                     root — the current map, an in-flight ROB entry (dest,
                     previous mapping, or counted source), a live checkpoint,
                     or a pending inline — so ``free + accounted == total``
                     per class; an unreachable allocation is a leak
``refcount``         consumer / checkpoint / ER-checkpoint counts equal the
                     counts recomputed from the ROB and the checkpoint stack
``war-integrity``    every counted source record still names a live
                     allocation generation (the Figure 6 hazard, caught
                     before a consumer ever reads the stale register)
``map``              every current POINTER map entry names an allocated
                     register owned by that logical register
``checkpoint``       every POINTER entry in a live (stacked) checkpoint names
                     an allocated register at its snapshot-time generation
``prf-leak``         the ``conservation`` check at end of run — anything
                     unaccounted once the machine drains has leaked
===================  =========================================================

A failed check raises :class:`AuditError` carrying a structured
diagnostic: the check name, cycle, scheme label, offending register, and
the in-flight window (oldest/youngest ROB sequence numbers).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.config import AuditConfig, MachineConfig, WarPolicy
from repro.core.machine import SimulationError, _VID_FLAG
from repro.core.regfile import RegState
from repro.isa.opcodes import RegClass

_CLASS_NAMES = {RegClass.INT: "int", RegClass.FP: "fp"}


def scheme_label(config: MachineConfig) -> str:
    """Short reclamation-scheme label for diagnostics (mirrors the
    experiment registry's naming)."""
    parts = []
    if config.pri.enabled:
        parts.append(
            f"PRI-{config.pri.war_policy.value}"
            f"+{config.pri.checkpoint_policy.value}"
        )
    if config.early_release:
        parts.append("ER")
    if config.virtual_physical:
        parts.append("VP")
    return "+".join(parts) if parts else "base"


class AuditError(SimulationError):
    """An invariant audit failed.  ``diagnostic`` holds the structured
    fields; the message renders them for humans."""

    def __init__(
        self,
        check: str,
        reason: str,
        *,
        cycle: int,
        scheme: str,
        reg_class: Optional[str] = None,
        preg: Optional[int] = None,
        inflight: Optional[tuple] = None,
        details: Optional[Dict] = None,
    ) -> None:
        self.diagnostic = {
            "check": check,
            "reason": reason,
            "cycle": cycle,
            "scheme": scheme,
            "reg_class": reg_class,
            "preg": preg,
            "inflight": inflight,
            "details": details or {},
        }
        where = f"cycle {cycle}, scheme {scheme}"
        if reg_class is not None and preg is not None:
            where += f", {reg_class} p{preg}"
        if inflight is not None:
            oldest, youngest, count = inflight
            where += f", inflight #{oldest}..#{youngest} ({count} ops)"
        super().__init__(f"audit[{check}] {reason} ({where})")


class InvariantAuditor:
    """Stateful checker attached to one machine run.

    :meth:`maybe_check` is called by the machine at the end of every
    cycle and runs the full audit when due (every ``interval`` cycles,
    and — with ``check_commits`` — on every cycle that commits);
    :meth:`check` can also be invoked directly.
    """

    def __init__(self, config: AuditConfig) -> None:
        self.cfg = config
        self.audits_run = 0
        self._last_committed = 0

    # ------------------------------------------------------------ driving

    def maybe_check(self, m) -> None:
        # interval <= 0 disables periodic audits (commit-boundary and
        # final audits may still run).
        due = self.cfg.interval > 0 and m.now % self.cfg.interval == 0
        if self.cfg.check_commits and m.stats.committed != self._last_committed:
            due = True
        self._last_committed = m.stats.committed
        if due:
            self.check(m)

    def check(self, m, final: bool = False) -> None:
        """Run every invariant; raise :class:`AuditError` on the first
        divergence.  ``final`` marks the end-of-run (PRF leak) audit."""
        self.audits_run += 1
        m.stats.audits += 1
        self._scheme = scheme_label(m.cfg)
        for cls in (RegClass.INT, RegClass.FP):
            self._check_free_list(m, cls)
            self._check_maps(m, cls)
            if m.cfg.virtual_physical:
                self._check_vp_bindings(m, cls, final)
            else:
                self._check_checkpoints(m, cls)
                self._check_conservation(m, cls, final)
                self._check_refcounts(m, cls)
                self._check_war_integrity(m, cls)

    # ------------------------------------------------------------ helpers

    def _fail(self, m, check, reason, cls=None, preg=None, details=None):
        raise AuditError(
            check,
            reason,
            cycle=m.now,
            scheme=self._scheme,
            reg_class=_CLASS_NAMES.get(cls) if cls is not None else None,
            preg=preg,
            inflight=m.inflight_window(),
            details=details,
        )

    @staticmethod
    def _live_checkpoints(m):
        """Stacked (resolve-pinning) checkpoints."""
        return m.ckpts.checkpoints()

    # ------------------------------------------------------------- checks

    def _check_free_list(self, m, cls) -> None:
        try:
            m.rf[cls].assert_consistent()
        except AssertionError as exc:
            self._fail(m, "free-list", str(exc), cls)

    def _check_conservation(self, m, cls, final) -> None:
        rf = m.rf[cls]
        roots: Dict[int, str] = {}

        def add(preg: int, label: str) -> None:
            if 0 <= preg < rf.num_regs and preg not in roots:
                roots[preg] = label

        for preg in m.maps[cls].pointers():
            if preg < _VID_FLAG:
                add(preg, "map")
        for instr in m.rob:
            op_cls = instr.op.dest_class if instr.op.dest is not None else None
            if op_cls == cls:
                if instr.dest_preg >= 0 and rf.gen_matches(
                    instr.dest_preg, instr.dest_gen
                ):
                    add(instr.dest_preg, "inflight-dest")
                if instr.prev_preg >= 0 and rf.gen_matches(
                    instr.prev_preg, instr.prev_gen
                ):
                    add(instr.prev_preg, "inflight-prev")
            for rec in instr.sources:
                if rec.counted and rec.reg_class == cls and rec.preg < _VID_FLAG:
                    add(rec.preg, "inflight-src")
        held = {id(c): c for c in self._live_checkpoints(m)}
        for ckpt in m.ckpts.er_pending():
            held.setdefault(id(ckpt), ckpt)
        for ckpt in held.values():
            for preg in ckpt.pointer_entries(cls):
                if preg < _VID_FLAG:
                    add(preg, "checkpoint")
        for preg in range(rf.num_regs):
            if rf.inline_pending[preg]:
                add(preg, "inline-pending")

        leaked = [p for p in rf.allocated_pregs() if p not in roots]
        if leaked:
            check = "prf-leak" if final else "conservation"
            free = len(rf.free_list)
            self._fail(
                m,
                check,
                f"{len(leaked)} allocated register(s) unreachable from any "
                f"root (map, inflight, checkpoint, inline): p{leaked[0]}",
                cls,
                leaked[0],
                details={
                    "leaked": leaked[:16],
                    "free": free,
                    "accounted": len(roots),
                    "total": rf.num_regs,
                },
            )

    def _check_refcounts(self, m, cls) -> None:
        rf = m.rf[cls]
        n = rf.num_regs
        exp_consumer = [0] * n
        exp_ckpt = [0] * n
        exp_er = [0] * n
        for instr in m.rob:
            for rec in instr.sources:
                if rec.counted and rec.reg_class == cls and 0 <= rec.preg < n:
                    exp_consumer[rec.preg] += 1
        if m.ckpts.track_refs:
            for ckpt in self._live_checkpoints(m):
                if not ckpt.resolve_released:
                    for preg in ckpt.pointer_entries(cls):
                        if preg < n:
                            exp_ckpt[preg] += 1
            if m.ckpts.track_er_refs:
                for ckpt in m.ckpts.er_pending():
                    for preg in ckpt.pointer_entries(cls):
                        if preg < n:
                            exp_er[preg] += 1
        consumer, ckpt_refs, er_refs = m.refcounts[cls].snapshot()
        for preg in range(n):
            triple = (consumer[preg], ckpt_refs[preg], er_refs[preg])
            expected = (exp_consumer[preg], exp_ckpt[preg], exp_er[preg])
            if triple != expected:
                kind = (
                    "consumer"
                    if triple[0] != expected[0]
                    else ("checkpoint" if triple[1] != expected[1] else "er")
                )
                self._fail(
                    m,
                    "refcount",
                    f"{kind} refcount imbalance: table says "
                    f"{triple} but recomputation from the ROB and "
                    f"checkpoints gives {expected} "
                    f"(consumer, checkpoint, er)",
                    cls,
                    preg,
                    details={"table": triple, "recomputed": expected},
                )

    def _check_war_integrity(self, m, cls) -> None:
        if m.cfg.pri.enabled and m.cfg.pri.war_policy == WarPolicy.REPLAY:
            return  # REPLAY legally lets consumers outlive the allocation
        rf = m.rf[cls]
        for instr in m.rob:
            for rec in instr.sources:
                if not rec.counted or rec.reg_class != cls:
                    continue
                preg = rec.preg
                if not (0 <= preg < rf.num_regs):
                    continue
                if rf.state[preg] == RegState.FREE:
                    self._fail(
                        m,
                        "war-integrity",
                        f"p{preg} was reclaimed while consumer #{instr.seq} "
                        f"still holds a counted reference (Figure 6 WAR "
                        f"hazard)",
                        cls,
                        preg,
                        details={"consumer_seq": instr.seq},
                    )
                if rf.gen[preg] != rec.gen:
                    self._fail(
                        m,
                        "war-integrity",
                        f"p{preg} was reallocated (gen {rf.gen[preg]} != "
                        f"snapshot gen {rec.gen}) under consumer "
                        f"#{instr.seq}",
                        cls,
                        preg,
                        details={"consumer_seq": instr.seq},
                    )

    def _check_maps(self, m, cls) -> None:
        rf = m.rf[cls]
        table = m.maps[cls]
        for lreg in range(table.num_logical):
            preg = table.pointer_of(lreg)
            if preg < 0:
                continue
            if preg >= _VID_FLAG:
                if preg - _VID_FLAG not in m._vregs:
                    self._fail(
                        m,
                        "map",
                        f"logical r{lreg} maps to dead virtual tag "
                        f"v{preg - _VID_FLAG}",
                        cls,
                    )
                continue
            if m.cfg.virtual_physical:
                self._fail(
                    m,
                    "map",
                    f"logical r{lreg} maps to raw p{preg} in "
                    f"virtual-physical mode",
                    cls,
                    preg,
                )
            if preg >= rf.num_regs or rf.state[preg] == RegState.FREE:
                self._fail(
                    m,
                    "map",
                    f"logical r{lreg} maps to {'out-of-range' if preg >= rf.num_regs else 'free'} "
                    f"register p{preg}",
                    cls,
                    preg if preg < rf.num_regs else None,
                    details={"lreg": lreg},
                )
            elif rf.lreg[preg] != lreg:
                self._fail(
                    m,
                    "map",
                    f"logical r{lreg} maps to p{preg}, but p{preg} was "
                    f"allocated for r{rf.lreg[preg]}",
                    cls,
                    preg,
                    details={"lreg": lreg, "owner_lreg": rf.lreg[preg]},
                )

    def _check_checkpoints(self, m, cls) -> None:
        rf = m.rf[cls]
        for ckpt in self._live_checkpoints(m):
            for lreg, preg, gen in ckpt.pointer_items(cls):
                if preg >= _VID_FLAG:
                    continue
                if preg >= rf.num_regs or rf.state[preg] == RegState.FREE:
                    self._fail(
                        m,
                        "checkpoint",
                        f"checkpoint for branch #{ckpt.branch_seq} holds a "
                        f"stale pointer: r{lreg} -> p{preg} which is "
                        f"{'out of range' if preg >= rf.num_regs else 'free'}",
                        cls,
                        preg if preg < rf.num_regs else None,
                        details={"branch_seq": ckpt.branch_seq, "lreg": lreg},
                    )
                elif gen >= 0 and rf.gen[preg] != gen:
                    self._fail(
                        m,
                        "checkpoint",
                        f"checkpoint for branch #{ckpt.branch_seq}: r{lreg} "
                        f"-> p{preg} was reallocated since the snapshot "
                        f"(gen {rf.gen[preg]} != {gen})",
                        cls,
                        preg,
                        details={"branch_seq": ckpt.branch_seq, "lreg": lreg},
                    )

    def _check_vp_bindings(self, m, cls, final) -> None:
        rf = m.rf[cls]
        owners: Dict[int, List[int]] = {}
        for vid, v in m._vregs.items():
            if v.reg_class == cls and v.preg >= 0 and rf.gen_matches(v.preg, v.preg_gen):
                owners.setdefault(v.preg, []).append(vid)
        for preg in rf.allocated_pregs():
            bound = owners.get(preg, [])
            if not bound:
                self._fail(
                    m,
                    "prf-leak" if final else "conservation",
                    f"p{preg} is allocated but no live virtual tag binds it",
                    cls,
                    preg,
                )
            elif len(bound) > 1:
                self._fail(
                    m,
                    "conservation",
                    f"p{preg} is bound by {len(bound)} virtual tags "
                    f"{bound[:4]}",
                    cls,
                    preg,
                    details={"vids": bound[:16]},
                )
        for instr in m.rob:
            if instr.op.dest is None or instr.op.dest_class != cls:
                continue
            if instr.dest_vid >= 0 and instr.dest_vid - _VID_FLAG not in m._vregs:
                self._fail(
                    m,
                    "conservation",
                    f"inflight #{instr.seq} names dead destination tag "
                    f"v{instr.dest_vid - _VID_FLAG}",
                    cls,
                )
