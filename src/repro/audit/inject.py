"""Fault-injection harness: prove the auditor's invariants actually fire.

Each :class:`Fault` deliberately corrupts one piece of reclamation
bookkeeping mid-run — the same corruptions a buggy free-list manager,
refcount protocol, or checkpoint patcher would produce — and
:func:`run_with_fault` asserts that the auditor converts it into an
:class:`~repro.audit.auditor.AuditError` instead of letting the run
finish with silently corrupted results.

A fault's ``apply`` callback inspects the machine and returns a detail
string once it has corrupted state, or ``None`` when the machine is not
yet in a state where the fault is applicable (e.g. no outstanding
consumer references to drop); the harness retries every cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.audit.auditor import AuditError
from repro.core.machine import Machine, _VID_FLAG
from repro.core.regfile import RegState
from repro.isa.opcodes import RegClass
from repro.workloads.trace import Trace


class FaultNotCaught(AssertionError):
    """The injected corruption escaped the auditor — a real audit gap."""


@dataclass(frozen=True)
class Fault:
    """One injectable corruption.

    ``expect`` names the audit checks allowed to catch it; the harness
    (and the tests) verify the diagnostic's ``check`` field is one of
    them.
    """

    name: str
    description: str
    expect: Tuple[str, ...]
    apply: Callable[[Machine], Optional[str]]


def _first_free(rf) -> Optional[int]:
    for preg in range(rf.num_regs):
        if rf.state[preg] == RegState.FREE:
            return preg
    return None


# --------------------------------------------------------------- faults


def _double_free(m: Machine) -> Optional[str]:
    """A mapped, live register is pushed back onto the free list — the
    classic double-free a broken Section 3.2 duplicate-release guard
    would produce."""
    cls = RegClass.INT
    rf = m.rf[cls]
    for preg in m.maps[cls].pointers():
        if preg < _VID_FLAG and rf.state[preg] != RegState.FREE:
            rf.free_list._queue.append(preg)
            rf.free_list._free.add(preg)
            return f"pushed mapped int p{preg} back onto the free list"
    return None


def _free_list_leak(m: Machine) -> Optional[str]:
    """A free register silently vanishes from the free list (a lost
    enqueue), shrinking the effective register file forever."""
    rf = m.rf[RegClass.INT]
    preg = rf.free_list.allocate()
    if preg is None:
        return None
    return f"dropped free int p{preg} from the free list"


def _alloc_leak(m: Machine) -> Optional[str]:
    """A register is allocated and then abandoned — reachable from no
    map, ROB entry, or checkpoint.  This is the PRF leak the end-of-run
    audit exists for."""
    rf = m.rf[RegClass.INT]
    preg = rf.allocate(lreg=1, owner_seq=-2, cycle=m.now)
    if preg is None:
        return None
    return f"allocated int p{preg} and leaked it"


def _refcount_leak(m: Machine) -> Optional[str]:
    """A spurious consumer reference pins a register forever (the
    Moudgill-counter increment-without-decrement bug)."""
    rf = m.rf[RegClass.INT]
    allocated = rf.allocated_pregs()
    if not allocated:
        return None
    preg = allocated[0]
    m.refcounts[RegClass.INT].add_consumer(preg)
    return f"added a phantom consumer reference on int p{preg}"


def _refcount_drop(m: Machine) -> Optional[str]:
    """A consumer reference is dropped before the consumer read — the
    under-count that lets PRI free a register too early (Figure 6)."""
    counts = m.refcounts[RegClass.INT]
    rf = m.rf[RegClass.INT]
    for preg in range(rf.num_regs):
        if counts.consumers(preg) > 0:
            counts.drop_consumer(preg)
            return f"dropped a live consumer reference on int p{preg}"
    return None


def _stale_checkpoint(m: Machine) -> Optional[str]:
    """A live shadow-map entry is repointed at a freed register — the
    stale-checkpoint state a broken lazy patcher would leave behind."""
    cls = RegClass.INT
    rf = m.rf[cls]
    free = _first_free(rf)
    if free is None:
        return None
    for ckpt in m.ckpts.checkpoints():
        items = ckpt.pointer_items(cls)
        if not items:
            continue
        lreg, preg, _gen = items[0]
        ckpt.snapshots[cls][1][lreg] = free  # values array of (modes, values)
        return (
            f"checkpoint for branch #{ckpt.branch_seq}: repointed shadow "
            f"r{lreg} from p{preg} to free p{free}"
        )
    return None


def _map_corrupt(m: Machine) -> Optional[str]:
    """The current map is repointed at a freed register, so the next
    consumer of that logical register renames against garbage."""
    cls = RegClass.INT
    rf = m.rf[cls]
    free = _first_free(rf)
    if free is None:
        return None
    table = m.maps[cls]
    for lreg in range(table.num_logical):
        preg = table.pointer_of(lreg)
        if 0 <= preg < _VID_FLAG:
            table.set_pointer(lreg, free)
            return f"repointed map r{lreg} from p{preg} to free p{free}"
    return None


def _war_release(m: Machine) -> Optional[str]:
    """A register with outstanding counted consumers is reclaimed — the
    paper's Figure 6 WAR violation, injected directly into the free
    list instead of waiting for a buggy policy to produce it."""
    cls = RegClass.INT
    rf = m.rf[cls]
    counts = m.refcounts[cls]
    table = m.maps[cls]
    for preg in rf.allocated_pregs():
        if (
            counts.consumers(preg) > 0
            and counts.checkpoint_refs(preg) == 0
            and counts.er_checkpoint_refs(preg) == 0
            and table.pointer_of(rf.lreg[preg]) != preg
        ):
            rf.release(preg, m.now)
            return f"reclaimed int p{preg} under {counts.consumers(preg)} consumers"
    return None


#: Registry of injectable corruptions, keyed by fault name.
FAULTS: Dict[str, Fault] = {
    f.name: f
    for f in (
        Fault("double-free", "mapped register pushed onto the free list",
              ("free-list",), _double_free),
        Fault("free-list-leak", "free register dropped from the free list",
              ("free-list",), _free_list_leak),
        Fault("alloc-leak", "register allocated and abandoned (PRF leak)",
              ("conservation", "prf-leak"), _alloc_leak),
        Fault("refcount-leak", "phantom consumer reference added",
              ("refcount",), _refcount_leak),
        Fault("refcount-drop", "live consumer reference dropped early",
              ("refcount",), _refcount_drop),
        Fault("stale-checkpoint", "shadow-map entry repointed at a free register",
              ("checkpoint",), _stale_checkpoint),
        Fault("map-corrupt", "current map entry repointed at a free register",
              ("map",), _map_corrupt),
        Fault("war-release", "register reclaimed under outstanding consumers",
              ("war-integrity",), _war_release),
    )
}


# -------------------------------------------------------------- harness


def run_with_fault(
    config,
    trace: Trace,
    fault: Fault,
    at_cycle: int = 50,
    max_insts: Optional[int] = None,
    max_cycles: int = 50_000,
) -> AuditError:
    """Run ``trace`` with aggressive auditing, injecting ``fault`` at the
    first applicable cycle at or after ``at_cycle``.

    Returns the :class:`AuditError` the auditor raised; raises
    :class:`FaultNotCaught` if the corruption was applied but no audit
    fired by the end of the run (or the fault never became applicable).
    """
    config = config.with_audit(interval=1, check_commits=True)
    machine = Machine(config)
    applied: list = []

    def hook(m: Machine) -> None:
        if not applied and m.now >= at_cycle:
            detail = fault.apply(m)
            if detail is not None:
                applied.append((m.now, detail))

    machine.add_cycle_hook(hook)
    try:
        machine.run(trace, max_insts=max_insts, max_cycles=max_cycles)
    except AuditError as err:
        if not applied:
            raise  # the auditor fired on its own: a genuine machine bug
        if err.diagnostic["check"] not in fault.expect:
            raise FaultNotCaught(
                f"fault {fault.name!r} ({applied[0][1]}) was caught by "
                f"check {err.diagnostic['check']!r}, expected one of "
                f"{fault.expect}"
            ) from err
        return err
    if not applied:
        raise FaultNotCaught(
            f"fault {fault.name!r} never became applicable "
            f"(ran to cycle {machine.now})"
        )
    raise FaultNotCaught(
        f"fault {fault.name!r} ({applied[0][1]}, cycle {applied[0][0]}) "
        f"escaped the auditor: run finished cleanly at cycle {machine.now}"
    )
