"""Self-auditing machine invariants and fault injection.

The reclamation schemes in this reproduction (PRI's late map update, ER's
counter-and-flag protocol, checkpoint reference counting) are exactly the
kind of bookkeeping where a subtle bug — the paper's Figure 6 WAR
violation is the canonical example — silently skews results rather than
crashing.  :mod:`repro.core.machine` already verifies *dataflow* (every
operand delivered to execution is checked against the trace); this
package verifies the *bookkeeping itself*:

* :class:`InvariantAuditor` re-derives free-list conservation, consumer
  and checkpoint reference counts, and map/checkpoint liveness from
  first principles every N cycles, raising :class:`AuditError` (a
  :class:`~repro.core.machine.SimulationError`) with a structured
  diagnostic on the first divergence;
* :mod:`repro.audit.inject` deliberately corrupts free-list, refcount,
  and checkpoint state mid-run to prove each invariant actually fires.

Enable via ``MachineConfig.with_audit()`` or ``--audit`` on either CLI.
"""

from repro.audit.auditor import AuditError, InvariantAuditor, scheme_label
from repro.audit.inject import FAULTS, Fault, FaultNotCaught, run_with_fault

__all__ = [
    "AuditError",
    "InvariantAuditor",
    "scheme_label",
    "FAULTS",
    "Fault",
    "FaultNotCaught",
    "run_with_fault",
]
