"""Value-significance helpers.

Physical register inlining hinges on *significance compression*: a value
whose ``n`` high-order bits are all zeroes or all ones (i.e. a correct
sign extension of its low bits) can be stored in fewer bits.  These
helpers define, precisely and in one place, what "fits in k bits" means
for the whole code base:

* Integer values are 64-bit two's-complement.  ``significant_bits(v)`` is
  the smallest ``k`` such that ``v`` survives a round trip through
  truncation to ``k`` bits and sign extension back to 64.
* Floating-point values are 64-bit IEEE-754 patterns.  The paper inlines
  an FP register only when the *entire pattern* is all zeroes or all ones,
  and Figure 2 additionally reports how many exponent/significand bits
  are significant.
"""

from __future__ import annotations

import struct

#: Largest representable unsigned 64-bit value; FP patterns live in
#: ``[0, MAX_UINT64]``.
MAX_UINT64 = (1 << 64) - 1

_WORD_BITS = 64
_SIGN_BIT = 1 << (_WORD_BITS - 1)
_WORD_MASK = MAX_UINT64


def to_signed64(value: int) -> int:
    """Interpret an arbitrary Python int as a signed 64-bit quantity."""
    value &= _WORD_MASK
    if value & _SIGN_BIT:
        return value - (1 << _WORD_BITS)
    return value


def to_unsigned64(value: int) -> int:
    """Interpret an arbitrary Python int as an unsigned 64-bit quantity."""
    return value & _WORD_MASK


def significant_bits(value: int) -> int:
    """Number of bits needed to hold ``value`` in two's complement.

    This counts the sign bit, so ``significant_bits(0) == 1``,
    ``significant_bits(-1) == 1`` (a single sign bit sign-extends to the
    full word), ``significant_bits(1) == 2``, ``significant_bits(-2) == 2``.
    Matches the paper's "all n high-order bits are either 1 or 0" check.
    """
    v = to_signed64(value)
    if v >= 0:
        return v.bit_length() + 1 if v else 1
    # For negative v, k bits suffice iff v >= -(2**(k-1)).
    return (-v - 1).bit_length() + 1


def fits_in_bits(value: int, nbits: int) -> bool:
    """True if ``value`` survives truncation to ``nbits`` + sign extension."""
    if nbits <= 0:
        return False
    if nbits >= _WORD_BITS:
        return True
    return significant_bits(value) <= nbits


def sign_extend(value: int, nbits: int) -> int:
    """Sign-extend the low ``nbits`` of ``value`` to a signed 64-bit int.

    This is the operation the hardware performs between the payload RAM
    and the ALU input (Section 3.1).
    """
    if nbits <= 0:
        raise ValueError("nbits must be positive")
    if nbits >= _WORD_BITS:
        return to_signed64(value)
    mask = (1 << nbits) - 1
    value &= mask
    if value & (1 << (nbits - 1)):
        value -= 1 << nbits
    return value


def is_all_zeros_or_ones(pattern: int) -> bool:
    """True if a 64-bit pattern is all zero bits or all one bits.

    This is the paper's inlining condition for floating-point registers:
    "all values that are all zeroes or ones are stored in the map table".
    """
    pattern = to_unsigned64(pattern)
    return pattern == 0 or pattern == MAX_UINT64


def pack_fp(value: float) -> int:
    """IEEE-754 double bit pattern of a Python float, as an unsigned int."""
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def unpack_fp(pattern: int) -> float:
    """Python float from a 64-bit IEEE-754 pattern."""
    return struct.unpack("<d", struct.pack("<Q", to_unsigned64(pattern)))[0]


def fp_exponent_field(pattern: int) -> int:
    """The 11-bit biased exponent field of an FP pattern."""
    return (to_unsigned64(pattern) >> 52) & 0x7FF


def fp_significand_field(pattern: int) -> int:
    """The 52-bit significand (fraction) field of an FP pattern."""
    return to_unsigned64(pattern) & ((1 << 52) - 1)


def fp_exponent_bits(pattern: int) -> int:
    """Significant bits of the exponent field, per Figure 2 (bottom left).

    An exponent field that is all zeroes or all ones counts as 0
    significant bits ("contains only zeroes or ones"); otherwise this is
    the smallest ``k`` such that the 11-bit field is a sign extension of
    its low ``k`` bits.
    """
    field = fp_exponent_field(pattern)
    if field == 0 or field == 0x7FF:
        return 0
    # Two's-complement width of the 11-bit field.
    if field & (1 << 10):
        signed = field - (1 << 11)
    else:
        signed = field
    if signed >= 0:
        return signed.bit_length() + 1
    return (-signed - 1).bit_length() + 1


def fp_significand_bits(pattern: int) -> int:
    """Significant bits of the significand field, per Figure 2 (bottom right).

    A fraction of all zeroes or all ones counts as 0; otherwise the number
    of *low-order* bits that carry information, i.e. 52 minus the number
    of trailing zero bits of the fraction.  Narrow FP significands arise
    from values like small integers stored as doubles, whose fraction has
    a short prefix of meaningful bits; the paper counts a fraction as
    ``k``-bit significant when only its ``k`` high-order bits are nonzero.
    """
    field = fp_significand_field(pattern)
    if field == 0 or field == (1 << 52) - 1:
        return 0
    # Count leading (high-order) significant bits: 52 - trailing zeros.
    trailing = (field & -field).bit_length() - 1
    return 52 - trailing
