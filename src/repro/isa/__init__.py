"""Synthetic ISA substrate.

The paper's evaluation ran SPEC2000 Alpha binaries on a SimpleScalar
derivative.  Neither the Alpha toolchain nor SPEC inputs are available
here, so this package defines a small RISC-like micro-op ISA that carries
exactly the information the pipeline model and the PRI mechanism need:
operation class (latency), logical source/destination registers, produced
value (for narrow-width checks), memory address (for the cache hierarchy),
and branch outcome (for the branch predictors).
"""

from repro.isa.opcodes import (
    OpClass,
    RegClass,
    LATENCY,
    is_branch,
    is_load,
    is_store,
    is_mem,
    is_fp,
)
from repro.isa.registers import (
    NUM_INT_ARCH_REGS,
    NUM_FP_ARCH_REGS,
    INT_ZERO_REG,
    ArchReg,
)
from repro.isa.values import (
    significant_bits,
    fits_in_bits,
    sign_extend,
    is_all_zeros_or_ones,
    fp_exponent_bits,
    fp_significand_bits,
    pack_fp,
    MAX_UINT64,
)
from repro.isa.instruction import MicroOp, SourceOperand

__all__ = [
    "OpClass",
    "RegClass",
    "LATENCY",
    "is_branch",
    "is_load",
    "is_store",
    "is_mem",
    "is_fp",
    "NUM_INT_ARCH_REGS",
    "NUM_FP_ARCH_REGS",
    "INT_ZERO_REG",
    "ArchReg",
    "significant_bits",
    "fits_in_bits",
    "sign_extend",
    "is_all_zeros_or_ones",
    "fp_exponent_bits",
    "fp_significand_bits",
    "pack_fp",
    "MAX_UINT64",
    "MicroOp",
    "SourceOperand",
]
