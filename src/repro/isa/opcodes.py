"""Operation classes for the synthetic micro-op ISA.

Latencies follow common SimpleScalar ``sim-outorder`` defaults, which is
what the paper's simulator was derived from: single-cycle integer ALU,
3-cycle multiply, 20-cycle divide, FP add/mul pipelined at 3-4 cycles,
long FP divide.  Loads have a 1-cycle address-generation component; the
cache hierarchy supplies the rest of their latency.
"""

from __future__ import annotations

import enum


class RegClass(enum.IntEnum):
    """Register file class: the machine has split INT and FP files."""

    INT = 0
    FP = 1


class OpClass(enum.IntEnum):
    """Micro-op operation classes.

    The class determines execution latency, which register file the
    destination lives in, and how the pipeline treats the instruction
    (memory ops go through the LSQ, branches resolve at execute and may
    redirect fetch).
    """

    INT_ALU = 0
    INT_MUL = 1
    INT_DIV = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    CALL = 6
    RETURN = 7
    FP_ADD = 8
    FP_MUL = 9
    FP_DIV = 10
    FP_LOAD = 11
    FP_STORE = 12
    NOP = 13


#: Fixed execution latency per op class, in cycles.  Loads use this as the
#: address-generation latency; cache access latency is added on top by the
#: memory hierarchy.
LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.INT_DIV: 20,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.FP_ADD: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 12,
    OpClass.FP_LOAD: 1,
    OpClass.FP_STORE: 1,
    OpClass.NOP: 1,
}

_BRANCH_CLASSES = frozenset({OpClass.BRANCH, OpClass.CALL, OpClass.RETURN})
_LOAD_CLASSES = frozenset({OpClass.LOAD, OpClass.FP_LOAD})
_STORE_CLASSES = frozenset({OpClass.STORE, OpClass.FP_STORE})
_FP_CLASSES = frozenset(
    {OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD, OpClass.FP_STORE}
)

#: Precomputed per-opcode tables, indexed by ``OpClass`` value.  The
#: cycle-level core consults opcode kind and latency for every dynamic
#: micro-op, so these are tuples (C-level indexing) rather than set
#: membership tests or dict lookups.
LATENCY_BY_CLASS = tuple(LATENCY[op] for op in OpClass)
IS_BRANCH = tuple(op in _BRANCH_CLASSES for op in OpClass)
IS_LOAD = tuple(op in _LOAD_CLASSES for op in OpClass)
IS_STORE = tuple(op in _STORE_CLASSES for op in OpClass)
IS_MEM = tuple(op in _LOAD_CLASSES or op in _STORE_CLASSES for op in OpClass)
IS_FP = tuple(op in _FP_CLASSES for op in OpClass)
DEST_REG_CLASS = tuple(
    RegClass.FP
    if op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD)
    else RegClass.INT
    for op in OpClass
)


def is_branch(op: OpClass) -> bool:
    """Return True for control-transfer micro-ops."""
    return op in _BRANCH_CLASSES


def is_load(op: OpClass) -> bool:
    """Return True for loads (INT or FP)."""
    return op in _LOAD_CLASSES


def is_store(op: OpClass) -> bool:
    """Return True for stores (INT or FP)."""
    return op in _STORE_CLASSES


def is_mem(op: OpClass) -> bool:
    """Return True for any memory micro-op (occupies an LSQ slot)."""
    return op in _LOAD_CLASSES or op in _STORE_CLASSES


def is_fp(op: OpClass) -> bool:
    """Return True for micro-ops executed in the floating-point cluster."""
    return op in _FP_CLASSES


def dest_reg_class(op: OpClass) -> RegClass:
    """Register class of the destination a micro-op of this class writes."""
    if op in (OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV, OpClass.FP_LOAD):
        return RegClass.FP
    return RegClass.INT
