"""Architected (logical) register definitions.

The paper targets the Alpha AXP ISA: 32 integer registers (r31 reads as
zero) and 32 floating-point registers (f31 reads as zero).  The rename map
tables in :mod:`repro.rename` are sized by these constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import RegClass

#: Number of architected integer registers (Alpha: r0..r31).
NUM_INT_ARCH_REGS = 32

#: Number of architected floating-point registers (Alpha: f0..f31).
NUM_FP_ARCH_REGS = 32

#: The integer register hard-wired to zero (Alpha r31).  The generator
#: never uses it as a destination and the renamer treats reads of it as an
#: always-ready immediate zero.
INT_ZERO_REG = 31

#: The FP register hard-wired to zero (Alpha f31).
FP_ZERO_REG = 31


@dataclass(frozen=True)
class ArchReg:
    """An architected register name: (register class, index)."""

    reg_class: RegClass
    index: int

    def __post_init__(self) -> None:
        limit = NUM_INT_ARCH_REGS if self.reg_class == RegClass.INT else NUM_FP_ARCH_REGS
        if not 0 <= self.index < limit:
            raise ValueError(
                f"register index {self.index} out of range for {self.reg_class.name}"
            )

    @property
    def is_zero(self) -> bool:
        """True if this is the hard-wired zero register of its class."""
        if self.reg_class == RegClass.INT:
            return self.index == INT_ZERO_REG
        return self.index == FP_ZERO_REG

    def __repr__(self) -> str:
        prefix = "r" if self.reg_class == RegClass.INT else "f"
        return f"{prefix}{self.index}"


def num_arch_regs(reg_class: RegClass) -> int:
    """Number of architected registers in the given class."""
    if reg_class == RegClass.INT:
        return NUM_INT_ARCH_REGS
    return NUM_FP_ARCH_REGS
