"""Micro-op representation.

A :class:`MicroOp` is one element of a trace.  It carries the full
dataflow fact set the simulator needs: which architected registers are
read and written, the value each read is *expected* to observe (used to
assert dataflow correctness end-to-end through rename, inlining, and the
register file), the produced value, the memory address for loads/stores,
and branch metadata.

Micro-ops use ``__slots__`` — the cycle-level simulator allocates and
touches millions of them, and attribute-dict overhead dominates otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.isa.opcodes import IS_BRANCH, IS_LOAD, IS_MEM, IS_STORE, OpClass, RegClass


class SourceOperand:
    """A source register read, with the value dataflow says it must see.

    ``expected_value`` is the producer's result (or the initial register
    content).  The simulator asserts that the value actually delivered to
    the ALU — whether from the physical register file, the bypass network,
    or an inlined immediate in the map/payload RAM — equals this.  Any PRI
    bookkeeping bug (e.g. the WAR violation of Figure 6) surfaces as a
    mismatch here.
    """

    __slots__ = ("reg_class", "index", "expected_value")

    def __init__(self, reg_class: RegClass, index: int, expected_value: int) -> None:
        self.reg_class = reg_class
        self.index = index
        self.expected_value = expected_value

    def __repr__(self) -> str:
        prefix = "r" if self.reg_class == RegClass.INT else "f"
        return f"{prefix}{self.index}={self.expected_value:#x}"


class MicroOp:
    """One dynamic instruction of a synthetic trace."""

    __slots__ = (
        "seq",
        "pc",
        "op",
        "sources",
        "dest_class",
        "dest",
        "result",
        "mem_addr",
        "taken",
        "target",
        "is_indirect",
        "is_branch",
        "is_load",
        "is_store",
        "is_mem",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: OpClass,
        sources: Tuple[SourceOperand, ...] = (),
        dest_class: RegClass = RegClass.INT,
        dest: Optional[int] = None,
        result: int = 0,
        mem_addr: Optional[int] = None,
        taken: bool = False,
        target: int = 0,
        is_indirect: bool = False,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.sources = sources
        self.dest_class = dest_class
        self.dest = dest
        self.result = result
        self.mem_addr = mem_addr
        self.taken = taken
        self.target = target
        self.is_indirect = is_indirect
        # Kind flags, resolved once at construction: the pipeline reads
        # these for every dynamic instance of the op, so they are plain
        # attributes rather than properties over set membership.
        self.is_branch = IS_BRANCH[op]
        self.is_load = IS_LOAD[op]
        self.is_store = IS_STORE[op]
        self.is_mem = IS_MEM[op]

    @property
    def writes_register(self) -> bool:
        return self.dest is not None

    def validate(self) -> None:
        """Raise ValueError if the micro-op is internally inconsistent.

        The trace generator calls this on every op it emits; the pipeline
        relies on these invariants without rechecking them.
        """
        if self.is_load or self.is_store:
            if self.mem_addr is None:
                raise ValueError(f"memory op {self} lacks an address")
        elif self.mem_addr is not None:
            raise ValueError(f"non-memory op {self} carries an address")
        if self.is_store and self.dest is not None:
            raise ValueError(f"store {self} must not write a register")
        if self.is_branch and self.dest is not None and self.op != OpClass.CALL:
            raise ValueError(f"branch {self} must not write a register")
        if len(self.sources) > 2:
            raise ValueError(f"{self} has more than two source operands")

    def __repr__(self) -> str:
        dest = ""
        if self.dest is not None:
            prefix = "r" if self.dest_class == RegClass.INT else "f"
            dest = f" -> {prefix}{self.dest}={self.result:#x}"
        return f"MicroOp(#{self.seq} pc={self.pc:#x} {self.op.name}{dest})"
