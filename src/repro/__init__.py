"""repro — a reproduction of "Physical Register Inlining"
(Lipasti, Mestan, Gunadi; ISCA 2004).

A cycle-level out-of-order superscalar simulator, built from scratch in
Python, implementing the paper's physical register inlining (PRI)
mechanism, the early-release (ER) baseline it compares against, and the
full evaluation harness that regenerates every table and figure.

Quickstart::

    from repro import four_wide, generate_trace, simulate

    config = four_wide()
    trace = generate_trace("gzip", 20_000)
    base = simulate(config, trace)
    pri = simulate(config.with_pri(), trace)
    print(f"speedup: {pri.ipc / base.ipc:.3f}")

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-versus-measured results.
"""

from repro.config import (
    MachineConfig,
    PriConfig,
    BranchConfig,
    MemoryConfig,
    CacheConfig,
    WarPolicy,
    CheckpointPolicy,
    four_wide,
    eight_wide,
    PRF_SWEEP_SIZES,
    EFFECTIVELY_INFINITE_REGS,
)
from repro.core.machine import Machine, SimulationError, simulate
from repro.core.stats import SimStats, LifetimeStats
from repro.workloads import (
    BenchmarkProfile,
    SPEC_INT,
    SPEC_FP,
    ALL_BENCHMARKS,
    get_profile,
    TraceGenerator,
    generate_trace,
    Trace,
)

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "PriConfig",
    "BranchConfig",
    "MemoryConfig",
    "CacheConfig",
    "WarPolicy",
    "CheckpointPolicy",
    "four_wide",
    "eight_wide",
    "PRF_SWEEP_SIZES",
    "EFFECTIVELY_INFINITE_REGS",
    "Machine",
    "SimulationError",
    "simulate",
    "SimStats",
    "LifetimeStats",
    "BenchmarkProfile",
    "SPEC_INT",
    "SPEC_FP",
    "ALL_BENCHMARKS",
    "get_profile",
    "TraceGenerator",
    "generate_trace",
    "Trace",
    "__version__",
]
