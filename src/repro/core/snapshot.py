"""Versioned, pickle-free machine checkpointing.

:func:`take_snapshot` flattens one mid-run :class:`~repro.core.machine.Machine`
(and its attached golden-model oracle) into a plain JSON-serializable
dict; :func:`restore_snapshot` installs that image into a freshly
constructed machine built from the *same* :class:`~repro.config.MachineConfig`,
after which :meth:`Machine.resume` continues the run bit-identically —
the resumed run's final :class:`~repro.core.stats.SimStats` equals an
uninterrupted run's.

Serialization strategy (no object graphs, no pickling):

* in-flight instructions are dumped by value and identified by ``seq``;
  their micro-op is *not* serialized — it is recovered as
  ``trace[trace_idx]``, which is why :func:`restore_snapshot` demands the
  identical trace (name, seed, length);
* checkpoints are identified by ``branch_seq``; the manager's stack and
  the ER-pending list store sequence numbers only;
* the scheduler's ready heap and waiter lists, the payload-RAM consumer
  records, and the pending event heap reference instructions by ``seq``.
  Events whose instruction has left the ROB (committed or squashed) are
  dropped at restore — their handlers would have no-opped anyway;
* the LSQ's store-forwarding index is rebuilt from ROB program order
  rather than serialized.

The format carries an explicit schema version (:data:`SNAPSHOT_VERSION`)
plus the machine's config digest and the trace identity; any mismatch
raises :class:`SnapshotError` instead of resuming a subtly different
machine.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Dict, List

from repro.branch.unit import BranchPrediction
from repro.config import config_digest
from repro.core.inflight import InFlight, SourceRecord
from repro.core.stats import SimStats
from repro.isa.opcodes import RegClass
from repro.rename.checkpoints import Checkpoint
from repro.workloads.trace import Trace

#: Schema version.  Bump on any change to the layout below; restore
#: refuses mismatched versions rather than guessing.
#:
#: v2: the event heap became a timer wheel (events carry no counter and
#: are stored in delivery order), _EV_TIMER payloads carry the wait
#: generation token, scheduler waiter entries are [seq, token] pairs, and
#: in-flight instructions serialize ``wait_token``.
SNAPSHOT_VERSION = 2

_CLASSES = ((RegClass.INT, "int"), (RegClass.FP, "fp"))


class SnapshotError(RuntimeError):
    """A snapshot image cannot be taken or restored (version, config, or
    trace mismatch; machine not fresh)."""


# ===================================================================== dump


def _dump_sources(instr: InFlight) -> List[list]:
    return [
        [rec.mode, int(rec.reg_class), rec.preg, rec.gen, rec.value,
         rec.read_done, rec.counted]
        for rec in instr.sources
    ]


def _dump_instr(instr: InFlight) -> Dict:
    pred = instr.prediction
    return {
        "seq": instr.seq,
        "trace_idx": instr.trace_idx,
        "sources": _dump_sources(instr),
        "dest_preg": instr.dest_preg,
        "dest_gen": instr.dest_gen,
        "prev_preg": instr.prev_preg,
        "prev_gen": instr.prev_gen,
        "dest_vid": instr.dest_vid,
        "prev_vid": instr.prev_vid,
        "fetch_cycle": instr.fetch_cycle,
        "rename_cycle": instr.rename_cycle,
        "issue_cycle": instr.issue_cycle,
        "complete_cycle": instr.complete_cycle,
        "not_before": instr.not_before,
        "missing": instr.missing,
        "in_scheduler": instr.in_scheduler,
        "issued": instr.issued,
        "completed": instr.completed,
        "squashed": instr.squashed,
        "committed": instr.committed,
        "issue_token": instr.issue_token,
        "wait_token": instr.wait_token,
        "replays": instr.replays,
        "prediction": (
            None if pred is None else
            [pred.pred_taken, pred.pred_target, pred.mispredicted,
             pred.history_before]
        ),
        "checkpoint": (
            None if instr.checkpoint is None else instr.checkpoint.branch_seq
        ),
        "mispredicted": instr.mispredicted,
        "mem_latency": instr.mem_latency,
        "store_data_ready": instr.store_data_ready,
    }


def _dump_checkpoint(ckpt: Checkpoint) -> Dict:
    return {
        "branch_seq": ckpt.branch_seq,
        "snapshots": [
            [int(cls), [[m, v] for m, v in zip(modes, values)]]
            for cls, (modes, values) in ckpt.snapshots.items()
        ],
        "gens": (
            None if ckpt.gens is None else
            [[int(cls), list(gens)] for cls, gens in ckpt.gens.items()]
        ),
        "ras": list(ckpt.ras),
        "history": ckpt.history,
        "resolve_released": ckpt.resolve_released,
        "commit_released": ckpt.commit_released,
    }


def _dump_regfile(rf) -> Dict:
    return {
        "state": [int(s) for s in rf.state],
        "gen": list(rf.gen),
        "value": list(rf.value),
        "lreg": list(rf.lreg),
        "owner_seq": list(rf.owner_seq),
        "ready_select": list(rf.ready_select),
        "pred_ready": list(rf.pred_ready),
        "inline_pending": list(rf.inline_pending),
        "retire_pending": list(rf.retire_pending),
        "alloc_cycle": list(rf.alloc_cycle),
        "write_cycle": list(rf.write_cycle),
        "last_read": list(rf.last_read),
        "allocated_count": rf.allocated_count,
        # Policy-appropriate list form (FIFO order, or the ordered
        # policy's heap array); the config digest guards against
        # restoring across allocation policies.
        "free_queue": rf.free_list.serialize(),
        "duplicate_releases": rf.free_list.duplicate_releases,
    }


def _dump_cache(cache) -> Dict:
    return {
        "sets": [list(tags) for tags in cache._sets],
        "hits": cache.hits,
        "misses": cache.misses,
    }


# Event kinds (mirrors machine.py; imported lazily there to avoid cycles).
_EV_WAKE = 0
_EV_TIMER = 4


def _dump_events(wheel: Dict[int, list]) -> List[list]:
    """Flatten the timer wheel in delivery order (cycle, bucket order)."""
    out = []
    for cycle in sorted(wheel):
        for kind, payload in wheel[cycle]:
            if kind == _EV_WAKE:
                cls, preg = payload
                encoded = [int(cls), preg]
            else:  # READ / COMPLETE / RETIRE / TIMER: (instr, token)
                instr, token = payload
                encoded = [instr.seq, token]
            out.append([cycle, kind, encoded])
    return out


def take_snapshot(machine) -> Dict:
    """Flatten ``machine`` into a JSON-serializable dict (see module
    docstring for the schema)."""
    if machine.trace is None:
        raise SnapshotError("cannot snapshot a machine that has not started")
    trace = machine.trace

    # Checkpoint universe: the live stack, resolved-but-uncommitted ER
    # holders, and any ROB branch's recovery target — deduped by seq.
    ckpts_by_seq: Dict[int, Checkpoint] = {}
    for ckpt in machine.ckpts._stack:
        ckpts_by_seq[ckpt.branch_seq] = ckpt
    for ckpt in machine.ckpts._er_pending:
        ckpts_by_seq[ckpt.branch_seq] = ckpt
    for instr in machine.rob:
        if instr.checkpoint is not None:
            ckpts_by_seq[instr.checkpoint.branch_seq] = instr.checkpoint

    # Payload-RAM consumer records, referenced as (owner seq, source idx).
    consumer_records = []
    for cls, name in _CLASSES:
        for preg, records in enumerate(machine._consumer_records[cls]):
            if not records:
                continue
            refs = []
            for rec, owner in records:
                try:
                    idx = owner.sources.index(rec)
                except ValueError:
                    continue
                refs.append([owner.seq, idx])
            if refs:
                consumer_records.append([int(cls), preg, refs])

    sched = machine.sched
    waiters = [
        [key[0], key[1], [[instr.seq, token] for instr, token in entries]]
        for key, entries in sched._waiters.items()
        if entries
    ]

    unit = machine.branch_unit
    data = {
        "version": SNAPSHOT_VERSION,
        "config_digest": config_digest(machine.cfg),
        "trace": {"name": trace.name, "seed": trace.seed, "length": len(trace)},
        "scalars": {
            "now": machine.now,
            "seq": machine._seq,
            "committed_target": machine._committed_target,
            "last_commit_cycle": machine._last_commit_cycle,
            "cycle_limit": machine._cycle_limit,
            "fetch_idx": machine._fetch_idx,
            "fetch_stall_until": machine._fetch_stall_until,
            "next_vid": machine._next_vid,
        },
        "stats": machine.stats.to_dict(),
        "rf": {name: _dump_regfile(machine.rf[cls]) for cls, name in _CLASSES},
        "maps": {
            name: [[m, v]
                   for m, v in zip(machine.maps[cls].modes,
                                   machine.maps[cls].values)]
            for cls, name in _CLASSES
        },
        "refcounts": {
            name: [list(arr) for arr in machine.refcounts[cls].snapshot()]
            for cls, name in _CLASSES
        },
        "checkpoints": {
            "objects": [_dump_checkpoint(c) for c in ckpts_by_seq.values()],
            "stack": [c.branch_seq for c in machine.ckpts._stack],
            "er_pending": [c.branch_seq for c in machine.ckpts._er_pending],
            "taken": machine.ckpts.taken,
            "patches_applied": machine.ckpts.patches_applied,
        },
        "branch": {
            "history": unit.history,
            "predictions": unit.predictions,
            "direction_mispredicts": unit.direction_mispredicts,
            "target_mispredicts": unit.target_mispredicts,
            "bimodal": list(unit.predictor.bimodal.table.entries),
            "gshare": list(unit.predictor.gshare.table.entries),
            "selector": list(unit.predictor.selector.entries),
            "btb": [[[tag, target] for tag, target in entries]
                    for entries in unit.btb._sets],
            "ras": list(unit.ras._stack),
        },
        "memory": {
            "il1": _dump_cache(machine.memory.il1),
            "dl1": _dump_cache(machine.memory.dl1),
            "l2": _dump_cache(machine.memory.l2),
        },
        "rob": [_dump_instr(instr) for instr in machine.rob],
        "vregs": [
            [vid, None if v.owner is None else v.owner.seq, int(v.reg_class),
             v.preg, v.preg_gen, v.pred_ready, v.ready_select, v.value,
             v.written]
            for vid, v in machine._vregs.items()
        ],
        "scheduler": {
            "occupancy": sched.occupancy,
            "max_occupancy": sched.max_occupancy,
            "ready": sorted(seq for seq, _ in sched._ready),
            "waiters": waiters,
        },
        "lsq": {"forwards": machine.lsq.forwards},
        "events": _dump_events(machine._events),
        "consumer_records": consumer_records,
        "preg_waiters": {
            name: [instr.seq for instr in machine._preg_waiters[cls]]
            for cls, name in _CLASSES
        },
        "fetch_buffer": [
            [trace_idx, fetch_cycle]
            for _, trace_idx, fetch_cycle in machine._fetch_buffer
        ],
        "auditor": (
            None if machine.auditor is None else {
                "audits_run": machine.auditor.audits_run,
                "last_committed": machine.auditor._last_committed,
            }
        ),
        "oracle": (
            None if machine.oracle is None
            else machine.oracle.golden.snapshot()
        ),
    }
    return data


# ================================================================== restore


def _load_instr(trace: Trace, data: Dict) -> InFlight:
    op = trace[data["trace_idx"]]
    instr = InFlight(op, data["seq"], data["trace_idx"], data["fetch_cycle"])
    instr.sources = [
        SourceRecord(mode, RegClass(cls), preg, gen, value, counted=counted)
        for mode, cls, preg, gen, value, read_done, counted in data["sources"]
    ]
    for rec, dumped in zip(instr.sources, data["sources"]):
        rec.read_done = dumped[5]
    instr.dest_preg = data["dest_preg"]
    instr.dest_gen = data["dest_gen"]
    instr.prev_preg = data["prev_preg"]
    instr.prev_gen = data["prev_gen"]
    instr.dest_vid = data["dest_vid"]
    instr.prev_vid = data["prev_vid"]
    instr.rename_cycle = data["rename_cycle"]
    instr.issue_cycle = data["issue_cycle"]
    instr.complete_cycle = data["complete_cycle"]
    instr.not_before = data["not_before"]
    instr.missing = data["missing"]
    instr.in_scheduler = data["in_scheduler"]
    instr.issued = data["issued"]
    instr.completed = data["completed"]
    instr.squashed = data["squashed"]
    instr.committed = data["committed"]
    instr.issue_token = data["issue_token"]
    instr.wait_token = data["wait_token"]
    instr.replays = data["replays"]
    pred = data["prediction"]
    if pred is not None:
        instr.prediction = BranchPrediction(*pred)
    instr.mispredicted = data["mispredicted"]
    instr.mem_latency = data["mem_latency"]
    instr.store_data_ready = data["store_data_ready"]
    return instr


def _load_checkpoint(data: Dict) -> Checkpoint:
    snapshots = {}
    for cls, entries in data["snapshots"]:
        modes = [mode for mode, _ in entries]
        values = [value for _, value in entries]
        snapshots[RegClass(cls)] = (modes, values)
    gens = None
    if data["gens"] is not None:
        gens = {RegClass(cls): list(values) for cls, values in data["gens"]}
    ckpt = Checkpoint(
        data["branch_seq"], snapshots, list(data["ras"]), data["history"], gens
    )
    ckpt.resolve_released = data["resolve_released"]
    ckpt.commit_released = data["commit_released"]
    return ckpt


def _load_regfile(rf, data: Dict) -> None:
    if len(data["state"]) != rf.num_regs:
        raise SnapshotError(
            f"{rf.name}: snapshot has {len(data['state'])} registers but the "
            f"machine was built with {rf.num_regs}"
        )
    rf.state = list(data["state"])
    rf.gen = list(data["gen"])
    rf.value = list(data["value"])
    rf.lreg = list(data["lreg"])
    rf.owner_seq = list(data["owner_seq"])
    rf.ready_select = list(data["ready_select"])
    rf.pred_ready = list(data["pred_ready"])
    rf.inline_pending = list(data["inline_pending"])
    rf.retire_pending = list(data["retire_pending"])
    rf.alloc_cycle = list(data["alloc_cycle"])
    rf.write_cycle = list(data["write_cycle"])
    rf.last_read = list(data["last_read"])
    rf.allocated_count = data["allocated_count"]
    rf.free_list.restore(data["free_queue"])
    rf.free_list.duplicate_releases = data["duplicate_releases"]


def _load_cache(cache, data: Dict) -> None:
    if len(data["sets"]) != cache.num_sets:
        raise SnapshotError(
            f"{cache.name}: snapshot geometry does not match the machine"
        )
    cache._sets = [list(tags) for tags in data["sets"]]
    cache.hits = data["hits"]
    cache.misses = data["misses"]


def restore_snapshot(machine, data: Dict, trace: Trace) -> None:
    """Install ``data`` (from :func:`take_snapshot`) into a freshly built
    ``machine``.  Validates schema version, config digest, and trace
    identity before touching any state."""
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot schema version {version!r} is not supported "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    digest = config_digest(machine.cfg)
    if data["config_digest"] != digest:
        raise SnapshotError(
            f"snapshot was taken under config {data['config_digest']} but "
            f"this machine is configured as {digest}: resuming would "
            f"silently simulate a different machine"
        )
    ident = data["trace"]
    if (ident["name"] != trace.name or ident["seed"] != trace.seed
            or ident["length"] != len(trace)):
        raise SnapshotError(
            f"snapshot belongs to trace {ident['name']!r} "
            f"(seed {ident['seed']}, {ident['length']} ops) but got "
            f"{trace.name!r} (seed {trace.seed}, {len(trace)} ops)"
        )
    if machine.trace is not None:
        raise SnapshotError(
            "restore() requires a freshly constructed machine "
            "(this one has already run)"
        )
    machine.trace = trace
    machine._trace_ops = list(trace.ops)

    scalars = data["scalars"]
    machine.now = scalars["now"]
    machine._seq = scalars["seq"]
    machine._committed_target = scalars["committed_target"]
    machine._last_commit_cycle = scalars["last_commit_cycle"]
    machine._cycle_limit = scalars["cycle_limit"]
    machine._fetch_idx = scalars["fetch_idx"]
    machine._fetch_stall_until = scalars["fetch_stall_until"]
    machine._next_vid = scalars["next_vid"]
    machine.stats = SimStats.from_dict(data["stats"])

    for cls, name in _CLASSES:
        _load_regfile(machine.rf[cls], data["rf"][name])
        table = machine.maps[cls]
        entries = data["maps"][name]
        if len(entries) != table.num_logical:
            raise SnapshotError(f"{name} map size mismatch")
        table.modes[:] = [mode for mode, _ in entries]
        table.values[:] = [value for _, value in entries]
        consumer, checkpoint, er_checkpoint = data["refcounts"][name]
        counts = machine.refcounts[cls]
        counts._consumer = list(consumer)
        counts._checkpoint = list(checkpoint)
        counts._er_checkpoint = list(er_checkpoint)

    # Checkpoints first (ROB branches reference them by branch_seq).
    ck_data = data["checkpoints"]
    by_branch = {
        c["branch_seq"]: _load_checkpoint(c) for c in ck_data["objects"]
    }
    if machine.ckpts.track_refs:
        # Pin lists are derived state (the pointer entries of the restored
        # shadow maps, post-patching), not part of the snapshot payload.
        for ckpt in by_branch.values():
            ckpt.pins = {
                cls: ckpt.pointer_entries(cls) for cls in ckpt.snapshots
            }
    machine.ckpts._stack = [by_branch[s] for s in ck_data["stack"]]
    machine.ckpts._er_pending = [by_branch[s] for s in ck_data["er_pending"]]
    machine.ckpts.taken = ck_data["taken"]
    machine.ckpts.patches_applied = ck_data["patches_applied"]

    machine.rob = deque()
    by_seq: Dict[int, InFlight] = {}
    for dumped in data["rob"]:
        instr = _load_instr(trace, dumped)
        if dumped["checkpoint"] is not None:
            instr.checkpoint = by_branch[dumped["checkpoint"]]
        machine.rob.append(instr)
        by_seq[instr.seq] = instr

    machine._vregs = {}
    for vid, owner_seq, cls, preg, preg_gen, pred_ready, ready_select, \
            value, written in data["vregs"]:
        from repro.core.machine import _VReg  # lazy: avoids import cycle

        owner = by_seq.get(owner_seq) if owner_seq is not None else None
        v = _VReg(owner, RegClass(cls))
        v.preg = preg
        v.preg_gen = preg_gen
        v.pred_ready = pred_ready
        v.ready_select = ready_select
        v.value = value
        v.written = written
        machine._vregs[vid] = v

    sched = machine.sched
    sched_data = data["scheduler"]
    sched.occupancy = sched_data["occupancy"]
    sched.max_occupancy = sched_data["max_occupancy"]
    # A sorted list satisfies the heap invariant; entries whose
    # instruction left the ROB would be skipped by pop_ready anyway.
    sched._ready = [
        (seq, by_seq[seq]) for seq in sched_data["ready"] if seq in by_seq
    ]
    sched._waiters = {}
    for cls, preg, entries in sched_data["waiters"]:
        bucket = [
            (by_seq[seq], token) for seq, token in entries if seq in by_seq
        ]
        if bucket:
            sched._waiters[(cls, preg)] = bucket

    # LSQ membership is exactly the ROB's memory ops; rebuild the
    # store-forwarding index in program order.
    lsq = machine.lsq
    lsq.occupancy = 0
    lsq._stores_by_addr = {}
    lsq.forwards = data["lsq"]["forwards"]
    for instr in machine.rob:
        if instr.op.is_load or instr.op.is_store:
            lsq.occupancy += 1
            if instr.op.is_store:
                lsq._stores_by_addr.setdefault(
                    instr.op.mem_addr, []
                ).append(instr)

    # Events are stored in delivery order, so appending rebuilds each
    # wheel bucket with its original insertion order.
    wheel: Dict[int, list] = {}
    for cycle, kind, payload in data["events"]:
        if kind == _EV_WAKE:
            cls, preg = payload
            decoded = (RegClass(cls), preg)
        else:  # READ / COMPLETE / RETIRE / TIMER: [seq, token]
            seq, token = payload
            instr = by_seq.get(seq)
            if instr is None:
                continue  # its handler would no-op (instruction gone)
            decoded = (instr, token)
        wheel.setdefault(cycle, []).append((kind, decoded))
    machine._events = wheel

    for records in machine._consumer_records.values():
        for cell in records:
            cell.clear()
    for cls, preg, refs in data["consumer_records"]:
        cell = machine._consumer_records[RegClass(cls)][preg]
        for seq, idx in refs:
            owner = by_seq.get(seq)
            if owner is not None:
                cell.append((owner.sources[idx], owner))

    for cls, name in _CLASSES:
        machine._preg_waiters[cls] = deque(
            by_seq[s] for s in data["preg_waiters"][name] if s in by_seq
        )

    machine._fetch_buffer = deque(
        (trace[idx], idx, fetch_cycle)
        for idx, fetch_cycle in data["fetch_buffer"]
    )

    unit = machine.branch_unit
    branch = data["branch"]
    unit.history = branch["history"]
    unit.predictions = branch["predictions"]
    unit.direction_mispredicts = branch["direction_mispredicts"]
    unit.target_mispredicts = branch["target_mispredicts"]
    unit.predictor.bimodal.table.entries = list(branch["bimodal"])
    unit.predictor.gshare.table.entries = list(branch["gshare"])
    unit.predictor.selector.entries = list(branch["selector"])
    if len(branch["btb"]) != unit.btb.num_sets:
        raise SnapshotError("BTB geometry does not match the machine")
    unit.btb._sets = [
        [(tag, target) for tag, target in entries] for entries in branch["btb"]
    ]
    unit.ras._stack = list(branch["ras"])

    _load_cache(machine.memory.il1, data["memory"]["il1"])
    _load_cache(machine.memory.dl1, data["memory"]["dl1"])
    _load_cache(machine.memory.l2, data["memory"]["l2"])

    if machine.auditor is not None and data["auditor"] is not None:
        machine.auditor.audits_run = data["auditor"]["audits_run"]
        machine.auditor._last_committed = data["auditor"]["last_committed"]

    if machine.cfg.oracle.enabled:
        from repro.oracle.golden import CommitOracle  # lazy: avoids cycle

        machine.oracle = CommitOracle(machine.cfg.oracle, trace)
        if data["oracle"] is not None:
            machine.oracle.golden.restore(data["oracle"])


# ================================================================= file I/O

#: Artifact kind tag of snapshot files in the store envelope.
SNAPSHOT_KIND = "machine-snapshot"


def save_snapshot(data: Dict, path) -> None:
    """Atomically write a snapshot image to ``path`` inside the store's
    checksummed envelope (:mod:`repro.store`): a crash mid-write leaves
    the previous checkpoint intact, and any later corruption of the file
    is detected at load time instead of resuming a subtly wrong
    machine."""
    from repro.store import write_json_artifact  # lazy: optional machinery

    write_json_artifact(os.fspath(path), SNAPSHOT_KIND, SNAPSHOT_VERSION, data)


def load_snapshot(path) -> Dict:
    """Read a snapshot image written by :func:`save_snapshot`.

    Reads both the checksummed envelope and legacy plain-JSON images;
    damage raises a typed :class:`~repro.store.errors.ArtifactError`
    (the schema-version check itself stays in :func:`restore_snapshot`,
    which also validates config and trace identity)."""
    from repro.store import read_json_artifact  # lazy: optional machinery

    data, _meta = read_json_artifact(os.fspath(path), SNAPSHOT_KIND)
    return data
