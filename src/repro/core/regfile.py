"""Physical register file model.

Tracks, per physical register: allocation state, an allocation
*generation* counter (used to detect stale references — the hardware
analogue is "this register now belongs to someone else", i.e. the WAR
violation of Figure 6), the value, the owning logical register and
producer, scheduling readiness, and the lifetime timestamps behind
Figures 1, 8 and 11.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.core.stats import LifetimeStats
from repro.rename.free_list import FreeList

#: Sentinel cycle meaning "not yet known / never".
NEVER = 1 << 60


class RegState(enum.IntEnum):
    FREE = 0
    ALLOC = 1  # allocated, result not yet produced
    WRITTEN = 2  # result produced


# Plain-int mirrors: the state array stores and compares these on the
# per-instruction path (IntEnum equality carries avoidable overhead, and
# member access is a class attribute lookup per use).
_FREE = int(RegState.FREE)
_ALLOC = int(RegState.ALLOC)
_WRITTEN = int(RegState.WRITTEN)


class PhysRegFile:
    """One class's physical register file plus its free list."""

    __slots__ = (
        "num_regs",
        "name",
        "free_list",
        "state",
        "gen",
        "value",
        "lreg",
        "owner_seq",
        "ready_select",
        "pred_ready",
        "inline_pending",
        "retire_pending",
        "alloc_cycle",
        "write_cycle",
        "last_read",
        "allocated_count",
    )

    def __init__(self, num_regs: int, name: str = "int",
                 alloc_policy: str = "ordered") -> None:
        self.num_regs = num_regs
        self.name = name
        self.free_list = FreeList(range(num_regs), policy=alloc_policy)
        self.state: List[int] = [_FREE] * num_regs
        self.gen: List[int] = [0] * num_regs
        self.value: List[int] = [0] * num_regs
        self.lreg: List[int] = [-1] * num_regs
        self.owner_seq: List[int] = [-1] * num_regs
        # Scheduling: cycle at which a consumer *selected* then will read
        # valid data (select-time coordinates), and the speculative wakeup
        # broadcast cycle.
        self.ready_select: List[int] = [NEVER] * num_regs
        self.pred_ready: List[int] = [NEVER] * num_regs
        # PRI: register was inlined and awaits freeing.
        self.inline_pending: List[bool] = [False] * num_regs
        # PRI+ER hazard guard: between a producer's writeback and its
        # retire-stage significance check, the register must not be
        # ER-freed — a reallocation to the *same* logical register would
        # let the late map update pass the Figure-7 WAW check (which
        # compares physical register numbers) and clobber the new mapping.
        self.retire_pending: List[bool] = [False] * num_regs
        # Lifetime stamps.
        self.alloc_cycle: List[int] = [0] * num_regs
        self.write_cycle: List[Optional[int]] = [None] * num_regs
        self.last_read: List[Optional[int]] = [None] * num_regs
        self.allocated_count = 0

    # -------------------------------------------------------- allocation

    def allocate(self, lreg: int, owner_seq: int, cycle: int) -> Optional[int]:
        """Take a register off the free list for ``lreg``; None if empty."""
        preg = self.free_list.allocate()
        if preg is None:
            return None
        self.state[preg] = _ALLOC
        self.gen[preg] += 1
        self.lreg[preg] = lreg
        self.owner_seq[preg] = owner_seq
        self.ready_select[preg] = NEVER
        self.pred_ready[preg] = NEVER
        self.inline_pending[preg] = False
        self.retire_pending[preg] = False
        self.alloc_cycle[preg] = cycle
        self.write_cycle[preg] = None
        self.last_read[preg] = None
        self.allocated_count += 1
        return preg

    def allocate_architectural(self, lreg: int, value: int) -> int:
        """Reset-time allocation of a committed architectural register."""
        preg = self.allocate(lreg, owner_seq=-1, cycle=0)
        if preg is None:
            raise RuntimeError("not enough physical registers for architected state")
        self.write(preg, value, cycle=0)
        self.ready_select[preg] = 0
        self.pred_ready[preg] = 0
        return preg

    # ------------------------------------------------------------ access

    def write(self, preg: int, value: int, cycle: int) -> None:
        self.state[preg] = _WRITTEN
        self.value[preg] = value
        self.write_cycle[preg] = cycle

    def read_stamp(self, preg: int, cycle: int) -> None:
        last = self.last_read[preg]
        if last is None or cycle > last:
            self.last_read[preg] = cycle

    # ----------------------------------------------------------- release

    def release(self, preg: int, cycle: int, lifetimes: LifetimeStats = None) -> bool:
        """Free a register.  Duplicate releases (already free) return
        False and change nothing — the tolerance Section 3.2 requires."""
        if self.state[preg] == _FREE:
            # Keep the free list's duplicate accounting consistent.
            self.free_list.release(preg)
            return False
        if not self.free_list.release(preg):
            raise RuntimeError(f"p{preg} allocated but present in free list")
        if lifetimes is not None:
            lifetimes.record(
                self.alloc_cycle[preg],
                self.write_cycle[preg],
                self.last_read[preg],
                cycle,
            )
        self.state[preg] = _FREE
        self.inline_pending[preg] = False
        self.ready_select[preg] = NEVER
        self.pred_ready[preg] = NEVER
        self.allocated_count -= 1
        return True

    # ------------------------------------------------- capacity extension

    def extend(self, new_num_regs: int) -> None:
        """Grow the register file to ``new_num_regs``, the added registers
        free and never-allocated.

        Under the ``ordered`` allocation policy this reproduces, exactly,
        the state a ``new_num_regs``-register machine would have reached
        at this point — provided this file's free list has never emptied:
        lowest-first allocation never touches registers above the old
        capacity while lower ones are free, so the extras are fresh in
        both machines (see :mod:`repro.vector.engine`).
        """
        if new_num_regs < self.num_regs:
            raise ValueError(
                f"cannot shrink {self.name} register file "
                f"({self.num_regs} -> {new_num_regs})"
            )
        added = new_num_regs - self.num_regs
        if not added:
            return
        self.free_list.extend_range(self.num_regs, new_num_regs)
        self.state.extend([_FREE] * added)
        self.gen.extend([0] * added)
        self.value.extend([0] * added)
        self.lreg.extend([-1] * added)
        self.owner_seq.extend([-1] * added)
        self.ready_select.extend([NEVER] * added)
        self.pred_ready.extend([NEVER] * added)
        self.inline_pending.extend([False] * added)
        self.retire_pending.extend([False] * added)
        self.alloc_cycle.extend([0] * added)
        self.write_cycle.extend([None] * added)
        self.last_read.extend([None] * added)
        self.num_regs = new_num_regs

    # ----------------------------------------------------------- queries

    def is_free(self, preg: int) -> bool:
        return self.state[preg] == _FREE

    def gen_matches(self, preg: int, gen: int) -> bool:
        return self.gen[preg] == gen

    def allocated_pregs(self) -> List[int]:
        """Registers currently allocated (state != FREE), for auditing."""
        return [p for p, s in enumerate(self.state) if s != RegState.FREE]

    def assert_consistent(self) -> None:
        """Debug invariant: free list and state array agree, register by
        register (not just in aggregate)."""
        self.free_list.assert_well_formed()
        free_from_state = {
            p for p, s in enumerate(self.state) if s == RegState.FREE
        }
        free_from_list = self.free_list.free_pregs()
        if free_from_state != free_from_list:
            ghosts = sorted(free_from_list - free_from_state)
            missing = sorted(free_from_state - free_from_list)
            raise AssertionError(
                f"{self.name}: free list and state array disagree "
                f"(in list but allocated: {ghosts}; "
                f"free but not in list: {missing})"
            )
        if self.allocated_count != self.num_regs - len(free_from_state):
            raise AssertionError(
                f"{self.name}: allocated_count={self.allocated_count} but "
                f"state array has {self.num_regs - len(free_from_state)} "
                f"allocated registers"
            )
