"""Load/store queue.

Bounds in-flight memory operations (Table 1: 256 entries) and provides
store-to-load forwarding: a load whose address matches an older,
uncommitted store is serviced at L1-hit latency without a cache access.
Memory disambiguation is perfect (loads never violate ordering), matching
the SimpleScalar substrate the paper built on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.inflight import InFlight


class LoadStoreQueue:
    """Occupancy tracking + a store address index for forwarding."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.occupancy = 0
        #: address -> list of in-flight store InFlights (program order)
        self._stores_by_addr: Dict[int, List[InFlight]] = {}
        self.forwards = 0

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    def insert(self, instr: InFlight) -> None:
        if not self.has_space:
            raise RuntimeError("LSQ overflow: caller must check has_space")
        self.occupancy += 1
        if instr.op.is_store:
            self._stores_by_addr.setdefault(instr.op.mem_addr, []).append(instr)

    def remove(self, instr: InFlight) -> None:
        """Drop an entry at commit or squash."""
        self.occupancy -= 1
        if self.occupancy < 0:
            raise RuntimeError("LSQ occupancy underflow")
        if instr.op.is_store:
            stores = self._stores_by_addr.get(instr.op.mem_addr)
            if stores:
                try:
                    stores.remove(instr)
                except ValueError:
                    pass
                if not stores:
                    self._stores_by_addr.pop(instr.op.mem_addr, None)

    def forwarding_store(self, load: InFlight) -> bool:
        """True if an older live store to the same address can forward."""
        stores = self._stores_by_addr.get(load.op.mem_addr)
        if not stores:
            return False
        for store in stores:
            if store.seq < load.seq and not store.squashed:
                return True
        return False
