"""Simulation statistics.

Gathers everything the paper's figures need:

* IPC (Table 2, Figures 9/10/12 speedups);
* register lifetime split into the three phases of Figure 1/8 —
  allocate→write, write→last-read, last-read→release;
* average register file occupancy (Figure 11);
* PRI/ER event counters (inlines, early frees, duplicate deallocations,
  WAR pins) used in analysis and tests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class LifetimeStats:
    """Accumulates physical-register lifetime phases (cycles)."""

    releases: int = 0
    alloc_to_write: int = 0
    write_to_last_read: int = 0
    last_read_to_release: int = 0

    def record(self, alloc, write, last_read, release) -> None:
        """Record one register's lifetime at release time.

        ``write``/``last_read`` may be None for registers that were never
        written (squashed producers) or never read; the phases collapse
        accordingly, as in the paper's measurement.
        """
        write_eff = write if write is not None else release
        read_eff = last_read if last_read is not None else write_eff
        read_eff = max(read_eff, write_eff)
        self.releases += 1
        self.alloc_to_write += max(0, write_eff - alloc)
        self.write_to_last_read += max(0, read_eff - write_eff)
        self.last_read_to_release += max(0, release - read_eff)

    @property
    def avg_alloc_to_write(self) -> float:
        return self.alloc_to_write / self.releases if self.releases else 0.0

    @property
    def avg_write_to_last_read(self) -> float:
        return self.write_to_last_read / self.releases if self.releases else 0.0

    @property
    def avg_last_read_to_release(self) -> float:
        return self.last_read_to_release / self.releases if self.releases else 0.0

    @property
    def avg_total(self) -> float:
        return (
            self.avg_alloc_to_write
            + self.avg_write_to_last_read
            + self.avg_last_read_to_release
        )


@dataclass
class SimStats:
    """Top-level counters for one simulation run."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    renamed: int = 0
    issued: int = 0
    issue_replays: int = 0  # selects that failed verification (latency misspec)
    war_replays: int = 0  # REPLAY-policy WAR violations detected
    squashed: int = 0
    branches: int = 0
    mispredicts: int = 0
    rename_stall_regs: int = 0  # cycles rename stalled for a free register
    rename_stall_other: int = 0
    #: Virtual-physical mode: selects denied because no physical register
    #: was available to bind at issue.
    vp_alloc_stalls: int = 0
    #: Virtual-physical deadlock backstop: registers reclaimed from the
    #: youngest issued writer so the oldest writer could bind.
    vp_steals: int = 0

    # PRI / ER counters
    inline_attempts: int = 0  # narrow results seen at retire
    inlined: int = 0  # map entries actually rewritten (WAW check passed)
    inline_waw_dropped: int = 0  # narrow but entry already remapped (Fig 7)
    pri_early_frees: int = 0
    pri_frees_deferred: int = 0  # inlined but pinned by refs at retire time
    er_early_frees: int = 0
    duplicate_deallocs: int = 0

    #: Invariant audits performed (0 unless ``MachineConfig.audit`` is on).
    audits: int = 0

    # Golden-model oracle counters (0 unless ``MachineConfig.oracle`` on)
    oracle_commits: int = 0  # retired instructions compared at commit
    oracle_dest_checks: int = 0  # destination values actually observable
    oracle_unobserved: int = 0  # dests already reclaimed/inlined at commit
    oracle_arch_checks: int = 0  # full architectural-state comparisons

    # occupancy integrals (sum over cycles of allocated registers)
    occupancy_sum: Dict[str, int] = field(default_factory=lambda: {"int": 0, "fp": 0})
    lifetimes: Dict[str, LifetimeStats] = field(
        default_factory=lambda: {"int": LifetimeStats(), "fp": LifetimeStats()}
    )

    # branch predictor / cache summaries, filled at end of run
    branch_mispredict_rate: float = 0.0
    il1_miss_rate: float = 0.0
    dl1_miss_rate: float = 0.0
    l2_miss_rate: float = 0.0

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def avg_occupancy(self, reg_class: str = "int") -> float:
        return self.occupancy_sum[reg_class] / self.cycles if self.cycles else 0.0

    def lifetime(self, reg_class: str = "int") -> LifetimeStats:
        return self.lifetimes[reg_class]

    def to_dict(self) -> Dict:
        """Deep JSON-serializable form (journal cells, snapshots)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["lifetimes"] = {
            name: LifetimeStats(**fields)
            for name, fields in payload.get("lifetimes", {}).items()
        }
        return cls(**payload)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        life = self.lifetimes["int"]
        return (
            f"cycles={self.cycles} committed={self.committed} ipc={self.ipc:.3f} "
            f"mispredict_rate={self.branch_mispredict_rate:.3f} "
            f"dl1_miss={self.dl1_miss_rate:.3f} "
            f"int_occ={self.avg_occupancy('int'):.1f} "
            f"inlined={self.inlined} pri_frees={self.pri_early_frees} "
            f"er_frees={self.er_early_frees} "
            f"lifetime(int)={life.avg_total:.1f}cyc "
            f"[{life.avg_alloc_to_write:.1f}/{life.avg_write_to_last_read:.1f}/"
            f"{life.avg_last_read_to_release:.1f}]"
        )
