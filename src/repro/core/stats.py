"""Simulation statistics.

Gathers everything the paper's figures need:

* IPC (Table 2, Figures 9/10/12 speedups);
* register lifetime split into the three phases of Figure 1/8 —
  allocate→write, write→last-read, last-read→release;
* average register file occupancy (Figure 11);
* PRI/ER event counters (inlines, early frees, duplicate deallocations,
  WAR pins) used in analysis and tests.

Both containers use ``__slots__`` — the cycle-level core updates these
counters for every fetched/renamed/issued/committed micro-op, and the
attribute-dict overhead of an open class is measurable at that rate.
``to_dict``/``from_dict`` preserve the exact (deep) JSON layout the
dataclass versions produced, so journals and snapshots round-trip
unchanged.
"""

from __future__ import annotations

from typing import Dict

_LIFETIME_FIELDS = (
    "releases",
    "alloc_to_write",
    "write_to_last_read",
    "last_read_to_release",
)


class LifetimeStats:
    """Accumulates physical-register lifetime phases (cycles)."""

    __slots__ = _LIFETIME_FIELDS

    def __init__(
        self,
        releases: int = 0,
        alloc_to_write: int = 0,
        write_to_last_read: int = 0,
        last_read_to_release: int = 0,
    ) -> None:
        self.releases = releases
        self.alloc_to_write = alloc_to_write
        self.write_to_last_read = write_to_last_read
        self.last_read_to_release = last_read_to_release

    def record(self, alloc, write, last_read, release) -> None:
        """Record one register's lifetime at release time.

        ``write``/``last_read`` may be None for registers that were never
        written (squashed producers) or never read; the phases collapse
        accordingly, as in the paper's measurement.
        """
        write_eff = write if write is not None else release
        read_eff = last_read if last_read is not None else write_eff
        if read_eff < write_eff:
            read_eff = write_eff
        self.releases += 1
        if write_eff > alloc:
            self.alloc_to_write += write_eff - alloc
        if read_eff > write_eff:
            self.write_to_last_read += read_eff - write_eff
        if release > read_eff:
            self.last_read_to_release += release - read_eff

    def to_dict(self) -> Dict:
        return {name: getattr(self, name) for name in _LIFETIME_FIELDS}

    def __eq__(self, other) -> bool:
        return isinstance(other, LifetimeStats) and all(
            getattr(self, name) == getattr(other, name)
            for name in _LIFETIME_FIELDS
        )

    def __repr__(self) -> str:
        body = ", ".join(f"{n}={getattr(self, n)}" for n in _LIFETIME_FIELDS)
        return f"LifetimeStats({body})"

    @property
    def avg_alloc_to_write(self) -> float:
        return self.alloc_to_write / self.releases if self.releases else 0.0

    @property
    def avg_write_to_last_read(self) -> float:
        return self.write_to_last_read / self.releases if self.releases else 0.0

    @property
    def avg_last_read_to_release(self) -> float:
        return self.last_read_to_release / self.releases if self.releases else 0.0

    @property
    def avg_total(self) -> float:
        return (
            self.avg_alloc_to_write
            + self.avg_write_to_last_read
            + self.avg_last_read_to_release
        )


#: (name, default) for every scalar counter, in serialization order —
#: the order the old dataclass declared its fields, which is the order
#: ``to_dict`` emits and journals/snapshots already store.
_SCALAR_FIELDS = (
    ("cycles", 0),
    ("committed", 0),
    ("fetched", 0),
    ("renamed", 0),
    ("issued", 0),
    ("issue_replays", 0),  # selects that failed verification (latency misspec)
    ("war_replays", 0),  # REPLAY-policy WAR violations detected
    ("squashed", 0),
    ("branches", 0),
    ("mispredicts", 0),
    ("rename_stall_regs", 0),  # cycles rename stalled for a free register
    ("rename_stall_other", 0),
    # Virtual-physical mode: selects denied because no physical register
    # was available to bind at issue; and the deadlock backstop's steals.
    ("vp_alloc_stalls", 0),
    ("vp_steals", 0),
    # PRI / ER counters
    ("inline_attempts", 0),  # narrow results seen at retire
    ("inlined", 0),  # map entries actually rewritten (WAW check passed)
    ("inline_waw_dropped", 0),  # narrow but entry already remapped (Fig 7)
    ("pri_early_frees", 0),
    ("pri_frees_deferred", 0),  # inlined but pinned by refs at retire time
    ("er_early_frees", 0),
    ("duplicate_deallocs", 0),
    # Invariant audits performed (0 unless ``MachineConfig.audit`` is on).
    ("audits", 0),
    # Golden-model oracle counters (0 unless ``MachineConfig.oracle`` on)
    ("oracle_commits", 0),  # retired instructions compared at commit
    ("oracle_dest_checks", 0),  # destination values actually observable
    ("oracle_unobserved", 0),  # dests already reclaimed/inlined at commit
    ("oracle_arch_checks", 0),  # full architectural-state comparisons
)

_FLOAT_FIELDS = (
    ("branch_mispredict_rate", 0.0),
    ("il1_miss_rate", 0.0),
    ("dl1_miss_rate", 0.0),
    ("l2_miss_rate", 0.0),
)


class SimStats:
    """Top-level counters for one simulation run."""

    __slots__ = tuple(n for n, _ in _SCALAR_FIELDS) + (
        "occupancy_sum",
        "lifetimes",
    ) + tuple(n for n, _ in _FLOAT_FIELDS)

    def __init__(self, **overrides) -> None:
        for name, default in _SCALAR_FIELDS:
            setattr(self, name, overrides.pop(name, default))
        # occupancy integrals (sum over cycles of allocated registers)
        self.occupancy_sum: Dict[str, int] = overrides.pop(
            "occupancy_sum", None
        ) or {"int": 0, "fp": 0}
        self.lifetimes: Dict[str, LifetimeStats] = overrides.pop(
            "lifetimes", None
        ) or {"int": LifetimeStats(), "fp": LifetimeStats()}
        # branch predictor / cache summaries, filled at end of run
        for name, default in _FLOAT_FIELDS:
            setattr(self, name, overrides.pop(name, default))
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise TypeError(f"SimStats got unexpected fields: {unknown}")

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def avg_occupancy(self, reg_class: str = "int") -> float:
        return self.occupancy_sum[reg_class] / self.cycles if self.cycles else 0.0

    def lifetime(self, reg_class: str = "int") -> LifetimeStats:
        return self.lifetimes[reg_class]

    def to_dict(self) -> Dict:
        """Deep JSON-serializable form (journal cells, snapshots).

        Field order matches the historical dataclass layout exactly.
        """
        out = {name: getattr(self, name) for name, _ in _SCALAR_FIELDS}
        out["occupancy_sum"] = dict(self.occupancy_sum)
        out["lifetimes"] = {
            name: life.to_dict() for name, life in self.lifetimes.items()
        }
        for name, _ in _FLOAT_FIELDS:
            out[name] = getattr(self, name)
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, SimStats) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (
            f"SimStats(cycles={self.cycles}, committed={self.committed}, "
            f"ipc={self.ipc:.3f})"
        )

    @classmethod
    def from_dict(cls, data: Dict) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["lifetimes"] = {
            name: LifetimeStats(**fields)
            for name, fields in payload.get("lifetimes", {}).items()
        }
        return cls(**payload)

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        life = self.lifetimes["int"]
        return (
            f"cycles={self.cycles} committed={self.committed} ipc={self.ipc:.3f} "
            f"mispredict_rate={self.branch_mispredict_rate:.3f} "
            f"dl1_miss={self.dl1_miss_rate:.3f} "
            f"int_occ={self.avg_occupancy('int'):.1f} "
            f"inlined={self.inlined} pri_frees={self.pri_early_frees} "
            f"er_frees={self.er_early_frees} "
            f"lifetime(int)={life.avg_total:.1f}cyc "
            f"[{life.avg_alloc_to_write:.1f}/{life.avg_write_to_last_read:.1f}/"
            f"{life.avg_last_read_to_release:.1f}]"
        )
