"""In-flight instruction state (ROB entry + payload RAM record).

A :class:`SourceRecord` is exactly the paper's payload-RAM operand field:
either a physical register pointer (REG mode) or an immediate (IMM mode).
PRI's *ideal* WAR policy performs an associative search over these
records and patches REG pointers to immediates in place; the *refcount*
policy instead pins the register until the record's read completes.
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.unit import BranchPrediction
from repro.isa.instruction import MicroOp

SRC_REG = 0
SRC_IMM = 1


class SourceRecord:
    """One source operand as held in the payload RAM."""

    __slots__ = ("mode", "reg_class", "preg", "gen", "value", "read_done", "counted")

    def __init__(
        self,
        mode: int,
        reg_class,
        preg: int,
        gen: int,
        value: int,
        counted: bool,
    ) -> None:
        self.mode = mode
        self.reg_class = reg_class
        self.preg = preg  # -1 in IMM mode
        self.gen = gen
        self.value = value  # expected/delivered value
        self.read_done = False
        #: True while this record holds a consumer reference on ``preg``.
        self.counted = counted

    def patch_to_immediate(self, value: int) -> None:
        """Ideal-policy payload update: replace the stale pointer."""
        self.mode = SRC_IMM
        self.value = value
        self.preg = -1

    def __repr__(self) -> str:
        if self.mode == SRC_IMM:
            return f"imm({self.value:#x})"
        return f"p{self.preg}@g{self.gen}"


class InFlight:
    """Everything the pipeline tracks for one dispatched micro-op."""

    __slots__ = (
        "op",
        "seq",
        "trace_idx",
        "sources",
        "dest_preg",
        "dest_gen",
        "prev_preg",
        "prev_gen",
        "dest_vid",
        "prev_vid",
        "fetch_cycle",
        "rename_cycle",
        "issue_cycle",
        "complete_cycle",
        "not_before",
        "missing",
        "in_scheduler",
        "issued",
        "completed",
        "squashed",
        "committed",
        "issue_token",
        "wait_token",
        "replays",
        "prediction",
        "checkpoint",
        "mispredicted",
        "mem_latency",
        "store_data_ready",
    )

    def __init__(self, op: MicroOp, seq: int, trace_idx: int, fetch_cycle: int) -> None:
        self.issue_token = 0
        self.wait_token = 0
        self.reinit(op, seq, trace_idx, fetch_cycle)

    def reinit(self, op: MicroOp, seq: int, trace_idx: int, fetch_cycle: int) -> None:
        """Reset for a fresh dynamic instance (object pooling).

        ``issue_token`` and ``wait_token`` deliberately survive: they are
        monotonic generation counters, so any stale reference to this
        object's previous life (a scheduler waiter entry, a timer event, a
        consumer record) fails its token check instead of corrupting the
        new instance.
        """
        self.op = op
        self.seq = seq
        self.trace_idx = trace_idx
        self.sources: List[SourceRecord] = []
        self.dest_preg = -1
        self.dest_gen = -1
        self.prev_preg = -1
        self.prev_gen = -1
        # Virtual-physical mode: encoded virtual tags (see machine._VID_FLAG).
        self.dest_vid = -1
        self.prev_vid = -1
        self.fetch_cycle = fetch_cycle
        self.rename_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.not_before = 0
        self.missing = 0
        self.in_scheduler = False
        self.issued = False
        self.completed = False
        self.squashed = False
        self.committed = False
        self.replays = 0
        self.prediction: Optional[BranchPrediction] = None
        self.checkpoint = None
        self.mispredicted = False
        self.mem_latency = 0
        self.store_data_ready = False

    @property
    def alive(self) -> bool:
        return not self.squashed

    def __repr__(self) -> str:
        flags = "".join(
            c
            for c, on in (
                ("S", self.in_scheduler),
                ("I", self.issued),
                ("C", self.completed),
                ("X", self.squashed),
                ("K", self.committed),
            )
            if on
        )
        return f"InFlight(#{self.seq} {self.op.op.name} [{flags}])"
