"""The cycle-level out-of-order machine.

Pipeline (Figure 5): ``Fetch | Decode | Rename | Queue | Sched | Disp |
Disp | RF | RF | Exe | Retire | Commit``.  The model is trace-driven and
event-assisted: a cycle loop advances fetch/rename/select/commit, while a
timer wheel of timed events delivers wakeup broadcasts, operand reads,
execution completions, and PRI retire-stage actions at the right cycles.
The wheel is a dict keyed by target cycle; each bucket preserves
insertion order, giving the same delivery order a (cycle, counter) heap
would, at O(1) per schedule instead of O(log n).

Timing conventions (all configurable via :class:`repro.config.MachineConfig`):

* an instruction fetched in cycle ``f`` can rename in ``f + frontend_depth - 1``;
* a producer selected in cycle ``t`` broadcasts its wakeup at ``t + L_assumed``,
  so a single-cycle dependent can be selected at ``t + 1``;
* its value is readable by any consumer selected at or after
  ``t + L_actual`` (``ready_select``), which differs from the broadcast
  only for loads that miss — dependents selected in that window are
  *selectively replayed* at select-time verification;
* operands are read (and consumer reference counts dropped) at
  ``select + rf_read_offset``;
* execution completes at ``select + exec_offset + L_actual``; PRI's
  significance check and late map update run ``retire_offset`` later;
* commit is in-order, up to ``width`` per cycle, after the retire stage.

Register reclamation schemes (Section 3 / Table 1):

* baseline — the previous mapping of an instruction's destination is
  freed when the instruction commits;
* ER — a register frees as soon as it is written, unmapped from the
  current map, referenced by no checkpoint, and read by all renamed
  consumers (Moudgill-style counters and flags);
* PRI — a narrow result is inlined into the map entry at retire (WAW
  check per Figure 7) and its register freed under the configured WAR
  policy (``refcount`` / ``ideal`` / ``replay``) and checkpoint policy
  (``ckptcount`` / ``lazy``).

Dataflow is *verified*: every operand delivered to execution is checked
against the value the trace's dataflow requires, and every physical
register read is checked against its allocation generation.  A
bookkeeping bug that would cause the paper's Figure 6 WAR violation
raises :class:`SimulationError` instead of silently corrupting results.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.branch.unit import BranchUnit
from repro.config import CheckpointPolicy, MachineConfig, WarPolicy
from repro.core.inflight import SRC_IMM, SRC_REG, InFlight, SourceRecord
from repro.core.lsq import LoadStoreQueue
from repro.core.regfile import NEVER, PhysRegFile, RegState
from repro.core.scheduler import Scheduler
from repro.core.stats import SimStats
from repro.isa.opcodes import LATENCY_BY_CLASS, OpClass, RegClass
from repro.isa.registers import FP_ZERO_REG, INT_ZERO_REG
from repro.memory.hierarchy import MemoryHierarchy
from repro.rename.checkpoints import CheckpointManager
from repro.rename.map_table import MODE_IMMEDIATE, MODE_POINTER, RenameMapTable
from repro.rename.refcount import RefCountTable
from repro.workloads.trace import Trace

# Event kinds, processed in (cycle, insertion-order).
_EV_WAKE = 0  # (reg_class, preg): speculative wakeup broadcast
_EV_READ = 1  # (instr, token): register-read stage
_EV_COMPLETE = 2  # (instr, token): end of execution
_EV_RETIRE = 3  # (instr, token): PRI significance check / map update
_EV_TIMER = 4  # (instr, wait_token): re-wake after a failed verification

_CLASS_NAMES = {RegClass.INT: "int", RegClass.FP: "fp"}

#: Virtual-physical mode: map pointers at or above this value encode a
#: virtual tag (``value - _VID_FLAG`` indexes the machine's vtag table)
#: rather than a physical register number.
_VID_FLAG = 1 << 40


class _VReg:
    """Virtual-tag table entry (virtual-physical mode).

    Carries the scheduling and value state that lives on the physical
    register in the conventional machine; the physical register bound at
    issue time (``preg``) only models capacity.
    """

    __slots__ = ("owner", "reg_class", "preg", "preg_gen", "pred_ready",
                 "ready_select", "value", "written")

    def __init__(self, owner, reg_class):
        self.owner = owner  # InFlight, or None for architectural state
        self.reg_class = reg_class
        self.preg = -1
        self.preg_gen = -1
        self.pred_ready = NEVER
        self.ready_select = NEVER
        self.value = 0
        self.written = False


class SimulationError(RuntimeError):
    """Raised when the simulated dataflow is provably corrupted (e.g. a
    WAR violation under a policy that must prevent them) or the machine
    deadlocks."""


class _RenamePressure(Exception):
    """Internal control-flow signal: rename found the destination class's
    free list empty while a pressure hook is armed (vector backend only —
    see :mod:`repro.vector.engine`).  Never escapes :meth:`Machine._rename`."""

    def __init__(self, dest_cls) -> None:
        super().__init__("rename register pressure")
        self.dest_cls = dest_cls


class Machine:
    """One configured machine instance.  Use :meth:`run` on a trace."""

    def __init__(self, config: MachineConfig) -> None:
        self.cfg = config
        self.stats = SimStats()
        self.branch_unit = BranchUnit(config.branch)
        self.memory = MemoryHierarchy(config.memory)
        pri = config.pri
        self.rf: Dict[RegClass, PhysRegFile] = {
            RegClass.INT: PhysRegFile(config.int_phys_regs, "int",
                                      alloc_policy=config.alloc_policy),
            RegClass.FP: PhysRegFile(config.fp_phys_regs, "fp",
                                     alloc_policy=config.alloc_policy),
        }
        self.maps: Dict[RegClass, RenameMapTable] = {
            RegClass.INT: RenameMapTable(32, pri.int_width_bits, fp_mode=False),
            RegClass.FP: RenameMapTable(32, 1, fp_mode=True),
        }
        self.refcounts: Dict[RegClass, RefCountTable] = {
            RegClass.INT: RefCountTable(config.int_phys_regs),
            RegClass.FP: RefCountTable(config.fp_phys_regs),
        }
        self._vp = config.virtual_physical
        if self._vp and config.early_release:
            raise ValueError(
                "virtual-physical allocation does not compose with the "
                "early-release scheme (see MachineConfig.virtual_physical)"
            )
        # Checkpoint reference counting exists to pin registers against
        # PRI/ER reclamation; a baseline machine never consults the
        # counts (and the auditor keys its recomputation off this flag),
        # so skip the per-branch add/drop work there too.
        self.ckpts = CheckpointManager(
            config.max_checkpoints,
            self.maps,
            self.refcounts,
            track_er_refs=config.early_release,
            track_refs=not self._vp and (pri.enabled or config.early_release),
            # Generation stamps exist solely for the auditor's
            # stale-checkpoint proof; skip the per-take stamping pass in
            # unaudited runs.
            gen_source=(
                None if self._vp or not config.audit.enabled
                else lambda cls: self.rf[cls].gen
            ),
        )
        self.ckpts.on_unref = self._after_unref
        # Virtual-physical state: vtag table, id counter, and per-class
        # queues of issued instructions waiting for a physical register.
        self._vregs: Dict[int, _VReg] = {}
        self._next_vid = 1
        self._preg_waiters: Dict[RegClass, deque] = {
            RegClass.INT: deque(), RegClass.FP: deque()
        }
        self.sched = Scheduler(config.scheduler_entries)
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.rob: deque = deque()

        self._track_refs = pri.enabled or config.early_release
        self._ideal_war = pri.enabled and pri.war_policy == WarPolicy.IDEAL
        self._replay_war = pri.enabled and pri.war_policy == WarPolicy.REPLAY
        self._lazy_ckpt = pri.enabled and pri.checkpoint_policy == CheckpointPolicy.LAZY
        # Hot-path scalars, flattened out of the (frozen dataclass) config:
        # the pipeline stages read these once or more per instruction.
        self._width = config.width
        self._rob_entries = config.rob_entries
        self._frontend_delta = config.frontend_depth - 1
        self._rf_read_offset = config.rf_read_offset
        self._exec_offset = config.exec_offset
        self._retire_offset = config.retire_offset
        self._perfect_icache = config.perfect_icache
        self._il1_shift = self.memory.il1.line_shift
        # Line of the last IL1 access, for the fetch fast path; -1 means
        # "unknown" (fresh machine or restored snapshot).
        self._il1_last_line = -1
        self._il1_hit = config.memory.il1.latency
        self._pri_enabled = pri.enabled
        self._er = config.early_release
        self._li_inline_cfg = pri.enabled and pri.inline_on_load_immediate
        #: Recycled payload-RAM records (see _commit).
        self._rec_pool: List[SourceRecord] = []
        # Payload-RAM index for the ideal policy's associative update:
        # per class, per preg, the live consumer records.
        self._consumer_records: Dict[RegClass, List[list]] = {
            cls: [[] for _ in range(rf.num_regs)] for cls, rf in self.rf.items()
        }

        #: Timer wheel: target cycle -> [(kind, payload), ...] in
        #: insertion order.  See the module docstring.
        self._events: Dict[int, List[tuple]] = {}
        #: Retired InFlight objects available for reuse (see _commit).
        self._pool: List[InFlight] = []
        self.now = 0
        self._seq = 0
        self._committed_target = 0
        self._last_commit_cycle = 0

        #: Armed only by the vector backend: called as
        #: ``hook(machine, dest_cls, budget_left)`` at the instant rename
        #: would stall on an empty free list, *before* the stall is
        #: accounted — the hook forks a larger-capacity clone at that
        #: exact boundary.  None on every scalar machine, so the hot
        #: path's only cost is one attribute test inside an already-taken
        #: stall branch.
        self._pressure_hook = None
        # End-of-cycle hooks (fault injection, tracing, watchdogs), the
        # optional self-auditing invariant checker, and the optional
        # golden-model differential oracle (built at reset, once the
        # trace is known).
        self._cycle_hooks: List = []
        self.auditor = None
        if config.audit.enabled:
            from repro.audit.auditor import InvariantAuditor  # lazy: avoids cycle

            self.auditor = InvariantAuditor(config.audit)
        self.oracle = None
        self._cycle_limit = NEVER

        # Fetch state.
        self.trace: Optional[Trace] = None
        self._trace_ops: List = []
        self._fetch_idx = 0
        self._fetch_buffer: deque = deque()
        self._fetch_stall_until = 0

    # ================================================================ API

    def run(
        self,
        trace: Trace,
        max_insts: Optional[int] = None,
        max_cycles: Optional[int] = None,
    ) -> SimStats:
        """Simulate ``trace`` until ``max_insts`` commits (default: all).

        Returns the populated :class:`~repro.core.stats.SimStats`.
        """
        self.reset(trace)
        target = len(trace) if max_insts is None else min(max_insts, len(trace))
        self._committed_target = target
        if target == 0:
            return self.stats
        self._cycle_limit = max_cycles if max_cycles is not None else NEVER
        return self._run_loop()

    def resume(self, max_cycles: Optional[int] = None) -> SimStats:
        """Continue a run restored from a snapshot (see :meth:`restore`).

        Runs until the original commit target, or ``max_cycles`` (an
        *absolute* cycle number, like the limit given to :meth:`run`).
        As with :meth:`run`, ``None`` means unbounded — a cycle limit the
        snapshotted attempt ran under is not inherited.
        """
        if self.trace is None:
            raise SimulationError(
                "resume() requires a restored machine: call restore() first"
            )
        self._cycle_limit = max_cycles if max_cycles is not None else NEVER
        if self.stats.committed >= self._committed_target:
            self._finalize()
            return self.stats
        return self._run_loop()

    def _run_loop(self) -> SimStats:
        target = self._committed_target
        limit = self._cycle_limit
        auditor = self.auditor
        oracle = self.oracle
        deadlock_after = self.cfg.deadlock_cycles
        stats = self.stats
        occupancy = stats.occupancy_sum
        rf_int = self.rf[RegClass.INT]
        rf_fp = self.rf[RegClass.FP]
        process_events = self._process_events
        commit = self._commit
        select = self._select
        rename = self._rename
        fetch = self._fetch
        # Occupancy integrals accumulate in locals and flush to the stats
        # object once per observation (hooks/auditor/oracle see current
        # values — snapshots taken mid-run must be exact) or at loop exit.
        occ_int = 0
        occ_fp = 0
        # Appended/removed in place, never rebound — aliasing is safe.
        cycle_hooks = self._cycle_hooks
        observed = auditor is not None or oracle is not None
        try:
            while stats.committed < target:
                if self.now >= limit:
                    break
                self.now += 1
                process_events()
                occ_int += rf_int.allocated_count
                occ_fp += rf_fp.allocated_count
                commit()
                select()
                rename()
                fetch()
                if cycle_hooks or observed:
                    if occ_int or occ_fp:
                        occupancy["int"] += occ_int
                        occupancy["fp"] += occ_fp
                        occ_int = occ_fp = 0
                    for hook in tuple(cycle_hooks):
                        hook(self)
                    if auditor is not None:
                        auditor.maybe_check(self)
                    if oracle is not None:
                        oracle.maybe_check(self)
                if self.now - self._last_commit_cycle > deadlock_after:
                    head = repr(self.rob[0]) if self.rob else "rob empty"
                    raise SimulationError(
                        f"deadlock: no commit since cycle {self._last_commit_cycle} "
                        f"(now {self.now}, watchdog {deadlock_after} cycles, "
                        f"{stats.committed}/{target} committed, {head})"
                    )
        finally:
            occupancy["int"] += occ_int
            occupancy["fp"] += occ_fp
        self._finalize()
        return self.stats

    def snapshot(self) -> dict:
        """Versioned, pickle-free image of the full machine (and oracle)
        state, suitable for ``json.dumps``.  See :mod:`repro.core.snapshot`."""
        from repro.core.snapshot import take_snapshot  # lazy: avoids cycle

        return take_snapshot(self)

    def restore(self, data: dict, trace: Trace) -> "Machine":
        """Install a :meth:`snapshot` image into this (freshly built,
        never-run) machine.  ``trace`` must be the same trace the
        snapshotted run used; continue with :meth:`resume`."""
        from repro.core.snapshot import restore_snapshot  # lazy: avoids cycle

        restore_snapshot(self, data, trace)
        return self

    def add_cycle_hook(self, hook) -> None:
        """Register ``hook(machine)`` to run at the end of every cycle.
        Used by the fault-injection harness and tests."""
        self._cycle_hooks.append(hook)

    def remove_cycle_hook(self, hook) -> None:
        self._cycle_hooks.remove(hook)

    def inflight_window(self) -> Tuple[int, int, int]:
        """(oldest seq, youngest seq, occupancy) of the ROB — the window
        the audit diagnostics report."""
        if not self.rob:
            return (-1, -1, 0)
        return (self.rob[0].seq, self.rob[-1].seq, len(self.rob))

    def warmup(self, trace: Trace) -> None:
        """Train predictors and warm caches on the trace's untimed prefix
        (the stand-in for the paper's 400M-instruction fast-forward)."""
        unit = self.branch_unit
        mem = self.memory
        fetch = mem.il1.access_latency
        data = mem.dl1.access_latency
        resolve = unit.resolve
        predict = unit.predict
        # Same-line IL1 accesses are skipped: a repeat access only moves
        # the already-MRU line to MRU and bumps the hit counter, and the
        # counters are zeroed below anyway.  Only the IL1 touches its
        # sets, so "same line as the previous access" proves residency.
        il1_shift = mem.il1.line_shift
        last_line = -1
        for op in trace.warmup_ops:
            line = op.pc >> il1_shift
            if line != last_line:
                fetch(op.pc)
                last_line = line
            if op.is_branch:
                resolve(op, predict(op))
            elif op.is_mem:
                data(op.mem_addr)
        unit.predictions = 0
        unit.direction_mispredicts = 0
        unit.target_mispredicts = 0
        mem.il1.hits = mem.il1.misses = 0
        mem.dl1.hits = mem.dl1.misses = 0
        mem.l2.hits = mem.l2.misses = 0

    def reset(self, trace: Trace) -> None:
        """Install architectural state from the trace's initial values."""
        if self.trace is not None:
            raise SimulationError(
                "Machine instances are single-run: construct a new Machine "
                "(or use repro.simulate) for each trace"
            )
        self.trace = trace
        self._trace_ops = list(trace.ops)
        if self.cfg.oracle.enabled:
            from repro.oracle.golden import CommitOracle  # lazy: avoids cycle

            self.oracle = CommitOracle(self.cfg.oracle, trace)
        self.warmup(trace)
        self._fetch_idx = 0
        self._fetch_buffer.clear()
        self._fetch_stall_until = 0
        for cls, initial in (
            (RegClass.INT, trace.initial_int),
            (RegClass.FP, trace.initial_fp),
        ):
            rf = self.rf[cls]
            table = self.maps[cls]
            zero = INT_ZERO_REG if cls == RegClass.INT else FP_ZERO_REG
            for lreg in range(table.num_logical):
                if lreg == zero:
                    continue
                preg = rf.allocate_architectural(lreg, initial[lreg])
                if self._vp:
                    vid = self._new_vreg(cls, owner=None)
                    v = self._vregs[vid]
                    v.preg = preg
                    v.preg_gen = rf.gen[preg]
                    v.value = initial[lreg]
                    v.pred_ready = 0
                    v.ready_select = 0
                    v.written = True
                    table.set_pointer(lreg, _VID_FLAG + vid)
                else:
                    table.set_pointer(lreg, preg)

    def _value_fault(self, kind: str, reason: str, **fields) -> None:
        """Raise a provable dataflow/WAR corruption.

        With the golden-model oracle attached, the failure is reported as
        a structured :class:`~repro.oracle.OracleDivergence` (trace index,
        register, expected vs. actual, in-flight window); otherwise as a
        plain :class:`SimulationError`, preserving historical behavior.
        """
        if self.oracle is not None:
            raise self.oracle.divergence(self, kind, reason, **fields)
        raise SimulationError(reason)

    def _new_vreg(self, reg_class: RegClass, owner) -> int:
        vid = self._next_vid
        self._next_vid += 1
        self._vregs[vid] = _VReg(owner, reg_class)
        return vid

    # ============================================================ events

    def _schedule(self, cycle: int, kind: int, payload) -> None:
        # An event scheduled during cycle N for a cycle <= N lands in the
        # N+1 bucket: _process_events has already run this cycle, and the
        # old event heap delivered such events at the next cycle's sweep.
        if cycle <= self.now:
            cycle = self.now + 1
        bucket = self._events.get(cycle)
        if bucket is None:
            self._events[cycle] = [(kind, payload)]
        else:
            bucket.append((kind, payload))

    def _process_events(self) -> None:
        events = self._events
        if not events:
            return
        bucket = events.pop(self.now, None)
        if bucket is None:
            return
        sched_wake = self.sched.wake
        for kind, payload in bucket:
            if kind == _EV_WAKE:
                sched_wake(payload[0], payload[1])
            elif kind == _EV_READ:
                instr, token = payload
                if not instr.squashed and instr.issue_token == token:
                    self._do_read(instr)
            elif kind == _EV_COMPLETE:
                instr, token = payload
                if not instr.squashed and instr.issue_token == token:
                    self._do_complete(instr)
            elif kind == _EV_RETIRE:
                instr, token = payload
                if not instr.squashed and instr.issue_token == token:
                    self._do_retire(instr)
            else:  # _EV_TIMER
                instr, token = payload
                self.sched.timer_wake(instr, token)

    # ============================================================= fetch

    def _fetch(self) -> None:
        now = self.now
        if now < self._fetch_stall_until:
            return
        buffer = self._fetch_buffer
        width = self._width
        if len(buffer) >= width * 2:
            return
        ops = self._trace_ops
        limit = len(ops)
        idx = self._fetch_idx
        if idx >= limit:
            return
        count = 0
        while count < width and idx < limit:
            op = ops[idx]
            if count == 0 and not self._perfect_icache:
                # Same-line fast path: the previous group's access left
                # this line MRU-resident (nothing else touches the IL1),
                # so a repeat access is a guaranteed hit — count it
                # without replaying the LRU update.
                line = op.pc >> self._il1_shift
                if line == self._il1_last_line:
                    self.memory.il1.hits += 1
                else:
                    latency = self.memory.il1.access_latency(op.pc)
                    self._il1_last_line = line
                    if latency > self._il1_hit:
                        # IL1 miss: the line arrives after the extra latency.
                        self._fetch_stall_until = now + (latency - self._il1_hit)
                        return
            buffer.append((op, idx, now))
            idx += 1
            count += 1
            if op.is_branch and op.taken:
                break  # Table 1: fetch stops at the first taken branch.
        self._fetch_idx = idx
        self.stats.fetched += count

    # ============================================================ rename

    def _rename(self) -> None:
        self._rename_budget(self._width)

    def _rename_budget(self, budget: int) -> None:
        """Rename up to ``budget`` instructions this cycle.

        Split out of :meth:`_rename` so a vector-backend clone — forked
        mid-rename at a register-exhaustion stall — can finish the cycle
        with exactly the budget its donor had left.
        """
        buffer = self._fetch_buffer
        if not buffer:
            return
        horizon = self.now - self._frontend_delta
        rename_one = self._try_rename_one
        popleft = buffer.popleft
        renamed = 0
        while budget and buffer:
            op, trace_idx, fetch_cycle = buffer[0]
            if fetch_cycle > horizon:
                break
            try:
                ok = rename_one(op, trace_idx, fetch_cycle)
            except _RenamePressure as pressure:
                # Flush the renamed count *before* the hook runs: the hook
                # deep-copies this machine, and the clone's stats must be
                # exactly what a larger-capacity machine would hold here.
                if renamed:
                    self.stats.renamed += renamed
                    renamed = 0
                self._pressure_hook(self, pressure.dest_cls, budget)
                # This machine then stalls exactly as it would have
                # without the hook (same counter, same break).
                self._stall(regs=True)
                break
            if not ok:
                break
            popleft()
            budget -= 1
            renamed += 1
        if renamed:
            self.stats.renamed += renamed

    def _stall(self, regs: bool) -> bool:
        if regs:
            self.stats.rename_stall_regs += 1
        else:
            self.stats.rename_stall_other += 1
        return False

    def _try_rename_one(self, op, trace_idx: int, fetch_cycle: int) -> bool:
        sched = self.sched
        if len(self.rob) >= self._rob_entries or sched.occupancy >= sched.capacity:
            return self._stall(regs=False)
        is_mem = op.is_mem
        if is_mem:
            lsq = self.lsq
            if lsq.occupancy >= lsq.capacity:
                return self._stall(regs=False)
        if op.is_branch and self.ckpts.full:
            return self._stall(regs=False)

        now = self.now
        maps = self.maps
        rf_map = self.rf
        track_refs = self._track_refs
        dest_cls = op.dest_class
        li_inline = False
        dest = op.dest
        if dest is not None:
            li_inline = (
                self._li_inline_cfg
                and op.op == OpClass.INT_ALU
                and not op.sources
                and maps[RegClass.INT].value_fits(op.result)
            )
            # Virtual-physical mode allocates at issue, not rename.
            if not self._vp and not li_inline and rf_map[dest_cls].free_list.empty:
                if self._pressure_hook is not None:
                    raise _RenamePressure(dest_cls)
                return self._stall(regs=True)

        self._seq += 1
        pool = self._pool
        if pool:
            instr = pool.pop()
            instr.reinit(op, self._seq, trace_idx, fetch_cycle)
        else:
            instr = InFlight(op, self._seq, trace_idx, fetch_cycle)
        instr.rename_cycle = now

        # --- source operands: read the map (direct modes/values indexing;
        # this is the hottest loop in rename).  Payload records are
        # recycled from _rec_pool when available (field stores on a spare
        # object beat a constructor call here).
        unready: List[Tuple[RegClass, int]] = []
        sources = instr.sources
        append_source = sources.append
        rec_pool = self._rec_pool
        ideal_war = self._ideal_war
        for src in op.sources:
            cls = src.reg_class
            zero = INT_ZERO_REG if cls == RegClass.INT else FP_ZERO_REG
            if src.index == zero:
                if rec_pool:
                    rec = rec_pool.pop()
                    rec.mode = SRC_IMM
                    rec.reg_class = cls
                    rec.preg = -1
                    rec.gen = -1
                    rec.value = 0
                    rec.read_done = False
                    rec.counted = False
                else:
                    rec = SourceRecord(SRC_IMM, cls, -1, -1, 0, counted=False)
                append_source(rec)
                continue
            table = maps[cls]
            mapped = table.values[src.index]
            if table.modes[src.index] == MODE_IMMEDIATE:
                if mapped != src.expected_value:
                    self._value_fault(
                        "map-immediate",
                        f"map immediate corrupt for {src!r} at #{instr.seq}: "
                        f"map={mapped:#x} expected={src.expected_value:#x}",
                        trace_index=instr.trace_idx,
                        seq=instr.seq,
                        reg_class=_CLASS_NAMES[cls],
                        lreg=src.index,
                        expected=src.expected_value,
                        actual=mapped,
                    )
                if rec_pool:
                    rec = rec_pool.pop()
                    rec.mode = SRC_IMM
                    rec.reg_class = cls
                    rec.preg = -1
                    rec.gen = -1
                    rec.value = mapped
                    rec.read_done = False
                    rec.counted = False
                else:
                    rec = SourceRecord(SRC_IMM, cls, -1, -1, mapped, counted=False)
                append_source(rec)
                continue
            preg = mapped
            if preg < 0:
                self._value_fault(
                    "arch-map",
                    f"unmapped logical register in {src!r}",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    reg_class=_CLASS_NAMES[cls],
                    lreg=src.index,
                )
            if preg >= _VID_FLAG:
                # Virtual-physical mode: the source names a virtual tag.
                v = self._vregs[preg - _VID_FLAG]
                if v.value != src.expected_value and v.written:
                    self._value_fault(
                        "vtag",
                        f"vtag table corrupt for {src!r} at #{instr.seq}",
                        trace_index=instr.trace_idx,
                        seq=instr.seq,
                        reg_class=_CLASS_NAMES[cls],
                        lreg=src.index,
                        expected=src.expected_value,
                        actual=v.value,
                    )
                rec = SourceRecord(SRC_REG, cls, preg, 0, src.expected_value,
                                   counted=False)
                append_source(rec)
                if v.pred_ready > now:
                    unready.append((cls, preg))
                continue
            rf = rf_map[cls]
            if rec_pool:
                rec = rec_pool.pop()
                rec.mode = SRC_REG
                rec.reg_class = cls
                rec.preg = preg
                rec.gen = rf.gen[preg]
                rec.value = src.expected_value
                rec.read_done = False
                rec.counted = track_refs
            else:
                rec = SourceRecord(
                    SRC_REG, cls, preg, rf.gen[preg], src.expected_value,
                    counted=track_refs,
                )
            if track_refs:
                self.refcounts[cls].add_consumer(preg)
            if ideal_war:
                self._consumer_records[cls][preg].append((rec, instr))
            append_source(rec)
            if rf.pred_ready[preg] > now:
                unready.append((cls, preg))

        # --- destination: allocate and update the map.
        if dest is not None and self._vp:
            table = maps[dest_cls]
            prev = table.pointer_of(dest)
            if prev >= _VID_FLAG:
                instr.prev_vid = prev
            if li_inline:
                table.set_immediate(dest, op.result)
                self.stats.inlined += 1
                self.stats.inline_attempts += 1
            else:
                vid = self._new_vreg(dest_cls, instr)
                instr.dest_vid = _VID_FLAG + vid
                table.set_pointer(dest, instr.dest_vid)
        elif dest is not None:
            table = maps[dest_cls]
            # pointer_of / set_pointer inlined: direct mode/value array
            # access on the per-instruction path.
            prev = -1 if table.modes[dest] == MODE_IMMEDIATE else table.values[dest]
            instr.prev_preg = prev
            rf = rf_map[dest_cls]
            if prev >= 0:
                instr.prev_gen = rf.gen[prev]
            if li_inline:
                table.set_immediate(dest, op.result)
                instr.dest_preg = -1
                self.stats.inlined += 1
                self.stats.inline_attempts += 1
            else:
                preg = rf.allocate(dest, instr.seq, now)
                if preg is None:  # checked above; defensive
                    raise SimulationError("free list empty after check")
                if ideal_war:
                    # Only the ideal-WAR policy populates these lists.
                    self._consumer_records[dest_cls][preg].clear()
                instr.dest_preg = preg
                instr.dest_gen = rf.gen[preg]
                table.modes[dest] = MODE_POINTER
                table.values[dest] = preg
            if prev >= 0 and self._er:
                self._maybe_free_er(dest_cls, prev)

        # --- branches: predict and checkpoint.
        if op.is_branch:
            instr.prediction = self.branch_unit.predict(op)
            instr.mispredicted = instr.prediction.mispredicted
            instr.checkpoint = self.ckpts.take(
                instr.seq, self.branch_unit.ras.snapshot(), self.branch_unit.history
            )
            if instr.checkpoint is None:
                raise SimulationError("checkpoint pool exhausted after check")

        if is_mem:
            self.lsq.insert(instr)
        sched.insert(instr, unready)
        self.rob.append(instr)
        return True

    # ============================================================ select

    def _select(self) -> None:
        if not self.sched._ready:
            return
        slots = self._width
        pop_ready = self.sched.pop_ready
        verify_and_issue = self._verify_and_issue
        while slots:
            instr = pop_ready()
            if instr is None:
                return
            ok = verify_and_issue(instr)
            slots -= 1
            if not ok:
                self.stats.issue_replays += 1
                instr.replays += 1

    def _verify_and_issue(self, instr: InFlight) -> bool:
        """Select-time verification; issue on success, re-park on failure."""
        now = self.now
        rf_map = self.rf
        never_waits: Optional[List[Tuple[RegClass, int]]] = None
        finite_waits: Optional[List[int]] = None
        for rec in instr.sources:
            if rec.mode != SRC_REG or rec.read_done:
                continue
            preg = rec.preg
            if preg >= _VID_FLAG:
                # Virtual tags are never reused: only readiness to check.
                ready = self._vregs[preg - _VID_FLAG].ready_select
                if ready > now:
                    if ready >= NEVER:
                        if never_waits is None:
                            never_waits = []
                        never_waits.append((rec.reg_class, preg))
                    else:
                        if finite_waits is None:
                            finite_waits = []
                        finite_waits.append(ready)
                continue
            rf = rf_map[rec.reg_class]
            if rf.gen[preg] != rec.gen or rf.state[preg] == RegState.FREE:
                # The producer's register was reclaimed before this
                # consumer read it: Figure 6's WAR violation.
                if self._replay_war:
                    self.stats.war_replays += 1
                    if rec.counted:
                        rec.counted = False
                        self.refcounts[rec.reg_class].drop_consumer(preg)
                    rec.patch_to_immediate(rec.value)
                    if finite_waits is None:
                        finite_waits = []
                    finite_waits.append(now + self.cfg.war_replay_penalty)
                    continue
                self._value_fault(
                    "war-select",
                    f"WAR violation: p{preg} reclaimed under "
                    f"{self.cfg.pri.war_policy} before #{instr.seq} read it",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    reg_class=_CLASS_NAMES[rec.reg_class],
                    preg=preg,
                    expected=rec.value,
                )
            ready = rf.ready_select[preg]
            if ready > now:
                if ready >= NEVER:
                    if never_waits is None:
                        never_waits = []
                    never_waits.append((rec.reg_class, preg))
                else:
                    if finite_waits is None:
                        finite_waits = []
                    finite_waits.append(ready)
        if never_waits is not None or finite_waits is not None:
            token = self.sched.park(
                instr,
                never_waits if never_waits is not None else (),
                extra_missing=0 if finite_waits is None else len(finite_waits),
            )
            if finite_waits is not None:
                for cycle in finite_waits:
                    self._schedule(cycle, _EV_TIMER, (instr, token))
            return False
        if self._vp and instr.dest_vid >= 0 and instr.dest_preg < 0:
            if not self._bind_dest_preg(instr):
                self.stats.vp_alloc_stalls += 1
                return False
        self._issue(instr)
        return True

    def _bind_dest_preg(self, instr: InFlight) -> bool:
        """Virtual-physical mode: claim a physical register at issue.

        The last free register of a class is reserved for the oldest
        un-issued register-writing instruction — otherwise younger work
        could strand the in-order commit point without a register and
        deadlock the machine.  Denied instructions queue and are re-woken
        when a register of their class frees.

        The reserve alone is not sufficient: it guarantees the oldest
        unissued writer a register *once*, but nothing guarantees that
        instruction's commit returns one (its previous mapping may have
        been inline-freed long ago and re-consumed by younger writers),
        so the *next* head writer can still face an empty free list that
        will never refill.  When that happens the machine steals a
        register back from the youngest issued writer (see
        :meth:`_steal_preg`).
        """
        cls = instr.op.dest_class
        rf = self.rf[cls]
        free = len(rf.free_list)
        if free == 0 or (free == 1 and not self._oldest_unissued_writer(instr)):
            if not (free == 0 and self._oldest_unissued_writer(instr)
                    and self._steal_preg(cls, instr)):
                self._preg_waiters[cls].append(instr)
                instr.missing = 1
                return False
        preg = rf.allocate(instr.op.dest, instr.seq, self.now)
        v = self._vregs[instr.dest_vid - _VID_FLAG]
        v.preg = preg
        v.preg_gen = rf.gen[preg]
        instr.dest_preg = preg
        instr.dest_gen = rf.gen[preg]
        return True

    def _steal_preg(self, cls: RegClass, thief: InFlight) -> bool:
        """Deadlock backstop: reclaim the youngest issued, uncommitted
        writer's physical register so the oldest writer can bind.

        Safe under virtual-physical allocation because consumers read
        values through the vtag table, never through the register file:
        the victim's virtual register keeps its value and readiness, only
        the physical backing store is surrendered (the hardware analogue
        re-executes the victim; the timing model charges nothing extra,
        which slightly flatters VP but keeps the run live and correct).
        Committed mappings are never stolen — they live outside the ROB.
        """
        rf = self.rf[cls]
        for victim in reversed(self.rob):
            if (victim.squashed or victim.committed or not victim.issued
                    or victim.seq <= thief.seq
                    or victim.dest_preg < 0
                    or victim.op.dest_class != cls):
                continue
            preg = victim.dest_preg
            # The preg may already have been inline-freed at retire (and
            # possibly re-allocated): only a live, generation-matching
            # binding can be stolen.
            if rf.is_free(preg) or not rf.gen_matches(preg, victim.dest_gen):
                continue
            victim.dest_preg = -1
            v = self._vregs.get(victim.dest_vid - _VID_FLAG)
            if v is not None and v.preg == preg:
                v.preg = -1
            # Release directly (not via _release_preg): the thief binds
            # the register in the same cycle, so waking a parked waiter
            # for it would only bounce that instruction off the reserve.
            rf.release(preg, self.now, self.stats.lifetimes[_CLASS_NAMES[cls]])
            self.stats.vp_steals += 1
            return True
        return False

    def _oldest_unissued_writer(self, instr: InFlight) -> bool:
        for entry in self.rob:
            if entry.squashed or entry.issued or entry.op.dest is None:
                continue
            return entry is instr
        return True

    def _issue(self, instr: InFlight) -> None:
        now = self.now
        op = instr.op
        self.sched.release_entry(instr)
        instr.issued = True
        instr.issue_cycle = now
        token = instr.issue_token + 1
        instr.issue_token = token

        latency = LATENCY_BY_CLASS[op.op]
        assumed = actual = latency
        if op.is_load:
            assumed = latency + self.memory.dl1_hit_latency
            if self.lsq.forwarding_store(instr):
                self.lsq.forwards += 1
                actual = assumed
            else:
                actual = latency + self.memory.dl1.access_latency(op.mem_addr)
            instr.mem_latency = actual - latency

        # All offsets below are strictly positive, so the wheel buckets
        # are appended to directly (no past-cycle clamp needed).
        events = self._events
        if self._vp and instr.dest_vid >= 0:
            v = self._vregs[instr.dest_vid - _VID_FLAG]
            v.pred_ready = now + assumed
            v.ready_select = now + actual
            v.value = op.result
            cycle = now + assumed
            bucket = events.get(cycle)
            ev = (_EV_WAKE, (op.dest_class, instr.dest_vid))
            if bucket is None:
                events[cycle] = [ev]
            else:
                bucket.append(ev)
        elif instr.dest_preg >= 0:
            rf = self.rf[op.dest_class]
            preg = instr.dest_preg
            rf.pred_ready[preg] = now + assumed
            rf.ready_select[preg] = now + actual
            rf.value[preg] = op.result  # forwarded value; written at complete
            cycle = now + assumed
            bucket = events.get(cycle)
            ev = (_EV_WAKE, (op.dest_class, preg))
            if bucket is None:
                events[cycle] = [ev]
            else:
                bucket.append(ev)
        sources = instr.sources
        need_read = False
        for rec in sources:
            if rec.mode == SRC_REG and not rec.read_done:
                need_read = True
                break
        if not need_read:
            # Immediate-only operands: the read stage would only set the
            # flags below, so skip scheduling it.  Nothing observes a
            # source record's read_done between issue and the read cycle
            # (select skips non-register records, commit runs later).
            for rec in sources:
                rec.read_done = True
        else:
            cycle = now + self._rf_read_offset
            bucket = events.get(cycle)
            ev = (_EV_READ, (instr, token))
            if bucket is None:
                events[cycle] = [ev]
            else:
                bucket.append(ev)
        cycle = now + self._exec_offset + actual
        bucket = events.get(cycle)
        ev = (_EV_COMPLETE, (instr, token))
        if bucket is None:
            events[cycle] = [ev]
        else:
            bucket.append(ev)
        self.stats.issued += 1

    # ========================================================== read stage

    def _do_read(self, instr: InFlight) -> None:
        now = self.now
        rf_map = self.rf
        for rec in instr.sources:
            if rec.read_done:
                continue
            if rec.mode == SRC_IMM:
                rec.read_done = True
                continue
            cls = rec.reg_class
            preg = rec.preg
            if preg >= _VID_FLAG:
                v = self._vregs.get(preg - _VID_FLAG)
                if v is None or v.value != rec.value:
                    self._value_fault(
                        "vtag",
                        f"vtag dataflow corruption at #{instr.seq}: "
                        f"expected {rec.value:#x}",
                        trace_index=instr.trace_idx,
                        seq=instr.seq,
                        reg_class=_CLASS_NAMES[cls],
                        expected=rec.value,
                        actual=None if v is None else v.value,
                    )
                rec.read_done = True
                if v.preg >= 0:
                    rf_map[cls].read_stamp(v.preg, now)
                continue
            rf = rf_map[cls]
            if rf.gen[preg] != rec.gen:
                if self._replay_war:
                    self._war_reissue(instr)
                    return
                self._value_fault(
                    "war-read",
                    f"WAR violation at read: p{preg} reallocated before "
                    f"#{instr.seq} read it (policy {self.cfg.pri.war_policy})",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    reg_class=_CLASS_NAMES[cls],
                    preg=preg,
                    expected=rec.value,
                )
            if rf.value[preg] != rec.value:
                self._value_fault(
                    "dataflow",
                    f"dataflow corruption: #{instr.seq} read {rf.value[preg]:#x} "
                    f"from p{preg}, expected {rec.value:#x}",
                    trace_index=instr.trace_idx,
                    seq=instr.seq,
                    reg_class=_CLASS_NAMES[cls],
                    preg=preg,
                    expected=rec.value,
                    actual=rf.value[preg],
                )
            rec.read_done = True
            rf.read_stamp(preg, now)
            if rec.counted:
                rec.counted = False
                self.refcounts[cls].drop_consumer(preg)
                self._after_unref(cls, preg)

    def _war_reissue(self, instr: InFlight) -> None:
        """REPLAY policy: squash this consumer back through the map.

        All unread operands are re-delivered as immediates (modelling the
        replayed map read) and the instruction re-issues after a penalty.
        """
        self.stats.war_replays += 1
        for rec in instr.sources:
            if rec.mode == SRC_REG and not rec.read_done:
                if rec.counted:
                    rec.counted = False
                    self.refcounts[rec.reg_class].drop_consumer(rec.preg)
                rec.patch_to_immediate(rec.value)
        instr.issued = False
        instr.issue_token += 1
        if instr.dest_preg >= 0:
            rf = self.rf[instr.op.dest_class]
            rf.pred_ready[instr.dest_preg] = NEVER
            rf.ready_select[instr.dest_preg] = NEVER
        instr.in_scheduler = True
        self.sched.occupancy += 1  # entry re-claimed; may transiently overflow
        # park() starts a fresh wait generation, so a timer left over from
        # a pre-replay park can no longer count against this wait and
        # issue the entry before its penalty elapses.
        token = self.sched.park(instr, [], extra_missing=1)
        self._schedule(
            self.now + self.cfg.war_replay_penalty, _EV_TIMER, (instr, token)
        )

    # ========================================================== complete

    def _do_complete(self, instr: InFlight) -> None:
        now = self.now
        instr.completed = True
        instr.complete_cycle = now
        op = instr.op
        if self._vp and instr.dest_vid >= 0:
            # The vtag is the value's home: mark it written even when the
            # physical backing store was stolen (dest_preg == -1).
            self._vregs[instr.dest_vid - _VID_FLAG].written = True
        if instr.dest_preg >= 0:
            rf = self.rf[op.dest_class]
            rf.write(instr.dest_preg, op.result, now)
            if not self._vp and self._pri_enabled:
                # Pin against ER release until the retire-stage PRI check.
                rf.retire_pending[instr.dest_preg] = True
            if self._er:
                self._maybe_free_er(op.dest_class, instr.dest_preg)
        if op.is_branch:
            self.branch_unit.resolve(op, instr.prediction)
            if instr.mispredicted:
                self.stats.mispredicts += 1
                self._recover(instr)
            # Resolved branches can never be recovery targets again, so
            # their shadow maps free immediately (out of order).
            self.ckpts.release(instr.checkpoint)
        if self._pri_enabled and instr.dest_preg >= 0:
            self._schedule(
                now + self._retire_offset, _EV_RETIRE, (instr, instr.issue_token)
            )

    # ====================================================== retire (PRI)

    def _do_retire(self, instr: InFlight) -> None:
        """PRI's retire-stage significance check and late map update."""
        op = instr.op
        cls = op.dest_class
        table = self.maps[cls]
        if self._vp:
            # Virtual-physical mode: consumers read through the vtag
            # table, so an inlined register frees unconditionally.
            if cls == RegClass.FP and not self.cfg.pri.inline_fp:
                return
            if not table.value_fits(op.result):
                return
            self.stats.inline_attempts += 1
            if not table.try_inline(op.dest, instr.dest_vid, op.result):
                self.stats.inline_waw_dropped += 1
                return
            self.stats.inlined += 1
            v = self._vregs[instr.dest_vid - _VID_FLAG]
            if v.preg >= 0 and self.rf[cls].gen_matches(v.preg, v.preg_gen):
                self._release_preg(cls, v.preg)
                self.stats.pri_early_frees += 1
                v.preg = -1
            return
        preg = instr.dest_preg
        rf_dest = self.rf[cls]
        rf_dest.retire_pending[preg] = False
        if cls == RegClass.FP and not self.cfg.pri.inline_fp:
            if self.cfg.early_release:
                self._maybe_free_er(cls, preg)
            return
        if not table.value_fits(op.result):
            if self.cfg.early_release:
                self._maybe_free_er(cls, preg)
            return
        self.stats.inline_attempts += 1
        if not table.try_inline(op.dest, preg, op.result):
            self.stats.inline_waw_dropped += 1  # Figure 7: entry remapped
            if self.cfg.early_release:
                self._maybe_free_er(cls, preg)
            return
        self.stats.inlined += 1
        rf = self.rf[cls]
        rf.inline_pending[preg] = True
        if self._lazy_ckpt:
            self.ckpts.patch_inlined(cls, preg, op.result)
        if self._ideal_war:
            self._patch_payload(cls, preg, instr.dest_gen, op.result)
        if not self._try_pri_free(cls, preg):
            self.stats.pri_frees_deferred += 1

    def _patch_payload(self, cls: RegClass, preg: int, gen: int, value: int) -> None:
        """Ideal WAR policy: associatively update stale payload pointers."""
        records = self._consumer_records[cls][preg]
        counts = self.refcounts[cls]
        for rec, consumer in records:
            if (
                consumer.squashed
                or rec.read_done
                or rec.mode != SRC_REG
                or rec.preg != preg
                or rec.gen != gen
            ):
                continue
            rec.patch_to_immediate(value)
            if rec.counted:
                rec.counted = False
                counts.drop_consumer(preg)
        records.clear()

    # ====================================================== reclamation

    def _try_pri_free(self, cls: RegClass, preg: int) -> bool:
        """Free an inlined register if no references pin it."""
        rf = self.rf[cls]
        if not rf.inline_pending[preg] or rf.state[preg] == RegState.FREE:
            return False
        if self.maps[cls].pointer_of(rf.lreg[preg]) == preg:
            # A misprediction recovery restored a checkpoint from before
            # the late map update, so this register is the live mapping
            # again: the inline is void.  The register will be freed by
            # the conventional path when its redefiner commits.
            rf.inline_pending[preg] = False
            return False
        counts = self.refcounts[cls]
        if not self._replay_war and counts.consumers(preg) > 0:
            return False
        if counts.checkpoint_refs(preg) > 0:
            return False
        self._release_preg(cls, preg)
        self.stats.pri_early_frees += 1
        return True

    def _maybe_free_er(self, cls: RegClass, preg: int) -> None:
        """Early release (prior work): complete + unmapped everywhere +
        all renamed consumers have read."""
        rf = self.rf[cls]
        if rf.state[preg] != RegState.WRITTEN or rf.inline_pending[preg]:
            return
        if rf.retire_pending[preg]:
            return  # PRI's retire-stage check has not run yet (see regfile)
        if self.maps[cls].pointer_of(rf.lreg[preg]) == preg:
            return  # still the current mapping
        counts = self.refcounts[cls]
        if counts.consumers(preg) > 0 or counts.er_checkpoint_refs(preg) > 0:
            return
        self._release_preg(cls, preg)
        self.stats.er_early_frees += 1

    def _after_unref(self, cls: RegClass, preg: int) -> None:
        """A reference dropped: an inlined or dead register may now free."""
        rf = self.rf[cls]
        if rf.state[preg] == RegState.FREE:
            return
        if rf.inline_pending[preg]:
            self._try_pri_free(cls, preg)
        elif self.cfg.early_release:
            self._maybe_free_er(cls, preg)

    def _release_preg(self, cls: RegClass, preg: int) -> None:
        name = _CLASS_NAMES[cls]
        freed = self.rf[cls].release(preg, self.now, self.stats.lifetimes[name])
        if not freed:
            self.stats.duplicate_deallocs += 1
        elif self._vp:
            # A register became available: re-wake the *oldest* blocked
            # instruction of this class.  Waking anything younger can
            # lose the wake — the reserve rule would deny it and nothing
            # would ever re-wake the oldest.
            waiters = self._preg_waiters[cls]
            best = None
            for cand in waiters:
                if cand.squashed or cand.issued or not cand.in_scheduler:
                    continue
                if best is None or cand.seq < best.seq:
                    best = cand
            if best is not None:
                waiters.remove(best)
                self.sched.push_ready(best)

    # ============================================================ commit

    def _commit(self) -> None:
        rob = self.rob
        if not rob:
            return
        budget = self._width
        now = self.now
        retire_offset = self._retire_offset
        oracle = self.oracle
        vp = self._vp
        recycle_recs = not vp and not self._ideal_war
        popleft = rob.popleft
        pool = self._pool
        rec_pool = self._rec_pool
        committed = 0
        while budget and rob:
            head = rob[0]
            if not head.completed or now < head.complete_cycle + retire_offset:
                break
            popleft()
            head.committed = True
            op = head.op
            if oracle is not None:
                oracle.on_commit(self, head)
            if op.is_mem:
                self.lsq.remove(head)
                if op.is_store:
                    addr = op.mem_addr
                    self.memory.dl1.access_latency(addr)
                    if oracle is not None:
                        oracle.on_store_commit(self, head, addr)
            if op.is_branch:
                self.stats.branches += 1
                # ER's unmap condition is commit-scoped: the shadow-copy
                # references fall away only now (see rename/checkpoints).
                self.ckpts.commit_retire(head.checkpoint)
            if head.prev_vid >= 0:
                cls = op.dest_class
                v = self._vregs.pop(head.prev_vid - _VID_FLAG, None)
                if (v is not None and v.preg >= 0
                        and self.rf[cls].gen_matches(v.preg, v.preg_gen)):
                    self._release_preg(cls, v.preg)
            elif head.prev_preg >= 0:
                cls = op.dest_class
                if self.rf[cls].gen_matches(head.prev_preg, head.prev_gen):
                    self._release_preg(cls, head.prev_preg)
            committed += 1
            budget -= 1
            # Recycle the InFlight object.  Safe once every source record
            # is read: any reference that outlives commit (a scheduler
            # waiter, a wheel event, an ideal-policy payload record) is
            # neutralized by its token or read_done check, and the
            # monotonic tokens survive reinit.  Virtual-physical mode is
            # excluded: stale entries linger in the preg-waiter queues.
            # Payload records recycle too — except under the ideal WAR
            # policy, whose associative payload index may still reference
            # them (it discriminates by read_done, which a recycled
            # record resets).
            if not vp and all(rec.read_done for rec in head.sources):
                if recycle_recs:
                    rec_pool.extend(head.sources)
                pool.append(head)
        if committed:
            self.stats.committed += committed
            self._last_commit_cycle = now

    # ========================================================== recovery

    def _recover(self, branch: InFlight) -> None:
        """Branch misprediction: squash younger, restore rename state,
        redirect fetch."""
        while self.rob and self.rob[-1].seq > branch.seq:
            self._squash(self.rob.pop())
        self._fetch_buffer.clear()
        self.ckpts.recover(branch.checkpoint)
        self.branch_unit.ras.restore(branch.checkpoint.ras)
        self.branch_unit.history = branch.checkpoint.history
        self._fetch_idx = branch.trace_idx + 1
        self._fetch_stall_until = max(
            self._fetch_stall_until, self.now + self.cfg.mispredict_redirect
        )

    def _squash(self, instr: InFlight) -> None:
        instr.squashed = True
        self.stats.squashed += 1
        self.sched.release_entry(instr)
        if instr.checkpoint is not None:
            # Covers branches that resolved (stack-released) but still
            # hold commit-scoped ER references; idempotent otherwise.
            self.ckpts.discard(instr.checkpoint)
        for rec in instr.sources:
            if rec.counted:
                rec.counted = False
                self.refcounts[rec.reg_class].drop_consumer(rec.preg)
                self._after_unref(rec.reg_class, rec.preg)
        if instr.dest_vid >= 0:
            cls = instr.op.dest_class
            v = self._vregs.pop(instr.dest_vid - _VID_FLAG, None)
            if (v is not None and v.preg >= 0
                    and self.rf[cls].gen_matches(v.preg, v.preg_gen)):
                self._release_preg(cls, v.preg)
        elif instr.dest_preg >= 0:
            cls = instr.op.dest_class
            rf = self.rf[cls]
            if rf.gen_matches(instr.dest_preg, instr.dest_gen):
                self._release_preg(cls, instr.dest_preg)
        if (instr.op.is_load or instr.op.is_store) and not instr.committed:
            self.lsq.remove(instr)

    # ========================================================== finalize

    def _finalize(self) -> None:
        stats = self.stats
        stats.cycles = self.now
        stats.branch_mispredict_rate = self.branch_unit.mispredict_rate
        stats.il1_miss_rate = self.memory.il1.miss_rate
        stats.dl1_miss_rate = self.memory.dl1.miss_rate
        stats.l2_miss_rate = self.memory.l2.miss_rate
        if self.auditor is not None and self.cfg.audit.final:
            self.auditor.check(self, final=True)
        if self.oracle is not None and self.cfg.oracle.final:
            self.oracle.check_arch(self, final=True)

    # ================================================ capacity extension

    def _extend_capacity(self, int_regs: int, fp_regs: int) -> None:
        """Grow both register files mid-run (vector backend only).

        Valid exactly when neither free list has ever emptied at the old
        capacities *or* the call happens at the first empty-free-list
        stall: under the ``ordered`` allocation policy the extended
        machine's state is then bit-identical to a machine built at the
        larger capacities from the start (see :mod:`repro.vector.engine`
        for the argument).  Not supported in virtual-physical mode.
        """
        from dataclasses import replace

        if self._vp:
            raise SimulationError(
                "capacity extension is undefined in virtual-physical mode"
            )
        self.rf[RegClass.INT].extend(int_regs)
        self.rf[RegClass.FP].extend(fp_regs)
        self.refcounts[RegClass.INT].extend(int_regs)
        self.refcounts[RegClass.FP].extend(fp_regs)
        for cls, rf in self.rf.items():
            records = self._consumer_records[cls]
            while len(records) < rf.num_regs:
                records.append([])
        self.cfg = replace(self.cfg, int_phys_regs=int_regs,
                           fp_phys_regs=fp_regs)

    # ====================================================== debug helpers

    def assert_invariants(self) -> None:
        """Cross-structure consistency checks (used by tests)."""
        for rf in self.rf.values():
            rf.assert_consistent()
        self.sched.drain_check()


def simulate(
    config: MachineConfig,
    trace: Trace,
    max_insts: Optional[int] = None,
    max_cycles: Optional[int] = None,
) -> SimStats:
    """One-shot convenience: build a machine, run a trace, return stats."""
    return Machine(config).run(trace, max_insts=max_insts, max_cycles=max_cycles)
