"""Cycle-level out-of-order core.

The pipeline follows Figure 5 of the paper: Fetch, Decode, Rename, Queue,
Sched, Disp, Disp, RF, RF, Exe, Retire, Commit (12 stages), with
speculative scheduling (loads assumed to hit the DL1) and selective
replay of dependents on latency mispredictions.  :class:`Machine` wires
the substrates together and implements the three register-reclamation
schemes the paper evaluates: the conventional baseline, early release
(ER), and physical register inlining (PRI) with its WAR/checkpoint policy
matrix — plus their combination.
"""

from repro.core.stats import SimStats, LifetimeStats
from repro.core.regfile import PhysRegFile, RegState
from repro.core.inflight import InFlight, SourceRecord, SRC_REG, SRC_IMM
from repro.core.machine import Machine, SimulationError, simulate

__all__ = [
    "SimStats",
    "LifetimeStats",
    "PhysRegFile",
    "RegState",
    "InFlight",
    "SourceRecord",
    "SRC_REG",
    "SRC_IMM",
    "Machine",
    "SimulationError",
    "simulate",
]
