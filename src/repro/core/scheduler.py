"""Issue queue (scheduler) with wakeup/select.

Entries wait for their source operands' speculative wakeup broadcasts;
ready entries are selected oldest-first, up to the machine width per
cycle.  Wakeup is *speculative*: a load broadcasts at its assumed DL1-hit
latency, so dependents can issue before the hit/miss outcome is known and
must be verified at select (the machine replays them selectively if a
source is not actually ready — Table 1's "speculative scheduling,
selective recovery for latency mispredictions").
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.inflight import InFlight
from repro.isa.opcodes import RegClass


class Scheduler:
    """Bounded issue queue for one machine (both register classes)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.occupancy = 0
        self._ready: List[Tuple[int, InFlight]] = []  # (seq, instr) min-heap
        self._waiters: Dict[Tuple[int, int], List[InFlight]] = {}
        self.max_occupancy = 0

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    # ----------------------------------------------------------- insert

    def insert(self, instr: InFlight, unready: List[Tuple[RegClass, int]]) -> None:
        """Add a renamed instruction; ``unready`` lists (class, preg)
        operands whose producers have not yet broadcast."""
        if not self.has_space:
            raise RuntimeError("scheduler overflow: caller must check has_space")
        self.occupancy += 1
        self.max_occupancy = max(self.max_occupancy, self.occupancy)
        instr.in_scheduler = True
        self.park(instr, unready)

    def park(
        self,
        instr: InFlight,
        unready: List[Tuple[RegClass, int]],
        extra_missing: int = 0,
    ) -> None:
        """(Re)register an already-resident entry to wait on operands.

        ``unready`` lists operands awaiting a producer broadcast;
        ``extra_missing`` counts operands whose readiness time is already
        known and will arrive via timer wakeups.  Used both at insert and
        when a select-time verification fails.
        """
        instr.missing = len(unready) + extra_missing
        if instr.missing == 0:
            self.push_ready(instr)
            return
        for reg_class, preg in unready:
            self._waiters.setdefault((int(reg_class), preg), []).append(instr)

    def push_ready(self, instr: InFlight) -> None:
        heapq.heappush(self._ready, (instr.seq, instr))

    # ----------------------------------------------------------- wakeup

    def wake(self, reg_class: RegClass, preg: int) -> None:
        """Broadcast: wake entries waiting on (class, preg)."""
        waiters = self._waiters.pop((int(reg_class), preg), None)
        if not waiters:
            return
        for instr in waiters:
            if instr.squashed or not instr.in_scheduler:
                continue
            instr.missing -= 1
            if instr.missing <= 0:
                self.push_ready(instr)

    def timer_wake(self, instr: InFlight) -> None:
        """A scheduled re-wake (known future readiness) arrived."""
        if instr.squashed or not instr.in_scheduler:
            return
        instr.missing -= 1
        if instr.missing <= 0:
            self.push_ready(instr)

    # ----------------------------------------------------------- select

    def pop_ready(self) -> Optional[InFlight]:
        """Oldest ready, live entry; None if none."""
        while self._ready:
            _, instr = heapq.heappop(self._ready)
            if instr.squashed or not instr.in_scheduler or instr.issued:
                continue
            return instr
        return None

    def release_entry(self, instr: InFlight) -> None:
        """Free the queue slot (at verified issue or squash)."""
        if instr.in_scheduler:
            instr.in_scheduler = False
            self.occupancy -= 1

    def drain_check(self) -> None:
        """Debug invariant: occupancy matches live resident entries."""
        if self.occupancy < 0:
            raise AssertionError("scheduler occupancy underflow")
