"""Issue queue (scheduler) with wakeup/select.

Entries wait for their source operands' speculative wakeup broadcasts;
ready entries are selected oldest-first, up to the machine width per
cycle.  Wakeup is *speculative*: a load broadcasts at its assumed DL1-hit
latency, so dependents can issue before the hit/miss outcome is known and
must be verified at select (the machine replays them selectively if a
source is not actually ready — Table 1's "speculative scheduling,
selective recovery for latency mispredictions").

Wait generations: every call to :meth:`Scheduler.park` starts a new wait
generation by bumping the instruction's ``wait_token``.  Waiter-list
registrations and the machine's timer events capture the token of the
generation that created them; :meth:`wake` and :meth:`timer_wake` ignore
deliveries whose token is stale.  Without this, a wakeup registered by an
*earlier* park (or a timer scheduled before a verification failure sent
the entry back to the queue) could decrement ``missing`` for the *current*
generation — waking the entry before its operands are ready and silently
skipping replay penalties.  The same guard makes recycled
:class:`~repro.core.inflight.InFlight` objects safe: tokens increase
monotonically across reuse, so registrations from an object's previous
life can never wake its next one.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.inflight import InFlight
from repro.isa.opcodes import RegClass


class Scheduler:
    """Bounded issue queue for one machine (both register classes)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.occupancy = 0
        self._ready: List[Tuple[int, InFlight]] = []  # (seq, instr) min-heap
        #: (class, preg) -> list of (instr, wait_token) registrations.
        self._waiters: Dict[Tuple[int, int], List[Tuple[InFlight, int]]] = {}
        self.max_occupancy = 0

    @property
    def has_space(self) -> bool:
        return self.occupancy < self.capacity

    # ----------------------------------------------------------- insert

    def insert(self, instr: InFlight, unready: List[Tuple[RegClass, int]]) -> None:
        """Add a renamed instruction; ``unready`` lists (class, preg)
        operands whose producers have not yet broadcast."""
        if self.occupancy >= self.capacity:
            raise RuntimeError("scheduler overflow: caller must check has_space")
        self.occupancy += 1
        if self.occupancy > self.max_occupancy:
            self.max_occupancy = self.occupancy
        instr.in_scheduler = True
        self.park(instr, unready)

    def park(
        self,
        instr: InFlight,
        unready: List[Tuple[RegClass, int]],
        extra_missing: int = 0,
    ) -> int:
        """(Re)register an already-resident entry to wait on operands.

        ``unready`` lists operands awaiting a producer broadcast;
        ``extra_missing`` counts operands whose readiness time is already
        known and will arrive via timer wakeups.  Used both at insert and
        when a select-time verification fails.

        Starts a new wait generation and returns its token; the caller
        must attach that token to any timer wakeups it schedules for this
        park (see module docstring).  Registrations left behind by
        earlier generations are ignored at delivery instead of mutating
        ``instr.missing`` — the stale-wake bug this replaces let a
        leftover timer from a pre-replay park count against the replay's
        fresh wait and issue the entry before its penalty elapsed.
        """
        token = instr.wait_token + 1
        instr.wait_token = token
        instr.missing = len(unready) + extra_missing
        if instr.missing == 0:
            heapq.heappush(self._ready, (instr.seq, instr))
            return token
        waiters = self._waiters
        for reg_class, preg in unready:
            # IntEnum members hash and compare as their int values, so
            # enum/int key mixing is consistent; skip the int() call.
            key = (reg_class, preg)
            bucket = waiters.get(key)
            if bucket is None:
                waiters[key] = [(instr, token)]
            else:
                bucket.append((instr, token))
        return token

    def push_ready(self, instr: InFlight) -> None:
        heapq.heappush(self._ready, (instr.seq, instr))

    # ----------------------------------------------------------- wakeup

    def wake(self, reg_class: RegClass, preg: int) -> None:
        """Broadcast: wake entries waiting on (class, preg)."""
        waiters = self._waiters.pop((reg_class, preg), None)
        if not waiters:
            return
        push = heapq.heappush
        ready = self._ready
        for instr, token in waiters:
            if (
                instr.squashed
                or not instr.in_scheduler
                or instr.wait_token != token
            ):
                continue
            instr.missing -= 1
            if instr.missing <= 0:
                push(ready, (instr.seq, instr))

    def timer_wake(self, instr: InFlight, token: Optional[int] = None) -> None:
        """A scheduled re-wake (known future readiness) arrived.

        ``token`` is the wait generation the timer was scheduled under
        (from :meth:`park`); a stale token is ignored.  ``None`` skips the
        generation check (legacy callers/tests that manage ``missing``
        directly).
        """
        if instr.squashed or not instr.in_scheduler:
            return
        if token is not None and instr.wait_token != token:
            return
        instr.missing -= 1
        if instr.missing <= 0:
            heapq.heappush(self._ready, (instr.seq, instr))

    # ----------------------------------------------------------- select

    def pop_ready(self) -> Optional[InFlight]:
        """Oldest ready, live entry; None if none."""
        ready = self._ready
        pop = heapq.heappop
        while ready:
            _, instr = pop(ready)
            if instr.squashed or not instr.in_scheduler or instr.issued:
                continue
            return instr
        return None

    def release_entry(self, instr: InFlight) -> None:
        """Free the queue slot (at verified issue or squash)."""
        if instr.in_scheduler:
            instr.in_scheduler = False
            self.occupancy -= 1

    def drain_check(self) -> None:
        """Debug invariant: occupancy matches live resident entries."""
        if self.occupancy < 0:
            raise AssertionError("scheduler occupancy underflow")
