"""Lockstep column engine: one machine per coherence group, forked on
divergence.

Why this shape and not per-stage NumPy ufuncs over (lane, entry) arrays:
the scalar cycle loop costs ~14µs/cycle after the PR-5 optimizations,
and a faithful SoA translation needs hundreds of masked array ops per
cycle at ~1µs of ufunc dispatch each — in CPython that *loses* to the
scalar loop until lane counts far beyond a sweep column.  What actually
makes a sweep column batchable is redundancy, not data parallelism: a
Figure-9 capacity sweep simulates the *same* instruction stream on
machines that are provably bit-identical until the first
register-exhaustion stall.  So the engine shares that common prefix
outright and pays per-lane cost only after real divergence:

* Each coherence group (see :mod:`repro.vector.column`) runs ONE scalar
  machine at the chain's minimum capacity.
* The machine's rename stage carries a *pressure hook*: at the exact
  instant the free list comes up empty — before the stall is even
  counted — the engine deep-copies the machine, extends the copy's
  register files to the next chain capacity, and lets the copy finish
  the cycle with the rename budget the donor had left.  Under the
  ordered free-list policy the extended copy's state is bit-identical
  to a machine built at the larger capacity from the start (the extra
  registers are numerically above every member of the shared free set,
  so lowest-first allocation cannot have touched them).
* The donor keeps only the lanes at its own capacity and stalls,
  exactly as the scalar machine would; the copy carries the rest of the
  chain and may fork again.  Lanes that diverge in control flow beyond
  capacity (different trace, different scheme) were never grouped.

The per-cycle drive below replicates ``Machine._run_loop`` order
exactly — events, occupancy sample, commit, select, rename, fetch,
hooks, auditor/oracle, deadlock watchdog — with occupancy flushed
straight into the stats object so a mid-cycle deep copy never loses
loop-local accumulation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.machine import NEVER, Machine, SimulationError
from repro.core.stats import SimStats
from repro.isa.opcodes import RegClass
from repro.vector.column import ColumnGroup, Lane, plan_groups

#: Lane states in the engine's bookkeeping table.
_LANE_RUNNING, _LANE_OK, _LANE_ERROR = 0, 1, 2


@dataclass
class LaneResult:
    """Outcome of one lane: stats, or the scalar-identical error."""

    key: str
    stats: Optional[SimStats] = None
    #: Deterministic simulation failure (deadlock, oracle divergence,
    #: watchdog) — exactly what the scalar backend raises for this lane.
    error: Optional[SimulationError] = None
    #: Coherence group this lane rode in (column-local index).
    group: int = -1
    #: Cycle its machine forked off the group trunk (0 = never forked).
    forked_at: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ColumnOutcome:
    """Everything one batched column run produced."""

    results: Dict[str, LaneResult]
    #: Coherence groups planned (== machines built before any fork).
    groups: int = 0
    #: Capacity forks taken (extra machines split off mid-run).
    forks: int = 0
    #: Total cycles actually simulated across all machines — the honest
    #: cost of the batch (compare against the sum of per-lane cycles a
    #: scalar sweep would pay).
    cycles_simulated: int = 0

    @property
    def lanes(self) -> int:
        return len(self.results)


@dataclass
class _GroupRun:
    """One live machine and the contiguous chain span it still carries."""

    machine: Machine
    caps: List[Tuple[int, int]]
    lanes: List[List[Lane]]
    lo: int
    hi: int
    group: int
    forked_at: int = 0
    start_cycle: int = 0


class ColumnEngine:
    """Drives one column (a set of lanes) to per-lane SimStats."""

    def __init__(
        self,
        *,
        max_cycles: Optional[int] = None,
        cycle_hook: Optional[Callable[[Machine], None]] = None,
    ) -> None:
        self.max_cycles = max_cycles
        self.cycle_hook = cycle_hook
        self.forks = 0
        self.groups = 0
        self.cycles_simulated = 0
        self._results: Dict[str, LaneResult] = {}
        self._pending: List[_GroupRun] = []
        #: (lane index -> state code) NumPy table; the engine's control
        #: plane for progress accounting and the final all-lanes check.
        self._lane_state = np.zeros(0, dtype=np.int8)
        self._lane_index: Dict[str, int] = {}

    # ------------------------------------------------------------- public

    def run(self, lanes: Sequence[Lane]) -> ColumnOutcome:
        keys = [lane.key for lane in lanes]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate lane keys in column")
        self._lane_state = np.full(len(lanes), _LANE_RUNNING, dtype=np.int8)
        self._lane_index = {key: i for i, key in enumerate(keys)}

        groups = plan_groups(lanes)
        self.groups = len(groups)
        for index, group in enumerate(groups):
            self._run_group(group, index)

        if bool(np.any(self._lane_state == _LANE_RUNNING)):
            missing = [k for k, i in self._lane_index.items()
                       if self._lane_state[i] == _LANE_RUNNING]
            raise AssertionError(f"column finished with unfinished lanes: {missing}")
        return ColumnOutcome(
            results=self._results, groups=self.groups, forks=self.forks,
            cycles_simulated=self.cycles_simulated,
        )

    # ------------------------------------------------------------- groups

    def _run_group(self, group: ColumnGroup, index: int) -> None:
        machine = self._build(group.base_config, group.trace)
        root = _GroupRun(
            machine=machine, caps=group.caps, lanes=group.lanes,
            lo=0, hi=len(group.caps) - 1, group=index,
        )
        self._arm(root)
        self._pending.append(root)
        while self._pending:
            run = self._pending.pop()
            try:
                self._drive(run)
            except SimulationError as err:
                self._record(run, error=err)
                continue
            self._record(run)

    def _build(self, config, trace) -> Machine:
        # Mirrors Machine.run() up to (not including) the cycle loop.
        machine = Machine(config)
        machine.reset(trace)
        machine._committed_target = len(trace)
        machine._cycle_limit = (
            self.max_cycles if self.max_cycles is not None else NEVER
        )
        return machine

    def _arm(self, run: _GroupRun) -> None:
        run.machine._vector_run = run
        run.machine._pressure_hook = self._on_pressure

    # -------------------------------------------------------- cycle drive

    def _drive(self, run: _GroupRun) -> None:
        """Advance one machine to completion — ``Machine._run_loop`` with
        occupancy flushed directly (fork-safe) and the engine's hook in
        the scalar loop's hook slot."""
        m = run.machine
        target = m._committed_target
        if target == 0:
            # Scalar run() returns the fresh stats without entering the
            # loop (and without finalize); match it.
            return
        stats = m.stats
        limit = m._cycle_limit
        occupancy = stats.occupancy_sum
        rf_int = m.rf[RegClass.INT]
        rf_fp = m.rf[RegClass.FP]
        process_events = m._process_events
        commit = m._commit
        select = m._select
        rename = m._rename
        fetch = m._fetch
        start = m.now
        try:
            while stats.committed < target:
                if m.now >= limit:
                    break
                m.now += 1
                process_events()
                occupancy["int"] += rf_int.allocated_count
                occupancy["fp"] += rf_fp.allocated_count
                commit()
                select()
                rename()  # a fork inside lands on self._pending
                fetch()
                self._end_cycle(m)
        finally:
            self.cycles_simulated += m.now - start
        m._finalize()

    def _end_cycle(self, m: Machine) -> None:
        # Scalar order: cycle hooks, auditor, oracle, deadlock watchdog.
        hook = self.cycle_hook
        if hook is not None:
            hook(m)
        for extra in tuple(m._cycle_hooks):
            extra(m)
        if m.auditor is not None:
            m.auditor.maybe_check(m)
        if m.oracle is not None:
            m.oracle.maybe_check(m)
        deadlock_after = m.cfg.deadlock_cycles
        if m.now - m._last_commit_cycle > deadlock_after:
            head = repr(m.rob[0]) if m.rob else "rob empty"
            raise SimulationError(
                f"deadlock: no commit since cycle {m._last_commit_cycle} "
                f"(now {m.now}, watchdog {deadlock_after} cycles, "
                f"{m.stats.committed}/{m._committed_target} committed, {head})"
            )

    # --------------------------------------------------------------- fork

    def _on_pressure(self, m: Machine, dest_cls, budget_left: int) -> None:
        """Rename found ``dest_cls``'s free list empty.  If this machine
        still carries larger-capacity lanes, split them off *now* —
        before the donor even counts the stall."""
        run: _GroupRun = m._vector_run
        if run.lo >= run.hi:
            return  # only this capacity left: stall like the scalar machine
        clone = self._fork(run)
        self.forks += 1
        cm = clone.machine
        try:
            # Finish the clone's current cycle: it renames the very
            # instruction the donor stalled on (its free list is not
            # empty), with the budget the donor had left, then runs the
            # rest of the cycle the donor had not reached yet.
            cm._rename_budget(budget_left)
            cm._fetch()
            self._end_cycle(cm)
        except SimulationError as err:
            self._record(clone, error=err)
            return
        self._pending.append(clone)

    def _fork(self, run: _GroupRun) -> _GroupRun:
        m = run.machine
        # Strip engine-owned references so the deep copy is pure machine
        # state; restore after.
        m._pressure_hook = None
        m._vector_run = None
        cycle_hooks = m._cycle_hooks
        m._cycle_hooks = []
        # The trace (and its ops) are immutable and shared by every
        # machine; seeding the memo keeps the copy O(machine state).
        memo = {
            id(m.trace): m.trace,
            id(m._trace_ops): m._trace_ops,
            id(m.cfg): m.cfg,
        }
        for op in m._trace_ops:
            memo[id(op)] = op
        try:
            cm = copy.deepcopy(m, memo)
        finally:
            m._pressure_hook = self._on_pressure
            m._vector_run = run
            m._cycle_hooks = cycle_hooks
        cm._cycle_hooks = []

        next_lo = run.lo + 1
        int_regs, fp_regs = run.caps[next_lo]
        cm._extend_capacity(int_regs, fp_regs)
        # deepcopy shares plain functions, so the audit generation-source
        # closure still reads the *donor's* register files; rebind it.
        cm.ckpts.gen_source = (
            None if cm._vp or not cm.cfg.audit.enabled
            else lambda cls: cm.rf[cls].gen
        )

        clone = _GroupRun(
            machine=cm, caps=run.caps, lanes=run.lanes,
            lo=next_lo, hi=run.hi, group=run.group,
            forked_at=m.now, start_cycle=m.now,
        )
        run.hi = run.lo  # the donor keeps only its own capacity
        self._arm(clone)
        return clone

    # ------------------------------------------------------------ results

    def _record(self, run: _GroupRun, error: Optional[SimulationError] = None) -> None:
        payload = None if error is not None else run.machine.stats.to_dict()
        for idx in range(run.lo, run.hi + 1):
            for lane in run.lanes[idx]:
                result = LaneResult(
                    key=lane.key, group=run.group, forked_at=run.forked_at,
                )
                if error is not None:
                    result.error = error
                    state = _LANE_ERROR
                else:
                    result.stats = SimStats.from_dict(payload)
                    state = _LANE_OK
                self._results[lane.key] = result
                self._lane_state[self._lane_index[lane.key]] = state


def run_column(
    lanes: Sequence[Lane],
    *,
    max_cycles: Optional[int] = None,
    cycle_hook: Optional[Callable[[Machine], None]] = None,
) -> ColumnOutcome:
    """Simulate a column of lanes in one batch; per-lane results are
    bit-identical to scalar runs of the same (config, trace) pairs."""
    engine = ColumnEngine(max_cycles=max_cycles, cycle_hook=cycle_hook)
    return engine.run(lanes)
