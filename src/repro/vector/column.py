"""Column planning: partition sweep lanes into coherence groups.

A *lane* is one (config, trace) simulation the caller wants run.  A
*coherence group* is a set of lanes the engine can carry on a single
machine: same trace, configs identical in every field except the two PRF
capacities, capacities forming a componentwise-ordered chain, ordered
free-list policy, and not virtual-physical (VP allocates at issue
through capacity-dependent paths, so capacity monotonicity does not
hold there).

The capacity chain is the load-bearing constraint: the engine runs the
group at the chain's minimum and forks upward one link at a time, so
every fork target must dominate its predecessor in *both* register
classes.  Lanes whose capacity pairs are incomparable (e.g. (48, 64)
and (64, 48)) are split into separate chains.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import MachineConfig, config_digest

#: Backend names the CLIs and run_matrix accept.
BACKENDS = ("scalar", "vector")


@dataclass(frozen=True, eq=False)
class Lane:
    """One simulation the column should produce stats for.

    ``key`` is an opaque caller identity (a journal cell key, a PRF size
    label, ...) under which the result is returned.
    """

    key: str
    config: MachineConfig
    trace: object  # repro.workloads.Trace (kept untyped: no import cycle)


@dataclass
class ColumnGroup:
    """One coherence group: a capacity chain of lanes over one trace."""

    trace: object
    #: Ascending componentwise-ordered (int_regs, fp_regs) chain.
    caps: List[Tuple[int, int]]
    #: Lanes at each chain link (duplicates share one link).
    lanes: List[List[Lane]] = field(default_factory=list)

    @property
    def base_config(self) -> MachineConfig:
        """The minimum-capacity config the group's machine starts at."""
        return self.lanes[0][0].config


def sharable(config: MachineConfig) -> bool:
    """Whether this config participates in capacity grouping.

    Virtual-physical mode allocates registers at issue through
    capacity-dependent code paths, and FIFO recycling makes the
    allocation sequence depend on capacity from the first reuse — either
    breaks the monotonicity the fork step relies on, so such lanes run
    as singleton groups (still batched, never shared).
    """
    return not config.virtual_physical and config.alloc_policy == "ordered"


def _shape_digest(config: MachineConfig) -> str:
    """Digest of everything *except* the PRF capacities: two lanes group
    together iff their shape digests match (and :func:`sharable`)."""
    return config_digest(
        dataclasses.replace(config, int_phys_regs=0, fp_phys_regs=0)
    )


def plan_groups(lanes: Sequence[Lane]) -> List[ColumnGroup]:
    """Partition ``lanes`` into coherence groups, deterministically.

    Groups come out in first-lane order; within a group the capacity
    chain ascends.  Every lane lands in exactly one group.
    """
    buckets: Dict[Tuple[int, str], List[Lane]] = {}
    order: List[Tuple[int, str]] = []
    for lane in lanes:
        if sharable(lane.config):
            bucket_key = (id(lane.trace), _shape_digest(lane.config))
        else:
            # Unsharable lanes become singleton groups; a unique key per
            # lane keeps them apart even when configured identically.
            bucket_key = (id(lane), "unsharable")
        if bucket_key not in buckets:
            buckets[bucket_key] = []
            order.append(bucket_key)
        buckets[bucket_key].append(lane)

    groups: List[ColumnGroup] = []
    for bucket_key in order:
        bucket = buckets[bucket_key]
        groups.extend(_chain_bucket(bucket))
    return groups


def _chain_bucket(bucket: List[Lane]) -> List[ColumnGroup]:
    """Split one same-shape bucket into componentwise-ordered chains."""
    caps = np.array(
        [(lane.config.int_phys_regs, lane.config.fp_phys_regs)
         for lane in bucket],
        dtype=np.int64,
    )
    # Sort lanes by (int, fp) capacity; stable so equal-capacity lanes
    # keep caller order.
    sort_idx = np.lexsort((caps[:, 1], caps[:, 0]))

    groups: List[ColumnGroup] = []
    current: Optional[ColumnGroup] = None
    for pos in sort_idx.tolist():
        lane = bucket[pos]
        pair = (lane.config.int_phys_regs, lane.config.fp_phys_regs)
        if current is not None:
            prev = current.caps[-1]
            if pair == prev:
                current.lanes[-1].append(lane)  # duplicate link: share
                continue
            if pair[0] >= prev[0] and pair[1] >= prev[1]:
                current.caps.append(pair)
                current.lanes.append([lane])
                continue
        # Chain broken (or first lane): start a new group.
        current = ColumnGroup(trace=lane.trace, caps=[pair], lanes=[[lane]])
        groups.append(current)
    # Sanity: the sorted capacity matrix must ascend within every chain
    # we emitted (cheap vectorized re-check of the invariant above).
    for group in groups:
        chain = np.array(group.caps, dtype=np.int64)
        if len(chain) > 1 and not bool(np.all(np.diff(chain, axis=0) >= 0)):
            raise AssertionError("capacity chain not componentwise ordered")
    return groups
