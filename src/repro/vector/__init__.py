"""Batched lockstep simulation backend (the sweep-column accelerator).

``repro.vector`` simulates a whole *sweep column* — N (config, trace)
lanes sharing one issue width and scheme, varying trace or physical
register count — as one batched job.  Lanes whose configs differ only in
PRF capacity are *coherence-grouped*: under the ordered (lowest-first)
free-list policy a machine with more registers is cycle-for-cycle,
bit-for-bit identical to a smaller one until the smaller machine's free
list first empties, so one simulation carries every lane in the group
and *forks* — a capacity-extended deep copy at the exact stall boundary
— only when lanes actually diverge.  Per-lane ``SimStats`` are
bit-identical to the scalar :mod:`repro.core.machine` run of each lane
(enforced by the differential suite in ``tests/vector``).

NumPy backs the column control plane (capacity chains, lane masks,
divergence bookkeeping) and is this package's only dependency; install
it with the ``vector`` extra (``pip install repro[vector]``).

See ``INTERNALS.md`` §9 for the layout, the lane-masking rules, and the
column-batching contract.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401 — presence check only
except ImportError as exc:  # pragma: no cover - exercised via tests with a fake
    raise ImportError(
        "repro.vector requires numpy, which is not installed.  Install the "
        "vector extra (`pip install repro[vector]` or `pip install numpy`); "
        "the scalar backend (repro.core.machine) needs no dependencies."
    ) from exc

from repro.vector.column import (  # noqa: E402
    BACKENDS,
    ColumnGroup,
    Lane,
    plan_groups,
    sharable,
)
from repro.vector.engine import (  # noqa: E402
    ColumnOutcome,
    LaneResult,
    run_column,
)

__all__ = [
    "BACKENDS",
    "ColumnGroup",
    "ColumnOutcome",
    "Lane",
    "LaneResult",
    "plan_groups",
    "run_column",
    "sharable",
]
