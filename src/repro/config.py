"""Machine configuration (the paper's Table 1).

Two reference models are provided:

* :func:`four_wide` — a conservative current-generation (2004) machine:
  4-wide fetch/issue/commit, 32-entry scheduler.
* :func:`eight_wide` — an aggressive future machine: 8-wide, 512-entry
  scheduler (effectively unbounded, matching the ROB).

Both use a 512-entry ROB, 256-entry LSQ, 64 INT + 64 FP physical
registers, a combined bimodal/gshare predictor with a 16-entry RAS and a
1k-entry 4-way BTB, and the paper's cache hierarchy (IL1 2 cycles, DL1 2,
L2 12, memory 150).  The PRI width threshold is 7 bits for the 4-wide
model and 10 bits for the 8-wide model.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict


class WarPolicy(enum.Enum):
    """How PRI avoids the register-file WAR hazard of Figure 6.

    ``REFCOUNT`` holds the physical register until every consumer that
    renamed against it has read it (realistic).  ``IDEAL`` models an
    instantaneous associative search/update of the payload RAM: stale
    pointers are patched in place and the register frees immediately
    (upper bound).  ``REPLAY`` is the detect-and-replay mechanism the
    paper mentions and dismisses as too costly; we implement it as an
    ablation: a consumer that reads a reallocated register is squashed
    and replayed through the map, paying a replay penalty.
    """

    REFCOUNT = "refcount"
    IDEAL = "ideal"
    REPLAY = "replay"


class CheckpointPolicy(enum.Enum):
    """How PRI keeps shadow-map checkpoints consistent (Section 3.2).

    ``CKPTCOUNT`` — each checkpoint holds a reference on every physical
    register it names; an inlined register cannot free until those
    checkpoints retire.  ``LAZY`` — checkpointed copies are patched lazily
    by background logic, so checkpoints never delay freeing.
    """

    CKPTCOUNT = "ckptcount"
    LAZY = "lazy"


@dataclass(frozen=True)
class PriConfig:
    """Physical-register-inlining knobs.

    ``int_width_bits`` is the number of *value* bits available in a map
    entry after the mode bit (7 for the 4-wide model's 8-bit identifiers,
    10 for the 8-wide model's 11-bit identifiers).  FP registers are
    inlined only when the whole 64-bit pattern is all zeroes or all ones.
    """

    enabled: bool = False
    int_width_bits: int = 7
    inline_fp: bool = True
    war_policy: WarPolicy = WarPolicy.REFCOUNT
    checkpoint_policy: CheckpointPolicy = CheckpointPolicy.CKPTCOUNT
    #: Future-work extension (paper Section 6): treat a load-immediate of
    #: a narrow value as a compiler dead-register hint and inline/free at
    #: rename rather than retire.
    inline_on_load_immediate: bool = False


@dataclass(frozen=True)
class AuditConfig:
    """Self-auditing machine invariants (see :mod:`repro.audit`).

    When enabled, an :class:`~repro.audit.InvariantAuditor` is attached
    to the machine and re-derives the register-reclamation bookkeeping
    from first principles — free-list conservation, refcount balance,
    map/checkpoint consistency — raising a structured
    :class:`~repro.audit.AuditError` on the first divergence instead of
    letting a bug silently corrupt results.
    """

    enabled: bool = False
    #: Cycles between periodic full audits (1 = every cycle; used by the
    #: fault-injection tests, far too slow for real sweeps).
    interval: int = 2048
    #: Also audit at every commit boundary (any cycle that commits at
    #: least one instruction).  Aggressive; off by default.
    check_commits: bool = False
    #: Run the end-of-run audit (PRF leak detection) from ``_finalize``.
    final: bool = True


@dataclass(frozen=True)
class OracleConfig:
    """Golden-model differential oracle (see :mod:`repro.oracle`).

    When enabled, a :class:`~repro.oracle.CommitOracle` is attached to the
    machine: a small in-order ISA-level functional model executes the same
    trace, and every retired instruction's destination value, branch
    outcome, and memory effect is compared against the out-of-order
    machine.  A divergence raises a structured
    :class:`~repro.oracle.OracleDivergence` instead of letting a value
    corruption (the Figure 6 WAR hazard) silently skew results.  This is
    the *value-level* counterpart to :class:`AuditConfig`'s structural
    invariants.
    """

    enabled: bool = False
    #: Cycles between full architectural-state comparisons (every logical
    #: register with no in-flight writer is checked against the golden
    #: model).  0 disables the periodic sweep; per-commit checks still run.
    interval: int = 512
    #: Also run the architectural comparison from ``_finalize``.
    final: bool = True


@dataclass(frozen=True)
class CacheConfig:
    """One cache level: size/assoc/line in bytes, hit latency in cycles."""

    size: int
    assoc: int
    line: int
    latency: int


@dataclass(frozen=True)
class MemoryConfig:
    """The paper's memory system (Table 1)."""

    il1: CacheConfig = CacheConfig(size=32 * 1024, assoc=2, line=32, latency=2)
    dl1: CacheConfig = CacheConfig(size=32 * 1024, assoc=4, line=16, latency=2)
    l2: CacheConfig = CacheConfig(size=512 * 1024, assoc=4, line=64, latency=12)
    memory_latency: int = 150


@dataclass(frozen=True)
class BranchConfig:
    """Combined bimodal/gshare predictor with selector (Table 1)."""

    bimodal_entries: int = 4096
    gshare_entries: int = 4096
    selector_entries: int = 4096
    history_bits: int = 12
    btb_entries: int = 1024
    btb_assoc: int = 4
    ras_entries: int = 16
    #: Minimum misprediction recovery, in cycles (Table 1: "at least 11").
    min_mispredict_penalty: int = 11


@dataclass(frozen=True)
class MachineConfig:
    """Full machine model.  See Table 1 of the paper."""

    name: str = "4-wide"
    width: int = 4
    rob_entries: int = 512
    lsq_entries: int = 256
    scheduler_entries: int = 32
    int_phys_regs: int = 64
    fp_phys_regs: int = 64
    #: Free-list allocation order (see :mod:`repro.rename.free_list`):
    #: ``ordered`` (lowest-numbered free register first — the default,
    #: and the property the batched vector backend's capacity-grouping
    #: relies on) or ``fifo`` (release-order recycling).  Allocation
    #: order is a modeling choice the paper leaves open; it does not
    #: change any scheme's timing except through which register numbers
    #: get reused (visible only in the REPLAY WAR policy's replay count
    #: and PRI's duplicate-dealloc accounting).
    alloc_policy: str = "ordered"
    max_checkpoints: int = 64
    #: Pipeline front end: Fetch, Decode, Rename (instruction renamed
    #: ``frontend_depth`` cycles after fetch).
    frontend_depth: int = 3
    #: Back-end depth between select and execute: Disp, Disp, RF, RF
    #: (Figure 5).  Operands are read ``rf_read_offset`` cycles after
    #: select; execution begins after ``exec_offset`` cycles.
    exec_offset: int = 4
    rf_read_offset: int = 3
    #: Cycles between completion (end of Exe) and the Retire stage where
    #: PRI's significance check runs and the map is written (Figure 5).
    retire_offset: int = 1
    #: Front-end redirect cost added after a mispredicted branch resolves;
    #: combined with the front-end and dispatch depths this yields the
    #: Table 1 "at least 11 cycles" recovery.
    mispredict_redirect: int = 4
    #: Penalty applied when the REPLAY WAR policy replays a consumer
    #: through the map (extension; see DESIGN.md §6).
    war_replay_penalty: int = 3
    #: Deadlock watchdog: abort with :class:`SimulationError` after this
    #: many cycles without a commit.
    deadlock_cycles: int = 100_000
    pri: PriConfig = field(default_factory=PriConfig)
    audit: AuditConfig = field(default_factory=AuditConfig)
    oracle: OracleConfig = field(default_factory=OracleConfig)
    #: Prior-work early release (Moudgill et al. [27]): complete flag +
    #: unmap flags + reader counter per physical register.
    early_release: bool = False
    branch: BranchConfig = field(default_factory=BranchConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: Loads are speculatively scheduled assuming a DL1 hit; dependents
    #: issued in the shadow of a miss are selectively replayed.
    speculative_scheduling: bool = True
    #: Testing/ablation knob: fetch never stalls on the IL1.  Useful for
    #: isolating back-end effects and for exact-timing unit tests.
    perfect_icache: bool = False
    #: Future-work extension (paper §6, refs [7]/[17]): delayed register
    #: allocation through virtual-physical registers.  Rename binds each
    #: destination to an unbounded *virtual* tag; a physical register is
    #: claimed only when the instruction issues, eliminating the
    #: allocate→write phase of register lifetime.  Consumers read through
    #: the virtual tag, so PRI's WAR policies are moot in this mode
    #: (inlined registers free immediately); combining it with ER is not
    #: supported.
    virtual_physical: bool = False

    def with_virtual_physical(self) -> "MachineConfig":
        """Copy of this config with delayed (virtual-physical) allocation."""
        return replace(self, virtual_physical=True)

    def with_pri(
        self,
        war_policy: WarPolicy = WarPolicy.REFCOUNT,
        checkpoint_policy: CheckpointPolicy = CheckpointPolicy.CKPTCOUNT,
        **overrides,
    ) -> "MachineConfig":
        """Copy of this config with PRI enabled under the given policies."""
        pri = replace(
            self.pri,
            enabled=True,
            war_policy=war_policy,
            checkpoint_policy=checkpoint_policy,
            **overrides,
        )
        return replace(self, pri=pri)

    def with_early_release(self) -> "MachineConfig":
        """Copy of this config with the ER scheme enabled."""
        return replace(self, early_release=True)

    def with_audit(self, **overrides) -> "MachineConfig":
        """Copy of this config with the invariant auditor enabled."""
        audit = replace(self.audit, enabled=True, **overrides)
        return replace(self, audit=audit)

    def with_oracle(self, **overrides) -> "MachineConfig":
        """Copy of this config with the golden-model oracle enabled."""
        oracle = replace(self.oracle, enabled=True, **overrides)
        return replace(self, oracle=oracle)

    def with_phys_regs(self, int_regs: int, fp_regs: int = None) -> "MachineConfig":
        """Copy with a different physical register file size (Figure 9)."""
        if fp_regs is None:
            fp_regs = int_regs
        return replace(self, int_phys_regs=int_regs, fp_phys_regs=fp_regs)

    def with_alloc_policy(self, policy: str) -> "MachineConfig":
        """Copy with a different free-list allocation policy."""
        return replace(self, alloc_policy=policy)


def four_wide() -> MachineConfig:
    """The paper's conservative 4-wide machine (Table 1, left column)."""
    return MachineConfig(
        name="4-wide",
        width=4,
        scheduler_entries=32,
        pri=PriConfig(enabled=False, int_width_bits=7),
    )


def eight_wide() -> MachineConfig:
    """The paper's aggressive 8-wide machine (Table 1, right column)."""
    return MachineConfig(
        name="8-wide",
        width=8,
        scheduler_entries=512,
        pri=PriConfig(enabled=False, int_width_bits=10),
    )


#: Figure 9's register-file sweep points.
PRF_SWEEP_SIZES = (40, 48, 56, 64, 72, 80, 96)

#: A register count large enough that the free list never empties in
#: practice; used for the "Inf Physical Register" upper-bound runs.
EFFECTIVELY_INFINITE_REGS = 4096


# ===================================================== serialization

def config_to_dict(config: MachineConfig) -> Dict:
    """Canonical JSON-serializable form of a :class:`MachineConfig`.

    Enums become their string values; nested dataclasses become nested
    dicts.  Inverse of :func:`config_from_dict`; the canonical rendering
    is what :func:`config_digest` hashes, so two configs digest equal iff
    every simulation-relevant field matches.
    """

    def convert(value):
        if isinstance(value, enum.Enum):
            return value.value
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return {
                f.name: convert(getattr(value, f.name))
                for f in dataclasses.fields(value)
            }
        return value

    return convert(config)


def config_from_dict(data: Dict) -> MachineConfig:
    """Inverse of :func:`config_to_dict`.

    Unknown keys raise ``TypeError`` (a digest mismatch would have caught
    the incompatibility anyway); missing keys take the dataclass default,
    so older snapshots load under a newer schema when fields only grew.
    """
    payload = dict(data)
    pri = dict(payload.get("pri", {}))
    if "war_policy" in pri:
        pri["war_policy"] = WarPolicy(pri["war_policy"])
    if "checkpoint_policy" in pri:
        pri["checkpoint_policy"] = CheckpointPolicy(pri["checkpoint_policy"])
    payload["pri"] = PriConfig(**pri)
    payload["audit"] = AuditConfig(**payload.get("audit", {}))
    payload["oracle"] = OracleConfig(**payload.get("oracle", {}))
    payload["branch"] = BranchConfig(**payload.get("branch", {}))
    memory = dict(payload.get("memory", {}))
    for level in ("il1", "dl1", "l2"):
        if level in memory:
            memory[level] = CacheConfig(**memory[level])
    payload["memory"] = MemoryConfig(**memory)
    return MachineConfig(**payload)


def config_digest(config: MachineConfig, length: int = 12) -> str:
    """Short stable hex digest over every field of ``config``.

    Used by the sweep journal's cell keys (two cells with different
    machine configurations must never collide) and by snapshot/restore
    (a checkpoint must only restore into the machine that wrote it).
    """
    canonical = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]
