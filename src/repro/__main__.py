"""Top-level simulator CLI.

Run one benchmark under one scheme and print the statistics::

    python -m repro gzip                       # base 4-wide machine
    python -m repro gzip --scheme PRI+ER       # any Figure 10 scheme
    python -m repro mcf --width 8 --length 10000 --regs 96
    python -m repro gzip --backend vector --regs 64,96,128,256
    python -m repro --list                     # available benchmarks

For the full table/figure harness use ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.machine import SimulationError, simulate
from repro.experiments.runner import SCHEMES, width_config
from repro.workloads import ALL_BENCHMARKS, generate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Simulate one benchmark profile on the paper's machine.",
    )
    parser.add_argument("benchmark", nargs="?", help="benchmark profile name")
    parser.add_argument("--scheme", default="base", choices=sorted(SCHEMES),
                        help="register reclamation scheme (default: base)")
    parser.add_argument("--width", type=int, choices=(4, 8), default=4)
    parser.add_argument("--length", type=int, default=6000,
                        help="timed instructions (default 6000)")
    parser.add_argument("--warmup", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--regs", default=None,
                        help="override the physical register count per "
                             "class; with --backend vector, a "
                             "comma-separated list sweeps the sizes as "
                             "one batched column")
    parser.add_argument("--backend", choices=("scalar", "vector"),
                        default="scalar",
                        help="simulation backend: 'vector' runs the "
                             "--regs size sweep as one lockstep column "
                             "(bit-identical stats; needs numpy)")
    parser.add_argument("--audit", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="attach the machine invariant auditor "
                             "(repro.audit): bookkeeping corruption aborts "
                             "the run with a structured diagnostic")
    parser.add_argument("--oracle", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="attach the golden-model differential oracle "
                             "(repro.oracle): any committed value, branch "
                             "outcome, or memory effect that diverges from "
                             "in-order execution aborts the run with a "
                             "structured OracleDivergence")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="snapshot the full machine state every N "
                             "cycles; an interrupted run resumes from its "
                             "last checkpoint on the next invocation")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for checkpoint files "
                             "(default: .repro-checkpoints)")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="N",
                        help="abort if the run needs more than N cycles")
    parser.add_argument("--list", action="store_true",
                        help="list benchmark profiles and exit")
    args = parser.parse_args(argv)

    if args.list:
        for profile in ALL_BENCHMARKS:
            print(f"{profile.name:10s} [{profile.suite}]  {profile.notes}")
        return 0
    if not args.benchmark:
        parser.error("benchmark name required (or --list)")

    try:
        reg_sizes = ([int(r) for r in str(args.regs).split(",")]
                     if args.regs is not None else [])
    except ValueError:
        parser.error(f"--regs must be an integer or a comma-separated "
                     f"list of integers, got {args.regs!r}")
    if len(reg_sizes) > 1 and args.backend != "vector":
        parser.error("multiple --regs sizes need --backend vector")

    config = SCHEMES[args.scheme](width_config(args.width))
    if len(reg_sizes) == 1:
        config = config.with_phys_regs(reg_sizes[0])
    if args.audit:
        config = config.with_audit()
    if args.oracle:
        config = config.with_oracle()

    print(f"generating {args.benchmark!r}: {args.length} timed + "
          f"{args.warmup} warmup instructions (seed {args.seed})")
    trace = generate_trace(args.benchmark, args.length, seed=args.seed,
                           warmup=args.warmup)

    if args.backend == "vector":
        return _run_vector(args, config, trace, reg_sizes)
    start = time.time()
    try:
        if args.checkpoint_every:
            from repro.config import config_digest
            from repro.experiments.runner import RunSpec, _run_checkpointed

            spec = RunSpec(
                length=args.length, warmup=args.warmup, seed=args.seed,
                max_cycles=args.max_cycles,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
            )
            import os

            path = os.path.join(
                args.checkpoint_dir or ".repro-checkpoints",
                f"{args.benchmark}-{args.scheme}-w{args.width}"
                f"-n{args.length}-s{args.seed}"
                f"-{config_digest(config)}.ckpt.json",
            )
            stats = _run_checkpointed(config, trace, path, spec)
        else:
            stats = simulate(config, trace, max_cycles=args.max_cycles)
    except SimulationError as err:
        print(f"simulation failed: {err}", file=sys.stderr)
        diagnostic = getattr(err, "diagnostic", None)
        if diagnostic:
            for key, value in diagnostic.items():
                print(f"  {key}: {value}", file=sys.stderr)
        return 1
    elapsed = time.time() - start
    if args.max_cycles is not None and stats.committed < len(trace):
        print(f"simulation failed: cycle watchdog: committed only "
              f"{stats.committed}/{len(trace)} instructions in "
              f"{args.max_cycles} cycles", file=sys.stderr)
        return 1

    print(f"scheme {args.scheme!r} on the {config.name} machine "
          f"({config.int_phys_regs} INT + {config.fp_phys_regs} FP regs)")
    print(stats.summary())
    life = stats.lifetime("int")
    print(f"branches: {stats.branches} committed, "
          f"{stats.mispredicts} mispredicts, {stats.squashed} ops squashed")
    print(f"register lifetime (INT): alloc->write {life.avg_alloc_to_write:.1f}, "
          f"write->last-read {life.avg_write_to_last_read:.1f}, "
          f"last-read->release {life.avg_last_read_to_release:.1f} cycles")
    if stats.inline_attempts:
        print(f"PRI: {stats.inline_attempts} narrow results at retire, "
              f"{stats.inlined} inlined ({stats.inline_waw_dropped} WAW-dropped), "
              f"{stats.pri_early_frees} early frees "
              f"({stats.pri_frees_deferred} deferred by references)")
    if stats.er_early_frees:
        print(f"ER: {stats.er_early_frees} early frees, "
              f"{stats.duplicate_deallocs} duplicate deallocations absorbed")
    if stats.audits:
        print(f"audit: {stats.audits} invariant audits, all clean")
    if stats.oracle_commits:
        print(f"oracle: {stats.oracle_commits} commits compared "
              f"({stats.oracle_dest_checks} destinations observable, "
              f"{stats.oracle_unobserved} already reclaimed), "
              f"{stats.oracle_arch_checks} architectural sweeps, all clean")
    print(f"[{elapsed:.1f}s, {stats.cycles / max(elapsed, 1e-9):,.0f} cycles/s]")
    return 0


def _run_vector(args, config, trace, reg_sizes) -> int:
    """Run a PRF size sweep (or a single config) as one batched column."""
    try:
        from repro.vector import Lane, run_column
    except ImportError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1

    if reg_sizes:
        lanes = [Lane(key=str(size), config=config.with_phys_regs(size),
                      trace=trace)
                 for size in reg_sizes]
    else:
        lanes = [Lane(key=str(config.int_phys_regs), config=config,
                      trace=trace)]
    start = time.time()
    outcome = run_column(lanes, max_cycles=args.max_cycles)
    elapsed = time.time() - start
    print(f"scheme {args.scheme!r}, {len(lanes)} lane(s) in "
          f"{outcome.groups} coherence group(s), {outcome.forks} fork(s)")
    failures = 0
    print(f"{'PR':>6s} {'cycles':>9s} {'IPC':>6s} {'committed':>9s}")
    for lane in lanes:
        result = outcome.results[lane.key]
        if result.error is not None:
            failures += 1
            print(f"{lane.key:>6s} failed: {result.error}", file=sys.stderr)
            continue
        stats = result.stats
        if args.max_cycles is not None and stats.committed < len(trace):
            failures += 1
            print(f"{lane.key:>6s} cycle watchdog: committed only "
                  f"{stats.committed}/{len(trace)} instructions",
                  file=sys.stderr)
            continue
        print(f"{lane.key:>6s} {stats.cycles:>9d} {stats.ipc:>6.3f} "
              f"{stats.committed:>9d}")
    print(f"[{elapsed:.1f}s, {outcome.cycles_simulated} machine-cycles "
          f"simulated for {len(lanes)} lane(s)]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
