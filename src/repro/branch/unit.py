"""Branch unit: the pipeline-facing façade over direction predictor,
BTB, and RAS."""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.combined import CombinedPredictor
from repro.branch.ras import ReturnAddressStack
from repro.config import BranchConfig
from repro.isa.instruction import MicroOp
from repro.isa.opcodes import OpClass


@dataclass(slots=True)
class BranchPrediction:
    """Outcome of predicting one branch at fetch time."""

    pred_taken: bool
    pred_target: int  # 0 when unknown (BTB/RAS miss)
    mispredicted: bool  # against the trace's actual outcome
    history_before: int  # for gshare repair on misprediction


class BranchUnit:
    """Predicts at fetch, trains at resolve, tracks accuracy statistics.

    Trace-driven operation: the actual outcome is known from the trace, so
    ``predict`` immediately classifies the prediction as correct or not;
    the *timing* consequences (when fetch redirects) are the pipeline's
    job.  Speculative global history is updated with the actual outcome at
    predict time and does not need repair, because fetch never proceeds
    down a wrong path in a trace-driven model.
    """

    def __init__(self, config: BranchConfig = None) -> None:
        config = config or BranchConfig()
        self.config = config
        self.predictor = CombinedPredictor(
            config.bimodal_entries,
            config.gshare_entries,
            config.selector_entries,
            config.history_bits,
        )
        self.btb = BranchTargetBuffer(config.btb_entries, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.history = 0
        self.predictions = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def predict(self, op: MicroOp) -> BranchPrediction:
        """Predict one branch micro-op and record accuracy."""
        history_before = self.history
        if op.op == OpClass.RETURN:
            pred_taken = True
            ras_target = self.ras.pop()
            pred_target = ras_target if ras_target is not None else 0
        elif op.op == OpClass.CALL:
            pred_taken = True
            pred_target = self.btb.lookup(op.pc) or 0
            self.ras.push(op.pc + 4)
        else:
            pred_taken = self.predictor.predict(op.pc, self.history)
            pred_target = self.btb.lookup(op.pc) or 0

        direction_wrong = pred_taken != op.taken
        target_wrong = op.taken and pred_target != op.target
        mispredicted = direction_wrong or target_wrong

        self.predictions += 1
        if direction_wrong:
            self.direction_mispredicts += 1
        elif target_wrong:
            self.target_mispredicts += 1

        if op.op == OpClass.BRANCH:
            self.history = CombinedPredictor.shift_history(
                self.history, op.taken, self.config.history_bits
            )
        return BranchPrediction(pred_taken, pred_target, mispredicted, history_before)

    def resolve(self, op: MicroOp, prediction: BranchPrediction) -> None:
        """Train tables with the actual outcome (called at execute)."""
        if op.op == OpClass.BRANCH:
            self.predictor.update(op.pc, prediction.history_before, op.taken)
        if op.taken:
            self.btb.install(op.pc, op.target)

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return (self.direction_mispredicts + self.target_mispredicts) / self.predictions
