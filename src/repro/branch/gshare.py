"""Gshare direction predictor (global history XOR PC)."""

from __future__ import annotations

from repro.branch.counters import CounterTable


class GsharePredictor:
    """Gshare: 2-bit counters indexed by (PC >> 2) XOR global history.

    The caller supplies the history register value at prediction/update
    time (the pipeline keeps a speculative history it repairs on
    misprediction); :meth:`predict`/:meth:`update` are pure table ops.
    """

    def __init__(self, num_entries: int = 4096, history_bits: int = 12) -> None:
        self.table = CounterTable(num_entries, bits=2)
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1

    def _index(self, pc: int, history: int) -> int:
        return (pc >> 2) ^ (history & self.history_mask)

    def predict(self, pc: int, history: int) -> bool:
        return self.table.predict(self._index(pc, history))

    def update(self, pc: int, history: int, taken: bool) -> None:
        self.table.update(self._index(pc, history), taken)
