"""Branch prediction substrate (Table 1).

A combined predictor: 4k-entry bimodal and 4k-entry gshare selected by a
4k-entry chooser, plus a 16-entry return address stack and a 1k-entry
4-way BTB.  The pipeline consults :class:`BranchUnit` at fetch and updates
it at branch resolution.
"""

from repro.branch.counters import SaturatingCounter, CounterTable
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.combined import CombinedPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, BranchPrediction

__all__ = [
    "SaturatingCounter",
    "CounterTable",
    "BimodalPredictor",
    "GsharePredictor",
    "CombinedPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "BranchPrediction",
]
