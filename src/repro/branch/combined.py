"""Combined (tournament) predictor: bimodal + gshare + selector."""

from __future__ import annotations

from repro.branch.bimodal import BimodalPredictor
from repro.branch.counters import CounterTable
from repro.branch.gshare import GsharePredictor


class CombinedPredictor:
    """Table 1's direction predictor: bimodal(4k) / gshare(4k) with a
    4k-entry selector.

    The selector is a table of 2-bit counters indexed by PC: high half
    means "trust gshare".  It is trained only when the two components
    disagree, as in the Alpha 21264 / SimpleScalar ``comb`` predictor.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        gshare_entries: int = 4096,
        selector_entries: int = 4096,
        history_bits: int = 12,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        self.selector = CounterTable(selector_entries, bits=2)
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1

    def predict(self, pc: int, history: int) -> bool:
        # Flattened to direct counter-array reads: this runs for every
        # conditional branch fetched (and again during warmup), and the
        # layered predict() calls dominated the branch unit's cost.
        # Table `entries` lists are read through the table objects, not
        # aliased, because snapshot restore rebinds them.
        key = pc >> 2
        sel = self.selector
        if sel.entries[key & sel._mask] > sel._threshold:
            table = self.gshare.table
            return (
                table.entries[(key ^ (history & self.history_mask)) & table._mask]
                > table._threshold
            )
        table = self.bimodal.table
        return table.entries[key & table._mask] > table._threshold

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train both components and, on disagreement, the selector."""
        key = pc >> 2
        bim_table = self.bimodal.table
        bim = bim_table.entries[key & bim_table._mask] > bim_table._threshold
        gsh_table = self.gshare.table
        gsh_key = key ^ (history & self.history_mask)
        gsh = gsh_table.entries[gsh_key & gsh_table._mask] > gsh_table._threshold
        if bim != gsh:
            self.selector.update(key, taken == gsh)
        bim_table.update(key, taken)
        gsh_table.update(gsh_key, taken)

    @staticmethod
    def shift_history(history: int, taken: bool, history_bits: int) -> int:
        """Append one outcome to a global history register."""
        return ((history << 1) | int(taken)) & ((1 << history_bits) - 1)
