"""Combined (tournament) predictor: bimodal + gshare + selector."""

from __future__ import annotations

from repro.branch.bimodal import BimodalPredictor
from repro.branch.counters import CounterTable
from repro.branch.gshare import GsharePredictor


class CombinedPredictor:
    """Table 1's direction predictor: bimodal(4k) / gshare(4k) with a
    4k-entry selector.

    The selector is a table of 2-bit counters indexed by PC: high half
    means "trust gshare".  It is trained only when the two components
    disagree, as in the Alpha 21264 / SimpleScalar ``comb`` predictor.
    """

    def __init__(
        self,
        bimodal_entries: int = 4096,
        gshare_entries: int = 4096,
        selector_entries: int = 4096,
        history_bits: int = 12,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        self.selector = CounterTable(selector_entries, bits=2)
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1

    def predict(self, pc: int, history: int) -> bool:
        if self.selector.predict(pc >> 2):
            return self.gshare.predict(pc, history)
        return self.bimodal.predict(pc)

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train both components and, on disagreement, the selector."""
        bim = self.bimodal.predict(pc)
        gsh = self.gshare.predict(pc, history)
        if bim != gsh:
            self.selector.update(pc >> 2, taken == gsh)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, history, taken)

    @staticmethod
    def shift_history(history: int, taken: bool, history_bits: int) -> int:
        """Append one outcome to a global history register."""
        return ((history << 1) | int(taken)) & ((1 << history_bits) - 1)
