"""Saturating counters and counter tables, the building block of all the
direction predictors."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The counter predicts taken when in the upper half of its range.
    2-bit counters (the default) are what the paper's bimodal and gshare
    tables use.
    """

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: int = None) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self.maximum = (1 << bits) - 1
        # Weakly-not-taken initial state by convention.
        self.value = (self.maximum >> 1) if initial is None else initial
        if not 0 <= self.value <= self.maximum:
            raise ValueError("initial value out of range")

    @property
    def taken(self) -> bool:
        return self.value > self.maximum >> 1

    def update(self, taken: bool) -> None:
        if taken:
            if self.value < self.maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


class CounterTable:
    """A direct-mapped table of n-bit saturating counters.

    Stored as a flat list of ints for speed; the :class:`SaturatingCounter`
    class above is the reference semantics (property-tested against this).
    """

    __slots__ = ("entries", "maximum", "_mask", "_threshold")

    def __init__(self, num_entries: int, bits: int = 2) -> None:
        if num_entries <= 0 or num_entries & (num_entries - 1):
            raise ValueError("table size must be a positive power of two")
        self.maximum = (1 << bits) - 1
        self._mask = num_entries - 1
        self._threshold = self.maximum >> 1
        self.entries = [self._threshold] * num_entries

    def __len__(self) -> int:
        return len(self.entries)

    def index(self, key: int) -> int:
        return key & self._mask

    def predict(self, key: int) -> bool:
        return self.entries[key & self._mask] > self._threshold

    def update(self, key: int, taken: bool) -> None:
        i = key & self._mask
        v = self.entries[i]
        if taken:
            if v < self.maximum:
                self.entries[i] = v + 1
        elif v > 0:
            self.entries[i] = v - 1
