"""Bimodal (per-PC two-bit counter) direction predictor."""

from __future__ import annotations

from repro.branch.counters import CounterTable


class BimodalPredictor:
    """Classic bimodal predictor: a table of 2-bit counters indexed by PC.

    Captures strongly biased branches; defeated by patterned or
    history-correlated branches (which gshare handles).
    """

    def __init__(self, num_entries: int = 4096) -> None:
        self.table = CounterTable(num_entries, bits=2)

    def _index(self, pc: int) -> int:
        return pc >> 2

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
