"""Return address stack."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """A fixed-depth return address stack (Table 1: 16 entries).

    Overflow wraps (oldest entry lost), underflow predicts nothing —
    both produce the realistic mispredictions deep call chains cause.
    The pipeline snapshots/restores the stack around control speculation.
    """

    def __init__(self, depth: int = 16) -> None:
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def snapshot(self) -> List[int]:
        return list(self._stack)

    def restore(self, snap: List[int]) -> None:
        self._stack = list(snap)

    def __len__(self) -> int:
        return len(self._stack)
