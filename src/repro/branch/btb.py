"""Branch target buffer: set-associative PC → target cache."""

from __future__ import annotations

from typing import Optional


class BranchTargetBuffer:
    """A set-associative BTB with LRU replacement (Table 1: 1k-entry,
    4-way).

    ``lookup`` returns the cached target or None (a taken branch with a
    BTB miss costs a fetch redirect even when the direction was predicted
    correctly).
    """

    def __init__(self, num_entries: int = 1024, assoc: int = 4) -> None:
        if num_entries % assoc:
            raise ValueError("entries must be divisible by associativity")
        self.num_sets = num_entries // assoc
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.assoc = assoc
        # Each set is an ordered list of (tag, target); index 0 is MRU.
        self._sets = [[] for _ in range(self.num_sets)]

    def _set_and_tag(self, pc: int):
        index = (pc >> 2) & (self.num_sets - 1)
        tag = pc >> 2
        return self._sets[index], tag

    def lookup(self, pc: int) -> Optional[int]:
        entries, tag = self._set_and_tag(pc)
        for i, (t, target) in enumerate(entries):
            if t == tag:
                if i:
                    entries.insert(0, entries.pop(i))
                return target
        return None

    def install(self, pc: int, target: int) -> None:
        entries, tag = self._set_and_tag(pc)
        for i, (t, _) in enumerate(entries):
            if t == tag:
                entries.pop(i)
                break
        entries.insert(0, (tag, target))
        if len(entries) > self.assoc:
            entries.pop()
