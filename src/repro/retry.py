"""One retry policy for every transient-failure site in the tree.

Before this module, three places re-derived "wait a bit, try again"
independently: the isolated-cell pool retried crashed/timed-out cells,
the farm broker fenced reclaimed cells with a backoff, and (new in the
transport layer) the HTTP lease client retried failed RPCs.  They now
share exactly one implementation of each half of the problem:

:func:`backoff_delay`
    The *schedule*: jittered, capped exponential backoff.  The jitter is
    a hash of ``(token, attempt)`` — not a clock, not an RNG — so retry
    schedules are bit-reproducible run to run, yet spread across tokens:
    a mass-failure round (OOM storm, server restart) fans back in over
    ``[cap/2, cap)`` instead of thundering back as one herd.

:func:`call_with_retry` / :class:`RetryPolicy`
    The *loop*: attempt, classify the failure (retryable vs fatal),
    sleep the scheduled delay, and give up — with a typed
    :class:`RetryExhausted` carrying the full attempt history — once the
    policy's attempt budget or wall-clock deadline is spent.  The clock
    and sleep are injectable, so tests drive the loop deterministically
    without real waiting.

Classification is the caller's: pass ``retryable`` to say which
exceptions are transient (a refused connection, a 503) and which are
verdicts (a fencing rejection, a malformed request).  A fatal error is
re-raised immediately, attempt one included.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TypeVar

T = TypeVar("T")


def backoff_delay(attempt: int, base: float, cap: float = 30.0,
                  token: str = "") -> float:
    """Jittered, capped exponential backoff.

    Deterministic (the jitter is a hash of ``token`` and ``attempt``,
    not a clock or RNG) so retry schedules are reproducible, yet spread
    across tokens — a mass-failure round fans back in over
    ``[cap/2, cap)`` instead of thundering back as one herd.
    """
    if attempt < 1:
        attempt = 1
    raw = min(cap, base * (2 ** (attempt - 1)))
    digest = hashlib.sha256(f"{token}|{attempt}".encode("utf-8")).digest()
    jitter = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return raw * (0.5 + jitter / 2)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: the schedule's shape plus two independent
    give-up conditions (either alone bounds the loop; both may be set).
    """

    #: First-retry delay (seconds); doubles per attempt up to ``cap``.
    base: float = 0.5
    #: Ceiling on any single delay (seconds).
    cap: float = 30.0
    #: Total wall-clock budget across all attempts (None: unbounded).
    #: The loop never *starts* a sleep that would cross the deadline.
    deadline: Optional[float] = None
    #: Maximum attempts, the first one included (None: unbounded).
    max_attempts: Optional[int] = None

    def delay(self, attempt: int, token: str = "") -> float:
        """The scheduled delay *after* the given (1-based) attempt."""
        return backoff_delay(attempt, self.base, cap=self.cap, token=token)


class RetryExhausted(RuntimeError):
    """The retry budget (attempts or deadline) is spent.

    Carries the last underlying exception (``last``, also chained as
    ``__cause__``), how many attempts were made, and the elapsed
    wall-clock — enough for the caller to produce an actionable typed
    error instead of a bare timeout."""

    def __init__(self, message: str, *, last: BaseException,
                 attempts: int, elapsed: float) -> None:
        super().__init__(message)
        self.last = last
        self.attempts = attempts
        self.elapsed = elapsed


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    retryable: Callable[[BaseException], bool],
    token: str = "",
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``fn`` until it returns, a fatal error occurs, or ``policy``
    is exhausted.

    * an exception for which ``retryable(exc)`` is false re-raises
      immediately — it is a verdict, not weather;
    * a retryable failure sleeps :meth:`RetryPolicy.delay` (jittered by
      ``token``) and tries again, unless the next sleep would cross the
      policy's deadline or the attempt budget is already spent — then
      :class:`RetryExhausted` is raised from the last failure;
    * ``on_retry(attempt, exc, delay)`` is invoked before each sleep
      (logging, counters);
    * ``clock``/``sleep`` default to real time and are injectable so
      tests exercise the loop deterministically.
    """
    started = clock()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except BaseException as exc:  # noqa: BLE001 — classified below
            if not retryable(exc):
                raise
            elapsed = clock() - started
            budget_spent = (
                policy.max_attempts is not None
                and attempt >= policy.max_attempts
            )
            delay = policy.delay(attempt, token=token)
            deadline_crossed = (
                policy.deadline is not None
                and elapsed + delay > policy.deadline
            )
            if budget_spent or deadline_crossed:
                why = ("attempt budget" if budget_spent
                       else f"{policy.deadline:.1f}s deadline")
                raise RetryExhausted(
                    f"{why} exhausted after {attempt} attempt(s) in "
                    f"{elapsed:.1f}s: [{type(exc).__name__}] {exc}",
                    last=exc, attempts=attempt, elapsed=elapsed,
                ) from exc
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
