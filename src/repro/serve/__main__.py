"""CLI for the simulation service.

    # run the service in the foreground
    python -m repro.serve serve /tmp/serve --port 8700

    # submit a job (prints the job id; --wait blocks for the stats)
    python -m repro.serve submit --server http://127.0.0.1:8700 \\
        --benchmark gzip --scheme pri --width 4

    # poll one job / fetch its stats / trim the cache
    python -m repro.serve status --server ... <job-id>
    python -m repro.serve fetch --server ... --benchmark gzip --scheme pri
    python -m repro.serve gc --server ... --max-entries 512
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve.client import ServeClient, ServeRequestError, ServeUnavailable
from repro.serve.executor import SERVE_BACKENDS
from repro.serve.server import BATCH_WINDOW, ServeServer


def _job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmark", required=True)
    parser.add_argument("--scheme", default="base")
    parser.add_argument("--width", type=int, default=4, choices=(4, 8))
    parser.add_argument("--length", type=int, default=6000)
    parser.add_argument("--warmup", type=int, default=20000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--max-cycles", type=int, default=None)
    parser.add_argument("--regs", type=int, default=None,
                        help="override both PRF capacities (Figure 9 axis)")


def _job_from_args(args: argparse.Namespace) -> dict:
    job = {
        "benchmark": args.benchmark, "scheme": args.scheme,
        "width": args.width, "length": args.length,
        "warmup": args.warmup, "seed": args.seed,
    }
    if args.max_cycles is not None:
        job["max_cycles"] = args.max_cycles
    if args.regs is not None:
        job["regs"] = args.regs
    return job


def _client(args: argparse.Namespace) -> ServeClient:
    return ServeClient(args.server, timeout=args.timeout)


def _emit(payload: dict) -> None:
    json.dump(payload, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="simulation-as-a-service: server and client",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service in the foreground")
    serve.add_argument("root", help="state directory (journal + cache)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8700)
    serve.add_argument("--backend", default="auto", choices=SERVE_BACKENDS)
    serve.add_argument("--batch-window", type=float, default=BATCH_WINDOW,
                       help="seconds to linger so bursts coalesce")
    serve.add_argument("--farm-workers", type=int, default=2)
    serve.add_argument("--verbose", action="store_true")

    def _remote(name: str, help_text: str) -> argparse.ArgumentParser:
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--server", required=True,
                       help="service URL, e.g. http://127.0.0.1:8700")
        p.add_argument("--timeout", type=float, default=10.0)
        return p

    submit = _remote("submit", "submit one job (prints id and state)")
    _job_arguments(submit)
    submit.add_argument("--wait", type=float, default=None, metavar="SECONDS",
                        help="block until terminal and print the record")

    status = _remote("status", "poll one job by id")
    status.add_argument("job_id")

    fetch = _remote("fetch", "submit-and-wait: print the stats record")
    _job_arguments(fetch)
    fetch.add_argument("--wait", type=float, default=120.0, metavar="SECONDS")

    gc = _remote("gc", "trim the result cache")
    gc.add_argument("--max-age", type=float, default=None,
                    help="drop entries older than this many seconds")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="keep only the newest N entries")

    _remote("metrics", "print the /metrics counters")

    args = parser.parse_args(argv)

    if args.command == "serve":
        server = ServeServer(
            args.root, host=args.host, port=args.port, backend=args.backend,
            batch_window=args.batch_window, farm_workers=args.farm_workers,
            verbose=args.verbose,
        )
        print(f"serving {args.root} on {server.url} "
              f"(backend={server.state.executor.backend})", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.stop()
        return 0

    client = _client(args)
    try:
        if args.command == "submit":
            response = client.submit(_job_from_args(args))
            if args.wait is not None and response.get("state") not in (
                    "done", "failed"):
                response = client.wait(response["id"], timeout=args.wait)
            _emit(response)
            return 0
        if args.command == "status":
            _emit(client.status(args.job_id))
            return 0
        if args.command == "fetch":
            record = client.fetch(_job_from_args(args), timeout=args.wait)
            _emit(record)
            return 0 if record.get("state") == "done" else 1
        if args.command == "gc":
            _emit(client.gc(max_age=args.max_age,
                            max_entries=args.max_entries))
            return 0
        if args.command == "metrics":
            _emit(client.metrics())
            return 0
    except ServeRequestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServeUnavailable as exc:
        print(f"error: service unreachable: {exc}", file=sys.stderr)
        return 3
    return 2


if __name__ == "__main__":
    sys.exit(main())
