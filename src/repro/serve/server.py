"""Simulation-as-a-service: the async HTTP job server.

``python -m repro.serve serve <root>`` turns the simulator into a
long-lived service.  Clients POST (config, trace-spec) jobs as JSON;
the server keys each one by the existing config-digest + trace-identity
cell key and answers from the content-addressed result cache
(:mod:`repro.serve.cache`).  The request paths compose three levels of
demand collapsing, cheapest first:

1. **Cache hit** — the key's result is already durably stored: answered
   immediately, O(1), no simulation.
2. **In-flight dedup** — a job with this id is already queued or
   running: the submission attaches to it (N identical concurrent
   submissions → one simulation).  The id *is* the hash of the key, so
   dedup is structural, not a lookup table that can drift.
3. **Batch coalescing** — cold misses are queued, collected for a short
   batch window, grouped by :meth:`~repro.serve.jobs.JobSpec.batch_key`,
   and handed to the executor — where the vector backend's column
   planner merges capacity-only-differing misses onto shared machines
   (:mod:`repro.vector.column`), and the farm backend fans a batch out
   across workers.

Durability contract: a submission is **acked** (the HTTP response says
``queued``) only after its ``queued`` transition is fsynced into the
job journal; a job is reported ``done`` only after its stats are
durably in the result cache *and* the ``done`` transition is journaled
— in that order, so a replayed ``done`` whose cache entry is unreadable
is detected at recovery and the job re-runs.  SIGKILL the server at any
instant and restart it: every acked job is re-enqueued (or already
answered), nothing acked is lost, and nothing is simulated twice whose
result survived.

The wire idioms — rid replay cache for idempotent POSTs, one lock,
compute-under-lock / transmit-outside — are the farm lease service's
(:mod:`repro.farm.server`); long-polling (``/wait``) rides the same
lock's condition variable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.serve.cache import ResultCache
from repro.serve.executor import BatchExecutor, FarmOptions, JobResult
from repro.serve.jobs import JobError, JobJournal, JobSpec, parse_job

#: How many request-id -> response entries the replay cache keeps.
RID_CACHE_SIZE = 4096

#: Default seconds the executor waits after the first queued job so that
#: a burst of submissions lands in one batch (and one vector column).
BATCH_WINDOW = 0.05

#: Upper bound a single ``/wait`` long-poll may block, seconds.
MAX_WAIT = 60.0


class ServeState:
    """Everything the service knows, plus its on-disk recovery story.

    One lock serializes every RPC and executor callback; its condition
    variable wakes the executor (new work) and long-pollers (job done).
    """

    def __init__(self, root: str, backend: str = "auto",
                 batch_window: float = BATCH_WINDOW,
                 farm_workers: int = 2) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)
        self.cache = ResultCache(os.path.join(root, "cache"))
        self.journal = JobJournal(os.path.join(root, "jobs.json"))
        farm_options = None
        if backend == "farm":
            farm_options = FarmOptions(root=os.path.join(root, "farm"),
                                       workers=farm_workers)
        self.executor = BatchExecutor(backend, farm_options=farm_options)
        self.batch_window = batch_window
        self.lock = threading.Lock()
        self.changed = threading.Condition(self.lock)
        #: id -> live job view: {id, key, state, ts, spec, error?, cost?}
        self.jobs: Dict[str, Dict] = {}
        #: id -> parsed spec for every job that may still need to run.
        self.specs: Dict[str, JobSpec] = {}
        #: ids waiting for the executor, submission order.
        self.queue: List[str] = []
        self.rid_cache: "OrderedDict[str, Dict]" = OrderedDict()
        self.started_unix = time.time()
        self.metrics: Dict[str, float] = {
            "submissions": 0, "cache_hits": 0, "inflight_dedup": 0,
            "misses": 0, "jobs_done": 0, "jobs_failed": 0,
            "simulations": 0, "batches": 0, "cycles_simulated": 0,
            "instructions_committed": 0, "sim_wall_seconds": 0.0,
            "recovered_jobs": 0,
        }
        self._recover()

    # ------------------------------------------------------- persistence

    def _recover(self) -> None:
        """Replay the job journal: rebuild the id -> latest-state view
        and re-enqueue every acked job the previous process never
        finished.  A ``done`` whose cache entry is unreadable (crash
        between rename and journal append is impossible — cache first —
        but media damage is not) re-runs too."""
        latest = self.journal.latest()
        specs: Dict[str, Dict] = {}
        for event in self.journal.events:
            if "spec" in event:
                specs[event["id"]] = event["spec"]
        for job_id, event in latest.items():
            record = {"id": job_id, "key": event["key"],
                      "state": event["state"], "ts": event["ts"]}
            if job_id in specs:
                record["spec"] = specs[job_id]
            if event.get("error"):
                record["error"] = event["error"]
            if event.get("cost"):
                record["cost"] = event["cost"]
            state = event["state"]
            if state == "done" and not self.cache.has(event["key"]):
                state = "queued"  # durable stats are gone: run it again
                record["state"] = "queued"
            if state in ("queued", "running"):
                spec_data = specs.get(job_id)
                if spec_data is None:
                    # Un-runnable without its spec; journaled failed so
                    # the client sees a terminal verdict, not a hang.
                    record["state"] = "failed"
                    record["error"] = {
                        "error_type": "RecoveryError",
                        "message": "job spec missing from journal",
                    }
                    self._journal(job_id, event["key"], "failed",
                                  error=record["error"])
                else:
                    record["state"] = "queued"
                    self.specs[job_id] = parse_job(spec_data)
                    self.queue.append(job_id)
                    self.metrics["recovered_jobs"] += 1
                    if state != "queued":
                        self._journal(job_id, event["key"], "queued",
                                      durable=False)
            self.jobs[job_id] = record

    def _journal(self, job_id: str, key: str, state: str, *,
                 spec: Optional[Dict] = None, error: Optional[Dict] = None,
                 cost: Optional[Dict] = None, durable: bool = True) -> None:
        event: Dict = {"id": job_id, "key": key, "state": state,
                       "ts": round(time.time(), 3)}
        if spec is not None:
            event["spec"] = spec
        if error is not None:
            event["error"] = error
        if cost is not None:
            event["cost"] = cost
        self.journal.record(event, durable=durable)

    # -------------------------------------------------------- mutations
    # All called under self.lock, all returning JSON-able dicts.

    def rpc_submit(self, body: Dict) -> Dict:
        self.metrics["submissions"] += 1
        spec = parse_job(body.get("job", {}))
        key = spec.key()
        job_id = spec.job_id()
        record = self.jobs.get(job_id)
        if record is not None and record["state"] in ("queued", "running"):
            # In-flight dedup: same key => same id => same running job.
            self.metrics["inflight_dedup"] += 1
            return {"id": job_id, "state": record["state"], "dedup": 1}
        entry = self.cache.get(key)
        if entry is not None:
            self.metrics["cache_hits"] += 1
            if record is None or record["state"] != "done":
                # First sighting of an already-cached key (e.g. warmed
                # cache, or a failed job re-submitted after repair):
                # journal the id -> key mapping so /result survives a
                # restart, then expose it as done.
                self._journal(job_id, key, "queued", spec=spec.to_dict())
                self._journal(job_id, key, "done", cost=entry.cost)
                self.jobs[job_id] = {
                    "id": job_id, "key": key, "state": "done",
                    "ts": round(time.time(), 3), "spec": spec.to_dict(),
                    "cost": entry.cost,
                }
                self.changed.notify_all()
            return {"id": job_id, "state": "done", "cached": 1}
        # Cold miss (or a failed job being retried): ack durably, queue.
        self.metrics["misses"] += 1
        self._journal(job_id, key, "queued", spec=spec.to_dict())
        self.jobs[job_id] = {"id": job_id, "key": key, "state": "queued",
                             "ts": round(time.time(), 3),
                             "spec": spec.to_dict()}
        self.specs[job_id] = spec
        self.queue.append(job_id)
        self.changed.notify_all()
        return {"id": job_id, "state": "queued"}

    def rpc_gc(self, body: Dict) -> Dict:
        max_age = body.get("max_age")
        max_entries = body.get("max_entries")
        removed = self.cache.gc(
            max_age=float(max_age) if max_age is not None else None,
            max_entries=int(max_entries) if max_entries is not None else None,
        )
        return {"removed": removed, "entries": len(self.cache)}

    # ----------------------------------------------------------- queries

    def job_view(self, job_id: str) -> Optional[Dict]:
        record = self.jobs.get(job_id)
        if record is None:
            return None
        out = {k: record[k] for k in ("id", "key", "state", "ts")}
        for extra in ("error", "cost"):
            if extra in record:
                out[extra] = record[extra]
        return out

    def metrics_view(self) -> Dict:
        out = dict(self.metrics)
        out["queue_depth"] = len(self.queue)
        out["running"] = sum(1 for r in self.jobs.values()
                             if r["state"] == "running")
        out["jobs_known"] = len(self.jobs)
        out["cache_entries"] = len(self.cache)
        out["backend"] = self.executor.backend
        out["uptime_seconds"] = round(time.time() - self.started_unix, 3)
        return out

    # ---------------------------------------------------------- executor

    def take_batch(self) -> List[JobSpec]:
        """Called by the executor thread: pop every queued job sharing
        the head-of-queue batch key and mark them running.  Caller holds
        the lock."""
        if not self.queue:
            return []
        head = self.specs[self.queue[0]]
        taken: List[JobSpec] = []
        rest: List[str] = []
        for job_id in self.queue:
            spec = self.specs[job_id]
            if spec.batch_key() == head.batch_key():
                taken.append(spec)
                self.jobs[job_id]["state"] = "running"
                # Running markers are expendable (recovery re-queues
                # them identically): journaled, but not fsynced.
                self._journal(job_id, self.jobs[job_id]["key"], "running",
                              durable=False)
            else:
                rest.append(job_id)
        self.queue = rest
        return taken

    def finish_job(self, spec: JobSpec, result: JobResult) -> None:
        """Executor callback: durably store, journal, publish, wake
        long-pollers.  Caller holds the lock."""
        job_id = spec.job_id()
        key = spec.key()
        record = self.jobs.get(job_id)
        if record is None:  # pruned underneath us: nothing to publish
            return
        self.metrics["simulations"] += 1
        cost = result.cost or {}
        self.metrics["cycles_simulated"] += cost.get("cycles", 0)
        self.metrics["instructions_committed"] += cost.get("instructions", 0)
        self.metrics["sim_wall_seconds"] += cost.get("wall_seconds", 0.0)
        if result.status == "ok":
            # Order matters: cache entry durable BEFORE the journal says
            # done — the cache is the durability point for the stats.
            self.cache.put(key, result.stats, cost)
            self._journal(job_id, key, "done", cost=cost)
            record.update(state="done", cost=cost)
            record.pop("error", None)
            self.metrics["jobs_done"] += 1
        else:
            self._journal(job_id, key, "failed", error=result.error,
                          cost=cost)
            record.update(state="failed", error=result.error, cost=cost)
            self.metrics["jobs_failed"] += 1
        self.specs.pop(job_id, None)
        self.changed.notify_all()


class _ExecutorThread(threading.Thread):
    """Drains the queue: wait for work, linger one batch window so a
    burst coalesces, run the batch, publish results."""

    def __init__(self, state: ServeState) -> None:
        super().__init__(name="serve-executor", daemon=True)
        self.state = state
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()
        with self.state.lock:
            self.state.changed.notify_all()

    def run(self) -> None:
        state = self.state
        while not self._halt.is_set():
            with state.lock:
                while not state.queue and not self._halt.is_set():
                    state.changed.wait(timeout=0.5)
                if self._halt.is_set():
                    return
            # Linger outside the lock: let the rest of a burst arrive.
            if state.batch_window > 0:
                time.sleep(state.batch_window)
            with state.lock:
                batch = state.take_batch()
                if batch:
                    state.metrics["batches"] += 1
            if not batch:
                continue
            # Simulate outside the lock — submissions and polls must
            # keep flowing while a batch runs.
            results = state.executor.run_batch(batch)
            with state.lock:
                for spec in batch:
                    result = results.get(spec.job_id())
                    if result is None:
                        result = JobResult(
                            status="error",
                            error={"error_type": "ExecutorError",
                                   "message": "backend returned no result"})
                    state.finish_job(spec, result)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 — silence stdlib chatter
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send(self, payload: Dict, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    @property
    def state(self) -> ServeState:
        return self.server.state

    # --------------------------------------------------------------- GET

    def do_GET(self) -> None:  # noqa: N802 — stdlib API
        parsed = urlparse(self.path)
        query = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        state = self.state
        status = 200
        # Compute under the lock, transmit outside it: a slow reader
        # must never stall submissions or the executor.
        with state.lock:
            if parsed.path == "/ping":
                payload = {"ok": 1, "jobs": len(state.jobs),
                           "queue": len(state.queue),
                           "cache_entries": len(state.cache)}
            elif parsed.path == "/status":
                payload = state.job_view(query.get("id", ""))
                if payload is None:
                    payload, status = {"error": "unknown job id"}, 404
            elif parsed.path == "/wait":
                payload, status = self._wait(query)
            elif parsed.path == "/result":
                payload, status = self._result(query)
            elif parsed.path == "/metrics":
                payload = state.metrics_view()
            elif parsed.path == "/jobs":
                payload = {"jobs": [state.job_view(i)
                                    for i in sorted(state.jobs)]}
            else:
                payload = {"error": f"unknown path {parsed.path!r}"}
                status = 404
        self._send(payload, status)

    def _wait(self, query: Dict) -> Tuple[Dict, int]:
        """Long-poll: block (condition wait, lock released) until the
        job reaches a terminal state or the timeout passes.  Caller
        holds the lock."""
        state = self.state
        job_id = query.get("id", "")
        try:
            timeout = min(MAX_WAIT, max(0.0, float(query.get("timeout", 30))))
        except ValueError:
            return {"error": "timeout must be a number"}, 400
        deadline = time.monotonic() + timeout
        while True:
            record = state.job_view(job_id)
            if record is None:
                return {"error": "unknown job id"}, 404
            if record["state"] in ("done", "failed"):
                return record, 200
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return {**record, "timeout": 1}, 200
            state.changed.wait(timeout=min(remaining, 1.0))

    def _result(self, query: Dict) -> Tuple[Dict, int]:
        state = self.state
        record = state.job_view(query.get("id", ""))
        if record is None:
            return {"error": "unknown job id"}, 404
        if record["state"] == "failed":
            return record, 200
        if record["state"] != "done":
            return {**record, "pending": 1}, 202
        entry = state.cache.get(record["key"])
        if entry is None:
            # The cache entry rotted after the journal said done: be
            # honest — the client can resubmit to re-simulate.
            return {**record, "error": {"error_type": "CacheMiss",
                                        "message": "cached result "
                                                   "unreadable; resubmit"},
                    "state": "failed"}, 200
        return {**record, "stats": entry.stats, "cost": entry.cost}, 200

    # -------------------------------------------------------------- POST

    def do_POST(self) -> None:  # noqa: N802 — stdlib API
        parsed = urlparse(self.path)
        try:
            length = int(self.headers.get("Content-Length", "0"))
            body = json.loads(self.rfile.read(length) or b"{}")
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send({"error": f"bad request body: {exc}"}, 400)
            return
        rid = body.get("rid")
        state = self.state
        status = 200
        with state.lock:
            if rid is not None and rid in state.rid_cache:
                # Exactly-once: the request already executed; replay the
                # original answer instead of executing twice.
                payload = {**state.rid_cache[rid], "rid": rid, "replayed": 1}
            else:
                try:
                    response = self._dispatch(parsed.path, body)
                except JobError as exc:
                    response, status = {"error": str(exc)}, 400
                except (KeyError, TypeError, ValueError) as exc:
                    response, status = {"error": f"bad request: {exc}"}, 400
                if response is None:
                    response = {"error": f"unknown path {parsed.path!r}"}
                    status = 404
                if status == 200 and rid is not None:
                    state.rid_cache[rid] = response
                    while len(state.rid_cache) > RID_CACHE_SIZE:
                        state.rid_cache.popitem(last=False)
                payload = {**response, "rid": rid}
        self._send(payload, status)

    def _dispatch(self, path: str, body: Dict) -> Optional[Dict]:
        if path == "/submit":
            return self.state.rpc_submit(body)
        if path == "/gc":
            return self.state.rpc_gc(body)
        return None


class ServeServer:
    """An embeddable simulation service: ``start()`` serves on
    background threads (port 0 picks a free one), ``stop()`` shuts both
    the socket and the executor down.  The CLI's ``serve`` subcommand
    runs the same thing in the foreground."""

    def __init__(self, root: str, host: str = "127.0.0.1", port: int = 0,
                 backend: str = "auto", batch_window: float = BATCH_WINDOW,
                 farm_workers: int = 2, verbose: bool = False) -> None:
        self.state = ServeState(root, backend=backend,
                                batch_window=batch_window,
                                farm_workers=farm_workers)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.state = self.state
        self.httpd.verbose = verbose
        self._executor = _ExecutorThread(self.state)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServeServer":
        self._executor.start()
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        name="serve-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._executor.start()
        self.httpd.serve_forever()

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._executor.stop()
        self._executor.join(5)
        if self._thread is not None:
            self._thread.join(5)
            self._thread = None
