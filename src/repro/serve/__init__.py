"""Simulation-as-a-service: HTTP job server + content-addressed cache.

``python -m repro.serve serve <root>`` boots the service; clients
submit (config, trace-spec) jobs and get cached, deduplicated,
batch-coalesced answers.  See :mod:`repro.serve.server` for the
durability contract and :mod:`repro.serve.jobs` for how jobs are keyed.
"""

from repro.serve.cache import (
    CACHE_KIND,
    CACHE_SCHEMA,
    CacheEntry,
    ResultCache,
    cache_address,
)
from repro.serve.client import (
    ServeClient,
    ServeRequestError,
    ServeUnavailable,
)
from repro.serve.executor import (
    BatchExecutor,
    FarmOptions,
    JobResult,
    SERVE_BACKENDS,
    resolve_backend,
)
from repro.serve.jobs import (
    JOB_FIELDS,
    JOB_STATES,
    JOBS_FORMAT,
    JOBS_VERSION,
    JobError,
    JobJournal,
    JobSpec,
    parse_job,
)
from repro.serve.server import BATCH_WINDOW, ServeServer, ServeState

__all__ = [
    "BATCH_WINDOW",
    "BatchExecutor",
    "CACHE_KIND",
    "CACHE_SCHEMA",
    "CacheEntry",
    "FarmOptions",
    "JOB_FIELDS",
    "JOB_STATES",
    "JOBS_FORMAT",
    "JOBS_VERSION",
    "JobError",
    "JobJournal",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "SERVE_BACKENDS",
    "ServeClient",
    "ServeRequestError",
    "ServeServer",
    "ServeState",
    "ServeUnavailable",
    "cache_address",
    "parse_job",
    "resolve_backend",
]
