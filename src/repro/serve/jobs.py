"""Job specs, cache keys, and the durable job journal.

A *job* is one simulation request: a (config, trace-spec) pair expressed
as the same knobs the sweep drivers take — benchmark, scheme, width, the
:class:`~repro.experiments.runner.RunSpec` workload fields, and an
optional PRF capacity override.  Its **key** is the existing sweep-cell
identity (:func:`~repro.experiments.journal.cell_key`): the workload
knobs plus a digest of the fully resolved
:class:`~repro.config.MachineConfig` — i.e. the config digest + trace
identity the snapshot layer has used since PR 3.  Two submissions whose
keys match are, by construction, the same simulation; the key is
therefore what the result cache is addressed by and what in-flight
deduplication collapses on.  The job **id** is the filename-safe hash of
the key (:func:`~repro.farm.lease.cid_of`), so resubmitting a job is
idempotent: you get the same id back.

The **job journal** (``jobs.json`` in the serve root) records every job
transition — ``queued`` → ``running`` → ``done`` | ``failed`` — as the
same checksummed v3-style lines the sweep journal uses
(:func:`~repro.store.integrity.append_checked_line`): one fsynced line
per transition, torn tails salvaged on load, any interior byte of
corruption a typed error.  A restarted server replays the journal and
re-enqueues every job whose latest state is non-terminal, so a SIGKILL
mid-queue loses no acknowledged submission.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig
from repro.store.errors import DigestMismatch, MalformedRecord
from repro.store.integrity import (
    append_checked_line,
    checked_line,
    read_checked_lines,
)
from repro.store.atomic import atomic_writer

#: ``format`` tag of the job-journal header record (fsck's sniffing key).
JOBS_FORMAT = "repro-serve-jobs"
JOBS_VERSION = 1

#: The job state machine, in lifecycle order.  ``queued`` — accepted and
#: journaled, waiting for the executor; ``running`` — handed to a
#: simulation backend; ``done`` — stats durably in the result cache;
#: ``failed`` — the simulation raised (terminal, but resubmittable).
JOB_STATES = ("queued", "running", "done", "failed")

#: Fields every journaled job record must carry (fsck validates them).
JOB_FIELDS = ("id", "key", "state", "ts")

#: Issue widths with a Table 1 machine.
_WIDTHS = (4, 8)


class JobError(ValueError):
    """A submission that cannot become a job (unknown scheme, bad
    field, out-of-range workload knob).  Maps to HTTP 400."""


@dataclass(frozen=True)
class JobSpec:
    """One simulation request, fully normalized.

    ``regs`` overrides both physical register file capacities (the
    Figure 9 sweep axis); submissions differing only in ``regs`` are
    exactly the misses the vector backend coalesces into one column.
    """

    benchmark: str
    scheme: str = "base"
    width: int = 4
    length: int = 6000
    warmup: int = 20000
    seed: int = 1
    max_cycles: Optional[int] = None
    regs: Optional[int] = None

    # ------------------------------------------------------- derivation

    def run_spec(self):
        """The :class:`~repro.experiments.runner.RunSpec` this job
        simulates under (audit/oracle off: the service serves plain
        measurement runs)."""
        from repro.experiments.runner import RunSpec  # lazy: heavy import

        return RunSpec(length=self.length, warmup=self.warmup,
                       seed=self.seed, max_cycles=self.max_cycles)

    def config(self) -> MachineConfig:
        """The fully resolved machine config, via the same single
        resolution path the sweep journal keys go through."""
        from repro.experiments.runner import resolve_config

        config = resolve_config(self.scheme, self.width, self.run_spec())
        if self.regs is not None:
            config = config.with_phys_regs(self.regs)
        return config

    def key(self) -> str:
        """The cache key: workload knobs + resolved-config digest
        (:func:`~repro.experiments.journal.cell_key` verbatim, so sweep
        journals and the result cache agree on simulation identity)."""
        from repro.experiments.journal import cell_key

        return cell_key(self.benchmark, self.scheme, self.width,
                        self.run_spec(), config=self.config())

    def job_id(self) -> str:
        from repro.farm.lease import cid_of

        return cid_of(self.key())

    def batch_key(self) -> Tuple:
        """Jobs sharing this tuple can run as one executor batch (same
        trace-shaping knobs and width; they differ only in benchmark,
        scheme, or PRF capacity — the axes one vector column or one farm
        publish round can carry)."""
        return (self.width, self.length, self.warmup, self.seed,
                self.max_cycles)

    def to_dict(self) -> Dict:
        out = {
            "benchmark": self.benchmark, "scheme": self.scheme,
            "width": self.width, "length": self.length,
            "warmup": self.warmup, "seed": self.seed,
        }
        if self.max_cycles is not None:
            out["max_cycles"] = self.max_cycles
        if self.regs is not None:
            out["regs"] = self.regs
        return out


def parse_job(data: Dict) -> JobSpec:
    """Validate and normalize a submission body into a :class:`JobSpec`.

    Raises :class:`JobError` (HTTP 400 at the server) on anything the
    simulator would only reject later and deeper.
    """
    from repro.experiments.runner import (
        FP_BENCHMARKS,
        INT_BENCHMARKS,
        SCHEMES,
    )

    if not isinstance(data, dict):
        raise JobError("job must be a JSON object")
    unknown = set(data) - {
        "benchmark", "scheme", "width", "length", "warmup", "seed",
        "max_cycles", "regs",
    }
    if unknown:
        raise JobError(f"unknown job field(s): {sorted(unknown)}")
    benchmark = data.get("benchmark")
    known = set(INT_BENCHMARKS) | set(FP_BENCHMARKS)
    if benchmark not in known:
        raise JobError(
            f"unknown benchmark {benchmark!r} (one of {sorted(known)})")
    scheme = data.get("scheme", "base")
    if scheme not in SCHEMES:
        raise JobError(f"unknown scheme {scheme!r} (one of {sorted(SCHEMES)})")
    width = data.get("width", 4)
    if width not in _WIDTHS:
        raise JobError(f"width must be one of {_WIDTHS}, got {width!r}")

    def _int(name: str, default, minimum: int, maximum: int,
             optional: bool = False):
        value = data.get(name, default)
        if value is None and optional:
            return None
        if not isinstance(value, int) or isinstance(value, bool):
            raise JobError(f"{name} must be an integer, got {value!r}")
        if not minimum <= value <= maximum:
            raise JobError(
                f"{name} must be in [{minimum}, {maximum}], got {value}")
        return value

    return JobSpec(
        benchmark=benchmark, scheme=scheme, width=width,
        length=_int("length", 6000, 1, 2_000_000),
        warmup=_int("warmup", 20000, 0, 10_000_000),
        seed=_int("seed", 1, 0, 2**31 - 1),
        max_cycles=_int("max_cycles", None, 1, 2**31 - 1, optional=True),
        regs=_int("regs", None, 1, 65536, optional=True),
    )


# ============================================================== journal


def _header_record() -> Dict:
    return {"format": JOBS_FORMAT, "version": JOBS_VERSION}


class JobJournal:
    """Append-only, checksummed record of every job transition.

    The write path is the sweep journal's: one fsynced
    :func:`~repro.store.integrity.checked_line` per transition, a header
    record first, torn tails dropped (and compacted away) at load,
    interior damage a hard :class:`~repro.store.errors.DigestMismatch`
    pointing at ``python -m repro.store fsck --repair``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        #: Every transition in append order (replay gives latest-wins).
        self.events: List[Dict] = []
        #: ``(line, reason)`` of a torn tail dropped at load, if any.
        self.salvaged: Optional[Tuple[int, str]] = None
        self._initialized = False
        if os.path.exists(path):
            self._load(path)

    def _load(self, path: str) -> None:
        result = read_checked_lines(path)
        if not result.records:
            if result.total_lines == 0 or (result.bad_line == 1
                                           and result.torn_tail):
                return  # nothing durably recorded yet: start fresh
            raise MalformedRecord(
                f"job journal header line is damaged ({result.bad_reason}); "
                f"run `python -m repro.store fsck --repair` or delete it",
                path=path, kind="serve-job-journal", line=result.bad_line,
            )
        header = result.records[0]
        if (not isinstance(header, dict)
                or header.get("format") != JOBS_FORMAT):
            raise MalformedRecord(
                "first record is not a serve-job-journal header",
                path=path, kind="serve-job-journal", line=1,
            )
        if header.get("version") != JOBS_VERSION:
            raise ValueError(
                f"job journal {path!r} has version {header.get('version')}, "
                f"expected {JOBS_VERSION}; delete it or move it aside"
            )
        if not result.clean and not result.torn_tail:
            raise DigestMismatch(
                f"job journal record is damaged before the final line "
                f"({result.bad_reason}); the valid prefix is salvageable "
                f"with `python -m repro.store fsck --repair`",
                path=path, kind="serve-job-journal", line=result.bad_line,
            )
        for record in result.records[1:]:
            if not isinstance(record, dict) or "job" not in record:
                raise MalformedRecord(
                    "job journal record lacks a job field",
                    path=path, kind="serve-job-journal",
                )
            self.events.append(record["job"])
        self._initialized = True
        if not result.clean:  # torn tail: drop it from disk too
            self.salvaged = (result.bad_line, result.bad_reason)
            self._rewrite()

    # --------------------------------------------------------- queries

    def latest(self) -> Dict[str, Dict]:
        """id -> the latest journaled record per job (replay order)."""
        out: Dict[str, Dict] = {}
        for event in self.events:
            out[event["id"]] = event
        return out

    # --------------------------------------------------------- updates

    def record(self, event: Dict, *, durable: bool = True) -> None:
        """Append one job transition.  ``event`` must carry at least
        :data:`JOB_FIELDS` and a known state."""
        missing = [f for f in JOB_FIELDS if f not in event]
        if missing:
            raise ValueError(f"job record lacks fields: {missing}")
        if event["state"] not in JOB_STATES:
            raise ValueError(f"unknown job state {event['state']!r}")
        self.events.append(event)
        if not self._initialized:
            self._rewrite()
            return
        append_checked_line(self.path, {"job": event}, durable=durable)

    def _rewrite(self) -> None:
        with atomic_writer(self.path) as handle:
            handle.write(checked_line(_header_record()))
            for event in self.events:
                handle.write(checked_line({"job": event}))
        self._initialized = True
