"""Client for the simulation service: submit, poll, long-poll, fetch.

Pure stdlib (:mod:`urllib.request`).  Every mutating call carries a
client-generated request id, so the retry loop is safe against the
"executed but the response died" failure: a retried ``/submit`` is
answered from the server's replay cache, never double-queued — and even
across a server restart the submit is *semantically* idempotent (same
key, same id, same job).
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Dict, Optional
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request, urlopen


class ServeUnavailable(RuntimeError):
    """The service could not be reached within the retry budget."""


class ServeRequestError(RuntimeError):
    """The service answered with a non-retryable error (HTTP 4xx)."""

    def __init__(self, status: int, payload: Dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class ServeClient:
    """One service endpoint, with bounded retries on transport faults."""

    def __init__(self, url: str, timeout: float = 10.0,
                 retries: int = 3, backoff: float = 0.2) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    # -------------------------------------------------------------- wire

    def _request(self, request: Request) -> Dict:
        last: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                with urlopen(request, timeout=self.timeout) as resp:
                    return json.loads(resp.read().decode("utf-8"))
            except HTTPError as exc:
                try:
                    payload = json.loads(exc.read().decode("utf-8"))
                except (ValueError, OSError):
                    payload = {"error": str(exc)}
                if exc.code == 202:  # /result on a pending job
                    return payload
                if 400 <= exc.code < 500:
                    raise ServeRequestError(exc.code, payload) from exc
                last = exc
            except (URLError, OSError, ValueError) as exc:
                last = exc
            if attempt < self.retries:
                time.sleep(self.backoff * (2 ** attempt))
        raise ServeUnavailable(f"{request.full_url}: {last}")

    def _get(self, path: str, query: Optional[Dict] = None) -> Dict:
        url = f"{self.url}{path}"
        if query:
            url = f"{url}?{urlencode(query)}"
        return self._request(Request(url, method="GET"))

    def _post(self, path: str, body: Dict) -> Dict:
        body = {**body, "rid": body.get("rid") or uuid.uuid4().hex}
        data = json.dumps(body).encode("utf-8")
        return self._request(Request(
            f"{self.url}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"},
        ))

    # --------------------------------------------------------------- api

    def ping(self) -> Dict:
        return self._get("/ping")

    def submit(self, job: Dict) -> Dict:
        """Submit one job spec; returns ``{"id", "state", ...}`` with
        ``cached``/``dedup`` flags when no new simulation was queued."""
        return self._post("/submit", {"job": job})

    def status(self, job_id: str) -> Dict:
        return self._get("/status", {"id": job_id})

    def wait(self, job_id: str, timeout: float = 30.0) -> Dict:
        """Long-poll until the job is terminal or ``timeout`` elapses
        (issuing successive bounded polls as needed)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = max(0.0, deadline - time.monotonic())
            record = self._get("/wait", {"id": job_id,
                                         "timeout": round(remaining, 3)})
            if record.get("state") in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                return record

    def result(self, job_id: str) -> Dict:
        """The full record incl. stats for a done job (``pending: 1``
        with HTTP 202 semantics while it is still in flight)."""
        return self._get("/result", {"id": job_id})

    def fetch(self, job: Dict, timeout: float = 60.0) -> Dict:
        """Submit-and-wait convenience: returns the terminal record with
        stats (raises :class:`ServeRequestError` on a 4xx submit)."""
        submitted = self.submit(job)
        job_id = submitted["id"]
        if submitted.get("state") not in ("done", "failed"):
            self.wait(job_id, timeout=timeout)
        return self.result(job_id)

    def metrics(self) -> Dict:
        return self._get("/metrics")

    def jobs(self) -> Dict:
        return self._get("/jobs")

    def gc(self, max_age: Optional[float] = None,
           max_entries: Optional[int] = None) -> Dict:
        body: Dict = {}
        if max_age is not None:
            body["max_age"] = max_age
        if max_entries is not None:
            body["max_entries"] = max_entries
        return self._post("/gc", body)
