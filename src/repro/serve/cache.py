"""The content-addressed result cache: O(1) answers for repeat jobs.

Entries live under ``<root>/cache/`` as ``result-cache`` envelopes
(:func:`~repro.store.integrity.write_json_artifact`): header digests
over the payload, atomic durable writes, typed errors on any damaged
byte, so ``python -m repro.store fsck`` audits the cache tree exactly
like every other artifact the simulator persists.  The address is the
job key's SHA-256 (the key itself embeds the config digest and trace
identity — see :mod:`repro.serve.jobs`), and every entry carries its
key in the payload, so a hash collision or a misfiled entry is detected
at read time rather than served.

A corrupt entry is never an error to the caller: :meth:`ResultCache.get`
quarantines it (``repro.store.quarantine_path``) and reports a miss, so
the job is simply re-simulated and the cache heals itself.

GC policy is deliberately simple and explicit — no background eviction
thread deciding behind the operator's back.  ``gc(max_age, max_entries)``
drops entries beyond an age bound and/or beyond a count bound
(oldest-created first), and is reachable from ``POST /gc`` and
``python -m repro.serve gc``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.store import (
    ArtifactError,
    quarantine_path,
    read_json_artifact,
    write_json_artifact,
)

#: Envelope kind and schema of a cache entry.
CACHE_KIND = "result-cache"
CACHE_SCHEMA = 1

#: Hex digits of the entry filename (full enough that accidental
#: collisions are out of reach; the stored key is the real guard).
_ADDR_HEX = 32


def cache_address(key: str) -> str:
    """Filename-safe content address of one job key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:_ADDR_HEX]


@dataclass
class CacheEntry:
    """One cached simulation result."""

    key: str
    stats: Dict
    #: Cost accounting recorded when the result was first simulated:
    #: cycles simulated, instructions committed, wall seconds, backend.
    cost: Dict
    created_unix: float

    def to_dict(self) -> Dict:
        return {"key": self.key, "stats": self.stats, "cost": self.cost,
                "created_unix": self.created_unix}

    @classmethod
    def from_dict(cls, data: Dict) -> "CacheEntry":
        return cls(key=data["key"], stats=data["stats"],
                   cost=data.get("cost", {}),
                   created_unix=float(data.get("created_unix", 0.0)))


class ResultCache:
    """The store-backed cache tier behind the serve endpoint."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{cache_address(key)}.json")

    # ------------------------------------------------------------ reads

    def get(self, key: str) -> Optional[CacheEntry]:
        """The entry for ``key``, or None.  Damaged entries are
        quarantined and reported as misses; an intact entry whose stored
        key differs (address collision, copied-in foreign file) is left
        alone but never served."""
        path = self.path_for(key)
        if not os.path.exists(path):
            return None
        try:
            data, _ = read_json_artifact(path, CACHE_KIND,
                                         expected_schema=CACHE_SCHEMA,
                                         allow_legacy=False)
        except (ArtifactError, OSError):
            try:
                quarantine_path(path)
            except OSError:
                pass
            return None
        entry = CacheEntry.from_dict(data)
        if entry.key != key:
            return None
        return entry

    def has(self, key: str) -> bool:
        return self.get(key) is not None

    # ----------------------------------------------------------- writes

    def put(self, key: str, stats: Dict, cost: Dict) -> CacheEntry:
        """Durably store one result; returns the entry as written.
        The write is atomic + fsynced *before* the caller acknowledges
        the job as done — the cache is the durability point for stats."""
        entry = CacheEntry(key=key, stats=stats, cost=cost,
                           created_unix=time.time())
        write_json_artifact(self.path_for(key), CACHE_KIND, CACHE_SCHEMA,
                            entry.to_dict())
        return entry

    # --------------------------------------------------------------- gc

    def entries(self) -> List[CacheEntry]:
        """Every readable entry (damaged ones quarantined on the way)."""
        out: List[CacheEntry] = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return out
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                data, _ = read_json_artifact(path, CACHE_KIND,
                                             expected_schema=CACHE_SCHEMA,
                                             allow_legacy=False)
            except (ArtifactError, OSError):
                try:
                    quarantine_path(path)
                except OSError:
                    pass
                continue
            out.append(CacheEntry.from_dict(data))
        return out

    def __len__(self) -> int:
        try:
            return sum(1 for n in os.listdir(self.root)
                       if n.endswith(".json"))
        except OSError:
            return 0

    def gc(self, max_age: Optional[float] = None,
           max_entries: Optional[int] = None) -> int:
        """Drop entries older than ``max_age`` seconds and/or trim to
        the newest ``max_entries`` (by recorded creation time).  Returns
        how many entries were removed."""
        entries = self.entries()
        now = time.time()
        doomed: List[CacheEntry] = []
        if max_age is not None:
            doomed.extend(e for e in entries if now - e.created_unix > max_age)
        if max_entries is not None and max_entries >= 0:
            survivors = [e for e in entries if e not in doomed]
            survivors.sort(key=lambda e: e.created_unix, reverse=True)
            doomed.extend(survivors[max_entries:])
        removed = 0
        for entry in doomed:
            try:
                os.unlink(self.path_for(entry.key))
                removed += 1
            except OSError:
                pass
        return removed
