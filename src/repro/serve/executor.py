"""Batch execution of cold misses: dedup'd jobs hit the engines here.

The server's submit path answers cache hits itself; what reaches this
module is the deduplicated cold-miss stream, already grouped into
batches of jobs that share every trace-shaping knob
(:meth:`~repro.serve.jobs.JobSpec.batch_key`).  A batch runs on one of
three backends:

``vector``
    All jobs become lanes of one :func:`repro.vector.run_column` call.
    The column planner coalesces lanes that share a trace and differ
    only in PRF capacity (exactly the ``regs``-sweep misses a Figure-9
    style client fires) onto one machine, forked at the first capacity
    stall — N capacity-differing misses cost far less than N
    simulations, with bit-identical per-lane stats.

``farm``
    Jobs are injected programmatically into the sweep farm
    (:func:`repro.farm.run_cells_farm`) as durable leases; completion
    callbacks fan results back per job.  Jobs carrying a ``regs``
    override run locally instead (a farm cell's config is derived from
    its (scheme, width, spec) key alone).

``scalar``
    One in-process simulation per job — the fallback that needs nothing
    but the core machine, and the path ``auto`` degrades to when numpy
    is unavailable.

Every result carries cost accounting — cycles simulated, instructions
committed, wall seconds, backend, batch fan-in — which the server
journals, caches, and aggregates into ``/metrics``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.serve.jobs import JobSpec

#: Backend names the server accepts.  ``auto`` = vector when numpy
#: imports, scalar otherwise.
SERVE_BACKENDS = ("auto", "scalar", "vector", "farm")


@dataclass
class JobResult:
    """What one job's simulation produced."""

    status: str  # "ok" | "error"
    stats: Optional[Dict] = None
    error: Optional[Dict] = None
    cost: Dict = field(default_factory=dict)


def _vector_available() -> bool:
    try:
        import repro.vector  # noqa: F401 — probe only
    except ImportError:
        return False
    return True


def resolve_backend(requested: str) -> str:
    """Map ``auto`` to a concrete backend for this interpreter."""
    if requested not in SERVE_BACKENDS:
        raise ValueError(
            f"backend must be one of {SERVE_BACKENDS}, got {requested!r}")
    if requested == "auto":
        return "vector" if _vector_available() else "scalar"
    return requested


class _TraceCache:
    """One generated trace per (benchmark, length, warmup, seed): jobs
    in a batch share traces, and repeat batches re-use them."""

    def __init__(self, limit: int = 32) -> None:
        self._cache: Dict[Tuple, object] = {}
        self._limit = limit

    def get(self, spec: JobSpec):
        from repro.workloads import generate_trace

        key = (spec.benchmark, spec.length, spec.warmup, spec.seed)
        trace = self._cache.get(key)
        if trace is None:
            if len(self._cache) >= self._limit:
                self._cache.pop(next(iter(self._cache)))
            trace = generate_trace(spec.benchmark, spec.length,
                                   seed=spec.seed, warmup=spec.warmup)
            self._cache[key] = trace
        return trace


@dataclass
class FarmOptions:
    """How the ``farm`` backend drives :func:`repro.farm.run_cells_farm`
    for each batch (one broker round per batch)."""

    root: str
    workers: int = 2
    endpoint: Optional[str] = None
    retries: int = 2
    lease_ttl: float = 30.0
    heartbeat_interval: float = 1.0
    poll_interval: float = 0.1
    grace: float = 5.0


class BatchExecutor:
    """Runs batches of cold misses; stateless between batches except
    for the trace cache."""

    def __init__(self, backend: str = "auto",
                 farm_options: Optional[FarmOptions] = None) -> None:
        self.backend = resolve_backend(backend)
        if self.backend == "farm" and farm_options is None:
            raise ValueError("backend='farm' needs FarmOptions")
        self.farm_options = farm_options
        self._traces = _TraceCache()

    # ------------------------------------------------------------ entry

    def run_batch(self, specs: List[JobSpec]) -> Dict[str, JobResult]:
        """Simulate every job in ``specs`` (all sharing a batch key);
        returns job-id -> :class:`JobResult`.  Never raises for a
        per-job failure — errors come back as structured results."""
        if not specs:
            return {}
        if self.backend == "vector":
            try:
                return self._run_vector(specs)
            except ImportError:
                return self._run_scalar(specs)
        if self.backend == "farm":
            farmable = [s for s in specs if s.regs is None]
            local = [s for s in specs if s.regs is not None]
            out: Dict[str, JobResult] = {}
            if farmable:
                out.update(self._run_farm(farmable))
            if local:
                out.update(self._run_scalar(local))
            return out
        return self._run_scalar(specs)

    # ----------------------------------------------------------- scalar

    def _run_scalar(self, specs: List[JobSpec]) -> Dict[str, JobResult]:
        from repro.core.machine import Machine, SimulationError

        out: Dict[str, JobResult] = {}
        for spec in specs:
            trace = self._traces.get(spec)
            started = time.perf_counter()
            try:
                stats = Machine(spec.config()).run(
                    trace, max_cycles=spec.max_cycles)
                if (spec.max_cycles is not None
                        and stats.committed < len(trace)):
                    raise SimulationError(
                        f"cycle-limit watchdog: {spec.benchmark}/"
                        f"{spec.scheme} committed only {stats.committed}/"
                        f"{len(trace)} instructions in {spec.max_cycles} "
                        f"cycles")
                elapsed = time.perf_counter() - started
                out[spec.job_id()] = JobResult(
                    status="ok", stats=stats.to_dict(),
                    cost=_cost("scalar", stats.cycles, stats.committed,
                               elapsed, batch_jobs=1),
                )
            except Exception as exc:  # noqa: BLE001 — structured, never fatal
                elapsed = time.perf_counter() - started
                out[spec.job_id()] = JobResult(
                    status="error",
                    error={"error_type": type(exc).__name__,
                           "message": str(exc)},
                    cost=_cost("scalar", 0, 0, elapsed, batch_jobs=1),
                )
        return out

    # ----------------------------------------------------------- vector

    def _run_vector(self, specs: List[JobSpec]) -> Dict[str, JobResult]:
        from repro.core.machine import SimulationError
        from repro.vector import Lane, run_column

        lanes = []
        lengths: Dict[str, int] = {}
        max_cycles = specs[0].max_cycles
        for spec in specs:
            trace = self._traces.get(spec)
            lengths[spec.job_id()] = len(trace)
            lanes.append(Lane(key=spec.job_id(), config=spec.config(),
                              trace=trace))
        started = time.perf_counter()
        outcome = run_column(lanes, max_cycles=max_cycles)
        elapsed = time.perf_counter() - started
        out: Dict[str, JobResult] = {}
        share = elapsed / max(1, len(specs))
        for spec in specs:
            job_id = spec.job_id()
            result = outcome.results[job_id]
            error = result.error
            if (error is None and max_cycles is not None
                    and result.stats.committed < lengths[job_id]):
                error = SimulationError(
                    f"cycle-limit watchdog: {spec.benchmark}/{spec.scheme} "
                    f"committed only {result.stats.committed}/"
                    f"{lengths[job_id]} instructions in {max_cycles} cycles")
            cost = _cost("vector",
                         result.stats.cycles if result.stats else 0,
                         result.stats.committed if result.stats else 0,
                         share, batch_jobs=len(specs),
                         groups=outcome.groups, forks=outcome.forks,
                         batch_cycles_simulated=outcome.cycles_simulated)
            if error is not None:
                out[job_id] = JobResult(
                    status="error",
                    error={"error_type": type(error).__name__,
                           "message": str(error)},
                    cost=cost)
            else:
                out[job_id] = JobResult(status="ok",
                                        stats=result.stats.to_dict(),
                                        cost=cost)
        return out

    # ------------------------------------------------------------- farm

    def _run_farm(self, specs: List[JobSpec]) -> Dict[str, JobResult]:
        from repro.experiments.runner import CellError
        from repro.farm import FarmSpec, run_cells_farm

        options = self.farm_options
        # All specs share a batch key, so one RunSpec and width fit all.
        run_spec = specs[0].run_spec()
        width = specs[0].width
        by_cell = {(s.benchmark, s.scheme): s for s in specs}
        farm = FarmSpec(
            root=options.root, workers=options.workers,
            endpoint=options.endpoint, lease_ttl=options.lease_ttl,
            heartbeat_interval=options.heartbeat_interval,
            poll_interval=options.poll_interval, grace=options.grace,
        )
        out: Dict[str, JobResult] = {}
        started = time.perf_counter()

        def on_cell_done(benchmark: str, scheme: str, cell) -> None:
            spec = by_cell[(benchmark, scheme)]
            elapsed = time.perf_counter() - started
            if isinstance(cell, CellError):
                out[spec.job_id()] = JobResult(
                    status="error",
                    error={"error_type": cell.error_type,
                           "message": cell.message, "kind": cell.kind},
                    cost=_cost("farm", 0, 0, elapsed,
                               batch_jobs=len(specs)))
            else:
                out[spec.job_id()] = JobResult(
                    status="ok", stats=cell.to_dict(),
                    cost=_cost("farm", cell.cycles, cell.committed,
                               elapsed, batch_jobs=len(specs)))

        run_cells_farm(
            sorted(by_cell), width, run_spec, farm, None, on_cell_done,
            retries=options.retries,
        )
        return out


def _cost(backend: str, cycles: int, instructions: int,
          wall_seconds: float, **extra) -> Dict:
    return {"backend": backend, "cycles": cycles,
            "instructions": instructions,
            "wall_seconds": round(wall_seconds, 6), **extra}


#: Signature of the server's completion callback, for reference:
#: ``on_job_done(job_id: str, result: JobResult) -> None``.
OnJobDone = Callable[[str, JobResult], None]
