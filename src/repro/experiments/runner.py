"""Experiment runner: scheme registry, trace caching, and sweep drivers.

The scheme names follow the paper's Figures 10 and 12 exactly:

============================  ==================================================
``base``                      conventional machine (free at redefiner commit)
``ER``                        prior-work early release (Moudgill counters/flags)
``PRI-refcount+ckptcount``    PRI, WAR via consumer refcounts, checkpoint
                              reference counting (the realistic design point)
``PRI-refcount+lazy``         PRI, consumer refcounts, lazy checkpoint patching
``PRI-ideal+ckptcount``       PRI, instantaneous payload-RAM update, ckpt counts
``PRI-ideal+lazy``            PRI, instantaneous payload-RAM update, lazy patch
``PRI+ER``                    PRI (refcount+ckptcount) combined with ER
``inf``                       unlimited physical registers (upper bound)
============================  ==================================================
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.config import (
    EFFECTIVELY_INFINITE_REGS,
    CheckpointPolicy,
    MachineConfig,
    WarPolicy,
    config_digest,
    eight_wide,
    four_wide,
)
from repro.core.machine import Machine, SimulationError, simulate
from repro.core.stats import SimStats
from repro.experiments.journal import SweepJournal, cell_key
from repro.farm.lease import FarmSpec
from repro.retry import backoff_delay
from repro.workloads import SPEC_FP, SPEC_INT, Trace, generate_trace

#: Ceiling (seconds) on the jittered exponential retry backoff.
BACKOFF_CAP = 30.0

#: Wall-clock grace an interrupted sweep gives in-flight cells to hand
#: over results already in the pipe before they are terminated.
_DRAIN_GRACE = 2.0


def _with_inf_regs(config: MachineConfig) -> MachineConfig:
    return dataclasses.replace(
        config,
        int_phys_regs=EFFECTIVELY_INFINITE_REGS,
        fp_phys_regs=EFFECTIVELY_INFINITE_REGS,
    )


#: Scheme name -> config transformer.
SCHEMES: Dict[str, Callable[[MachineConfig], MachineConfig]] = {
    "base": lambda c: c,
    "ER": lambda c: c.with_early_release(),
    "PRI-refcount+ckptcount": lambda c: c.with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT
    ),
    "PRI-refcount+lazy": lambda c: c.with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.LAZY),
    "PRI-ideal+ckptcount": lambda c: c.with_pri(WarPolicy.IDEAL, CheckpointPolicy.CKPTCOUNT),
    "PRI-ideal+lazy": lambda c: c.with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY),
    "PRI+ER": lambda c: c.with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT
    ).with_early_release(),
    "inf": _with_inf_regs,
}

#: The scheme series of Figures 10 and 12, in the paper's legend order.
FIGURE10_SCHEMES: Tuple[str, ...] = (
    "ER",
    "PRI-refcount+ckptcount",
    "PRI-refcount+lazy",
    "PRI-ideal+ckptcount",
    "PRI-ideal+lazy",
    "PRI+ER",
    "inf",
)

INT_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in SPEC_INT)
FP_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in SPEC_FP)


def width_config(width: int) -> MachineConfig:
    """The Table 1 machine for a given issue width."""
    if width == 4:
        return four_wide()
    if width == 8:
        return eight_wide()
    raise ValueError(f"no Table 1 machine with width {width}")


@dataclass
class RunSpec:
    """How much work each simulation does.

    The paper runs 100M instructions after 400M of fast-forward; a Python
    cycle simulator cannot, so the defaults are small and every driver
    takes a spec so callers can scale up.
    """

    length: int = 6000
    warmup: int = 20000
    seed: int = 1
    #: In-simulator deadlock watchdog: abort the cell (with
    #: :class:`SimulationError`) if it needs more than this many cycles,
    #: instead of silently truncating.  None = unbounded.
    max_cycles: Optional[int] = None
    #: Run every cell with the invariant auditor attached
    #: (:mod:`repro.audit`); bookkeeping corruption then fails the cell
    #: loudly instead of skewing its results.
    audit: bool = False
    #: Run every cell under the golden-model differential oracle
    #: (:mod:`repro.oracle`); a committed value, branch outcome, or
    #: memory effect that diverges from in-order execution fails the cell
    #: with a structured :class:`~repro.oracle.OracleDivergence`.
    oracle: bool = False
    #: Snapshot the full machine state every N cycles
    #: (:mod:`repro.core.snapshot`).  A cell that crashes mid-simulation
    #: (OOM kill, power loss, Ctrl-C) resumes from its last checkpoint on
    #: the next run instead of starting over; the checkpoint file is
    #: removed once the cell completes.  None disables checkpointing.
    checkpoint_every: Optional[int] = None
    #: Directory for checkpoint files (created on demand).  Defaults to
    #: ``.repro-checkpoints`` under the working directory.
    checkpoint_dir: Optional[str] = None


def resolve_config(scheme: str, width: int, spec: "RunSpec") -> MachineConfig:
    """The fully resolved machine config one cell simulates: the Table 1
    machine for ``width``, the scheme transformer, and the spec's audit /
    oracle overlays.  This single resolution path feeds both
    :func:`run_one` and the journal's cell keys, so a config change can
    never reuse a stale journal entry."""
    config = SCHEMES[scheme](width_config(width))
    if spec.audit:
        config = config.with_audit()
    if spec.oracle:
        config = config.with_oracle()
    return config


def checkpoint_path(benchmark: str, scheme: str, width: int, spec: RunSpec) -> str:
    """Where :func:`run_one` keeps this cell's mid-run snapshot.  The
    file name embeds the resolved config digest, so a stale checkpoint
    from a differently configured run is never even opened."""
    digest = config_digest(resolve_config(scheme, width, spec))
    directory = spec.checkpoint_dir or ".repro-checkpoints"
    return os.path.join(
        directory,
        f"{benchmark}-{scheme}-w{width}-n{spec.length}-s{spec.seed}"
        f"-{digest}.ckpt.json",
    )


def _run_checkpointed(
    config: MachineConfig,
    trace: Trace,
    path: str,
    spec: RunSpec,
    cycle_hook: Optional[Callable] = None,
    on_resume: Optional[Callable[[int], None]] = None,
) -> SimStats:
    """Run one cell with periodic snapshots, resuming from ``path`` when
    a compatible checkpoint survives a previous crashed attempt.

    ``cycle_hook(machine)`` is attached as an extra per-cycle hook —
    the sweep farm uses it for lease heartbeats, eviction checks, and
    fault injection.  ``on_resume(cycle)`` reports the cycle the run
    actually started from: 0 for a cold start, the checkpoint's cycle
    when a previous attempt's snapshot was restored.
    """
    from repro.core.snapshot import (  # lazy: optional machinery
        SnapshotError,
        load_snapshot,
        restore_snapshot,
        save_snapshot,
        take_snapshot,
    )

    from repro.store import ArtifactError, SchemaMismatch, quarantine_path

    machine = Machine(config)
    resumed = False
    if os.path.exists(path):
        try:
            restore_snapshot(machine, load_snapshot(path), trace)
            resumed = True
        except (SchemaMismatch, SnapshotError, KeyError, ValueError, OSError) as exc:
            # Stale or incompatible checkpoint: start the cell from
            # scratch (ArtifactError is a ValueError, so order matters —
            # corruption is handled below, incompatibility here).
            if isinstance(exc, ArtifactError) and not isinstance(exc, SchemaMismatch):
                # Corrupt bytes, not schema drift: move the evidence
                # aside so the next attempt does not trip over it again.
                quarantine_path(path)
            machine = Machine(config)

    interval = spec.checkpoint_every

    def hook(m) -> None:
        if interval and m.now % interval == 0:
            # save_snapshot is atomic and durable (repro.store): a crash
            # at any instant leaves the previous checkpoint intact.
            save_snapshot(take_snapshot(m), path)

    machine.add_cycle_hook(hook)
    if cycle_hook is not None:
        # After the checkpoint hook: a cycle_hook that raises (eviction,
        # injected fault) never skips a due snapshot at the same cycle.
        machine.add_cycle_hook(cycle_hook)
    if on_resume is not None:
        on_resume(machine.now if resumed else 0)
    if resumed:
        stats = machine.resume(max_cycles=spec.max_cycles)
    else:
        stats = machine.run(trace, max_cycles=spec.max_cycles)
    # Keep the checkpoint when the run stopped at the cycle limit short of
    # the commit target — the caller's watchdog will fail the cell, and
    # the next attempt resumes instead of restarting.
    if stats.committed >= len(trace) and os.path.exists(path):
        os.remove(path)
    return stats


class TraceCache:
    """Per-process cache: one trace per (benchmark, spec)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int, int, int], Trace] = {}

    def get(self, benchmark: str, spec: RunSpec) -> Trace:
        key = (benchmark, spec.length, spec.warmup, spec.seed)
        trace = self._cache.get(key)
        if trace is None:
            trace = generate_trace(
                benchmark, spec.length, seed=spec.seed, warmup=spec.warmup
            )
            self._cache[key] = trace
        return trace


_GLOBAL_TRACES = TraceCache()


def run_one(
    benchmark: str,
    scheme: str,
    width: int = 4,
    spec: Optional[RunSpec] = None,
    traces: Optional[TraceCache] = None,
) -> SimStats:
    """Simulate one (benchmark, scheme, width) cell.

    Honors ``spec.audit`` (attach the invariant auditor), ``spec.oracle``
    (attach the golden-model differential oracle), ``spec.max_cycles``
    (deadlock watchdog: a cell that fails to finish within the cycle
    budget raises :class:`SimulationError` rather than returning
    silently-truncated statistics), and ``spec.checkpoint_every``
    (periodic machine snapshots; a crashed cell resumes mid-simulation
    on the next attempt).
    """
    spec = spec or RunSpec()
    traces = traces or _GLOBAL_TRACES
    config = resolve_config(scheme, width, spec)
    trace = traces.get(benchmark, spec)
    if spec.checkpoint_every:
        path = checkpoint_path(benchmark, scheme, width, spec)
        stats = _run_checkpointed(config, trace, path, spec)
    else:
        stats = simulate(config, trace, max_cycles=spec.max_cycles)
    if spec.max_cycles is not None and stats.committed < len(trace):
        raise SimulationError(
            f"cycle-limit watchdog: {benchmark}/{scheme} committed only "
            f"{stats.committed}/{len(trace)} instructions in "
            f"{spec.max_cycles} cycles"
        )
    return stats


# ======================================================== vector columns


#: Backend names :func:`run_matrix` and the CLIs accept.  Mirrors
#: ``repro.vector.BACKENDS`` but lives here so validation (and the error
#: message for a missing numpy) never needs the vector package imported.
MATRIX_BACKENDS: Tuple[str, ...] = ("scalar", "vector")


def lane_key(benchmark: str, scheme: str) -> str:
    """The lane identity a matrix cell gets inside a vector column."""
    return f"{benchmark}|{scheme}"


def _run_cells_vector(
    cells: List[Tuple[str, str]],
    width: int,
    spec: RunSpec,
    traces: "TraceCache",
    on_cell_done: Callable[[str, str, "MatrixCell"], None],
) -> None:
    """Run a batch of cells on the vector backend, in process.

    All cells become lanes of one column; the column planner groups
    lanes that share a trace and differ only in PRF capacity onto one
    machine (``base`` and ``inf`` of the same benchmark, notably), and
    everything else runs as singleton groups — same results, one call.
    Per-lane stats are bit-identical to :func:`run_one`; the per-lane
    ``max_cycles`` watchdog is replicated here so a truncated lane
    surfaces the same :class:`SimulationError` text as the scalar path.
    """
    from repro.vector import Lane, run_column  # lazy: optional numpy dep

    lanes = []
    lengths: Dict[str, int] = {}
    for benchmark, scheme in cells:
        trace = traces.get(benchmark, spec)
        lengths[benchmark] = len(trace)
        lanes.append(Lane(
            key=lane_key(benchmark, scheme),
            config=resolve_config(scheme, width, spec),
            trace=trace,
        ))
    started = time.monotonic()
    outcome = run_column(lanes, max_cycles=spec.max_cycles)
    elapsed = time.monotonic() - started
    for benchmark, scheme in cells:
        result = outcome.results[lane_key(benchmark, scheme)]
        cell: MatrixCell
        error = result.error
        if (error is None and spec.max_cycles is not None
                and result.stats.committed < lengths[benchmark]):
            error = SimulationError(
                f"cycle-limit watchdog: {benchmark}/{scheme} committed only "
                f"{result.stats.committed}/{lengths[benchmark]} instructions "
                f"in {spec.max_cycles} cycles"
            )
        if error is not None:
            cell = CellError(
                benchmark, scheme, "error", type(error).__name__,
                str(error), 1, elapsed,
            )
        else:
            cell = result.stats
        on_cell_done(benchmark, scheme, cell)


# ================================================================ cells


@dataclass
class CellError:
    """Structured record of one failed (benchmark, scheme) sweep cell."""

    benchmark: str
    scheme: str
    #: ``error`` — the simulation raised (deterministic, not retried);
    #: ``crash`` — the worker process died (signal/exit, retried);
    #: ``timeout`` — the cell exceeded its wall-clock budget (retried).
    kind: str
    error_type: str
    message: str
    attempts: int
    elapsed: float

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "CellError":
        return cls(**data)

    def __str__(self) -> str:
        return (
            f"{self.benchmark}/{self.scheme}: {self.kind} "
            f"[{self.error_type}] {self.message} "
            f"(attempt {self.attempts}, {self.elapsed:.1f}s)"
        )


MatrixCell = Union[SimStats, CellError]


class MatrixError(RuntimeError):
    """One or more sweep cells failed under ``on_error='raise'``.  The
    completed cells and the structured error records are attached, so a
    caller (or the journal) loses nothing."""

    def __init__(self, errors: List[CellError], results: Dict[str, Dict[str, MatrixCell]]):
        self.errors = errors
        self.results = results
        lines = "; ".join(str(e) for e in errors[:4])
        more = f" (+{len(errors) - 4} more)" if len(errors) > 4 else ""
        super().__init__(f"{len(errors)} sweep cell(s) failed: {lines}{more}")


def matrix_errors(results: Dict[str, Dict[str, MatrixCell]]) -> List[CellError]:
    """All error records in a matrix, in benchmark-major order."""
    return [
        cell
        for row in results.values()
        for cell in row.values()
        if isinstance(cell, CellError)
    ]


def _cell_entry(conn, cell_fn, benchmark, scheme, width, spec) -> None:
    """Worker-process entry: one cell, result or error over the pipe.
    A crash (signal, os._exit) simply never sends — the parent classifies
    it from the exit code."""
    try:
        stats = cell_fn(benchmark, scheme, width, spec, None)
        conn.send(("ok", stats))
    except BaseException as exc:  # noqa: BLE001 — must report, not die silently
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Pending:
    benchmark: str
    scheme: str
    attempts: int = 0
    not_before: float = 0.0


@dataclass
class _Running:
    proc: object
    conn: object
    cell: _Pending
    deadline: Optional[float]
    started: float = field(default_factory=time.monotonic)


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _run_cells_isolated(
    cells: List[Tuple[str, str]],
    width: int,
    spec: RunSpec,
    jobs: int,
    cell_timeout: Optional[float],
    retries: int,
    retry_backoff: float,
    cell_fn: Callable,
    on_cell_done: Callable[[str, str, MatrixCell], None],
) -> None:
    """Run cells in per-cell worker processes with crash isolation.

    Each cell gets its own process, so a segfaulting or OOM-killed
    worker takes down exactly one cell; ``crash`` and ``timeout``
    failures are retried up to ``retries`` times with exponential
    backoff, deterministic simulation errors are not.
    """
    ctx = _mp_context()
    pending: List[_Pending] = [_Pending(b, s) for b, s in cells]
    running: Dict[object, _Running] = {}

    def finish(entry: _Running, kind: Optional[str] = None) -> None:
        elapsed = time.monotonic() - entry.started
        cell = entry.cell
        message = None
        try:
            if entry.conn.poll():
                message = entry.conn.recv()
        except (EOFError, OSError):
            message = None
        entry.conn.close()
        # A message always wins, even against a just-expired deadline:
        # the worker finished, so its result (or error) is real.
        if message is not None and message[0] == "ok":
            on_cell_done(cell.benchmark, cell.scheme, message[1])
            return
        if message is not None:
            error = CellError(
                cell.benchmark, cell.scheme, "error",
                message[1], message[2], cell.attempts, elapsed,
            )
            on_cell_done(cell.benchmark, cell.scheme, error)
            return
        if kind is None:
            kind = "crash"
        if kind == "timeout":
            error = CellError(
                cell.benchmark, cell.scheme, "timeout", "TimeoutError",
                f"cell exceeded its {cell_timeout:.1f}s wall-clock budget",
                cell.attempts, elapsed,
            )
        else:
            code = entry.proc.exitcode
            error = CellError(
                cell.benchmark, cell.scheme, "crash", f"exit({code})",
                f"worker process died with exit code {code} before "
                f"reporting a result",
                cell.attempts, elapsed,
            )
        if cell.attempts <= retries:
            # Jittered and capped: a mass failure (OOM storm, shared-host
            # stall) fans back in spread over [cap/2, cap) instead of
            # thundering back as one herd, and the delay can never grow
            # unbounded with the attempt count.
            cell.not_before = time.monotonic() + backoff_delay(
                cell.attempts, retry_backoff, cap=BACKOFF_CAP,
                token=f"{cell.benchmark}|{cell.scheme}",
            )
            pending.append(cell)
        else:
            on_cell_done(cell.benchmark, cell.scheme, error)

    try:
        while pending or running:
            now = time.monotonic()
            launched = False
            while len(running) < jobs and pending:
                index = next(
                    (i for i, c in enumerate(pending) if c.not_before <= now),
                    None,
                )
                if index is None:
                    break
                cell = pending.pop(index)
                cell.attempts += 1
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_cell_entry,
                    args=(child_conn, cell_fn, cell.benchmark, cell.scheme,
                          width, spec),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                deadline = now + cell_timeout if cell_timeout else None
                running[proc.sentinel] = _Running(proc, parent_conn, cell, deadline)
                launched = True
            if launched:
                continue
            if not running:
                # Everything pending is backing off: sleep until the first
                # retry is due.
                wake = min(c.not_before for c in pending)
                time.sleep(max(0.0, wake - time.monotonic()) + 0.001)
                continue
            timeout = 0.5
            deadlines = [r.deadline for r in running.values() if r.deadline]
            if deadlines:
                timeout = min(timeout, max(0.0, min(deadlines) - now))
            if pending:
                wake = min(c.not_before for c in pending)
                timeout = min(timeout, max(0.0, wake - now))
            ready = mp_connection.wait(list(running), timeout=timeout)
            for sentinel in ready:
                entry = running.pop(sentinel)
                entry.proc.join()
                finish(entry)
            now = time.monotonic()
            for sentinel, entry in list(running.items()):
                if entry.deadline is not None and now >= entry.deadline:
                    del running[sentinel]
                    entry.proc.terminate()
                    entry.proc.join(5)
                    if entry.proc.is_alive():
                        entry.proc.kill()
                        entry.proc.join(5)
                    finish(entry, kind="timeout")
    except KeyboardInterrupt:
        # Graceful drain: stop launching, give cells already in flight a
        # short grace to deliver finished results (which land in the
        # journal through on_cell_done as usual), then let the finally
        # clause terminate the rest and re-raise so the caller can print
        # the resume command.
        deadline = time.monotonic() + _DRAIN_GRACE
        while running and time.monotonic() < deadline:
            ready = mp_connection.wait(
                list(running), timeout=max(0.0, deadline - time.monotonic())
            )
            if not ready:
                break
            for sentinel in ready:
                entry = running.pop(sentinel)
                entry.proc.join()
                finish(entry)
        raise
    finally:
        for entry in running.values():
            entry.proc.terminate()
            entry.conn.close()


def run_matrix(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    width: int = 4,
    spec: Optional[RunSpec] = None,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    *,
    on_error: str = "raise",
    cell_timeout: Optional[float] = None,
    retries: int = 0,
    retry_backoff: float = 0.5,
    journal: Optional[Union[str, SweepJournal]] = None,
    cell_fn: Optional[Callable] = None,
    farm: Optional[FarmSpec] = None,
    farm_progress: Optional[Callable] = None,
    backend: str = "scalar",
) -> Dict[str, Dict[str, MatrixCell]]:
    """Simulate a benchmark x scheme matrix; returns [benchmark][scheme].

    Execution is fault-tolerant at (benchmark, scheme) cell granularity:

    * ``jobs > 1`` runs each cell in its own worker process, so one
      crashing or hanging cell can never take down the sweep (the old
      pool-based runner died whole);
    * ``cell_timeout`` bounds each cell's wall-clock seconds (parallel
      path only — the serial path relies on ``spec.max_cycles``, the
      in-simulator watchdog, instead);
    * ``crash``/``timeout`` failures are retried up to ``retries`` times
      with exponential backoff (``retry_backoff * 2**attempt`` seconds);
      deterministic simulation errors are not retried;
    * ``journal`` (a path or a :class:`SweepJournal`) names an on-disk
      JSON journal: completed cells are
      restored from it instead of re-simulated, and every finished cell
      is persisted as it lands, so an interrupted sweep resumes;
    * ``on_error='record'`` leaves a structured :class:`CellError` in
      the matrix for each failed cell (see :func:`matrix_errors`);
      ``'raise'`` (default) raises :class:`MatrixError` — *after*
      finishing and journaling every other cell — with the partial
      results attached.

    Results are bit-identical between serial and parallel runs: traces
    are deterministic in (benchmark, spec), and each worker regenerates
    its own.  For that reason the ``traces`` cache is only consulted on
    the serial (in-process) path; on the parallel path it is
    intentionally unused — a cache cannot be shared across processes
    without shipping whole traces over pickle, which costs more than
    regeneration.

    ``cell_fn`` overrides the per-cell simulation callable (signature of
    :func:`run_one`); it exists for fault-injection tests.

    ``backend='vector'`` dispatches the remaining cells as batched
    columns on the lockstep backend (:mod:`repro.vector`, requires
    numpy): cells that share a trace and differ only in physical
    register capacity ride one simulation, forked on divergence, with
    bit-identical per-lane results and per-cell journal lines.  The
    column runs in-process (``jobs``, ``cell_timeout``, ``retries``, and
    ``cell_fn`` apply to the scalar backend and are rejected here); with
    ``farm`` set, each column becomes one durable lease instead.

    ``farm`` (a :class:`~repro.farm.lease.FarmSpec`) hands execution to
    the fault-tolerant sweep farm (:mod:`repro.farm`): cells become
    durable lease records in a shared directory, stateless workers —
    broker-spawned locally, or attached from other shells/hosts with
    ``python -m repro.farm worker <root>`` — lease, heartbeat, and
    checkpoint them, and expired leases are reclaimed and resumed from
    the latest checkpoint rather than restarted.  The journal defaults
    to ``<farm.root>/journal.json`` and additionally carries the lease
    audit trail.  ``farm_progress(report, active_leases)`` is invoked
    periodically with the live :class:`~repro.farm.aggregate.FarmReport`.
    """
    if on_error not in ("raise", "record"):
        raise ValueError(f"on_error must be 'raise' or 'record', got {on_error!r}")
    if backend not in MATRIX_BACKENDS:
        raise ValueError(
            f"backend must be one of {MATRIX_BACKENDS}, got {backend!r}"
        )
    if backend == "vector":
        if cell_fn is not None:
            raise ValueError("cell_fn applies to the scalar backend only")
        # With a farm, cell_timeout/retries govern the column leases; in
        # process there is no per-cell isolation to apply them to.
        clash = [name for name, bad in (
            ("jobs", jobs > 1), ("cell_timeout", cell_timeout is not None),
            ("retries", retries > 0),
        ) if bad]
        if clash and farm is None:
            raise ValueError(
                f"backend='vector' runs whole columns in one process; "
                f"{', '.join(clash)} only apply to the scalar backend "
                f"(use farm=... to distribute columns)"
            )
    spec = spec or RunSpec()
    user_cell_fn = cell_fn
    cell_fn = cell_fn or run_one
    if journal is None and farm is not None:
        journal = farm.paths.journal
    if journal is None or isinstance(journal, SweepJournal):
        sweep_journal = journal
    else:
        sweep_journal = SweepJournal(journal)

    results: Dict[str, Dict[str, MatrixCell]] = {b: {} for b in benchmarks}
    todo: List[Tuple[str, str]] = []
    for benchmark in benchmarks:
        for scheme in schemes:
            if sweep_journal is not None:
                saved = sweep_journal.get(cell_key(benchmark, scheme, width, spec))
                if saved is not None:
                    results[benchmark][scheme] = saved
                    continue
            todo.append((benchmark, scheme))

    def on_cell_done(benchmark: str, scheme: str, cell: MatrixCell) -> None:
        results[benchmark][scheme] = cell
        if sweep_journal is not None:
            key = cell_key(benchmark, scheme, width, spec)
            if isinstance(cell, CellError):
                sweep_journal.record_error(key, cell.to_dict())
            else:
                sweep_journal.record_ok(key, cell)

    # ``jobs == 1`` without resilience options stays fully in-process
    # (fast unit tests, pdb-able); anything else gets per-cell worker
    # processes — the fork cost is trivial next to a simulation cell,
    # and only a separate process can survive a crashing or hanging cell.
    isolate = bool(todo) and (
        jobs > 1 or cell_timeout is not None or retries > 0
    )
    if farm is not None and todo:
        from repro.farm.broker import run_cells_farm  # lazy: reverse edge

        run_cells_farm(
            todo, width, spec, farm, sweep_journal, on_cell_done,
            cell_timeout=cell_timeout, retries=retries,
            retry_backoff=retry_backoff, cell_fn=user_cell_fn,
            on_progress=farm_progress, backend=backend,
        )
    elif backend == "vector" and todo:
        _run_cells_vector(
            todo, width, spec, traces or _GLOBAL_TRACES, on_cell_done,
        )
    elif isolate:
        _run_cells_isolated(
            todo, width, spec, jobs, cell_timeout, retries, retry_backoff,
            cell_fn, on_cell_done,
        )
    else:
        local_traces = traces or _GLOBAL_TRACES
        for benchmark, scheme in todo:
            started = time.monotonic()
            try:
                stats = cell_fn(benchmark, scheme, width, spec, local_traces)
            except Exception as exc:  # deterministic: no retry
                stats = CellError(
                    benchmark, scheme, "error", type(exc).__name__,
                    str(exc), 1, time.monotonic() - started,
                )
            on_cell_done(benchmark, scheme, stats)

    results = {
        b: {s: results[b][s] for s in schemes if s in results[b]}
        for b in benchmarks
    }
    errors = matrix_errors(results)
    if errors and on_error == "raise":
        raise MatrixError(errors, results)
    return results


def speedups_over_base(
    results: Dict[str, Dict[str, MatrixCell]]
) -> Dict[str, Dict[str, float]]:
    """Convert a matrix including 'base' into per-scheme IPC speedups.

    Failed cells (:class:`CellError` records) are skipped; a benchmark
    whose 'base' cell failed is dropped entirely."""
    out: Dict[str, Dict[str, float]] = {}
    for benchmark, row in results.items():
        base = row.get("base")
        if not isinstance(base, SimStats):
            continue
        base_ipc = base.ipc
        out[benchmark] = {
            scheme: (stats.ipc / base_ipc if base_ipc else 0.0)
            for scheme, stats in row.items()
            if scheme != "base" and isinstance(stats, SimStats)
        }
    return out
