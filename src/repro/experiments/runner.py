"""Experiment runner: scheme registry, trace caching, and sweep drivers.

The scheme names follow the paper's Figures 10 and 12 exactly:

============================  ==================================================
``base``                      conventional machine (free at redefiner commit)
``ER``                        prior-work early release (Moudgill counters/flags)
``PRI-refcount+ckptcount``    PRI, WAR via consumer refcounts, checkpoint
                              reference counting (the realistic design point)
``PRI-refcount+lazy``         PRI, consumer refcounts, lazy checkpoint patching
``PRI-ideal+ckptcount``       PRI, instantaneous payload-RAM update, ckpt counts
``PRI-ideal+lazy``            PRI, instantaneous payload-RAM update, lazy patch
``PRI+ER``                    PRI (refcount+ckptcount) combined with ER
``inf``                       unlimited physical registers (upper bound)
============================  ==================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import (
    EFFECTIVELY_INFINITE_REGS,
    CheckpointPolicy,
    MachineConfig,
    WarPolicy,
    eight_wide,
    four_wide,
)
from repro.core.machine import simulate
from repro.core.stats import SimStats
from repro.workloads import SPEC_FP, SPEC_INT, Trace, generate_trace


def _with_inf_regs(config: MachineConfig) -> MachineConfig:
    return dataclasses.replace(
        config,
        int_phys_regs=EFFECTIVELY_INFINITE_REGS,
        fp_phys_regs=EFFECTIVELY_INFINITE_REGS,
    )


#: Scheme name -> config transformer.
SCHEMES: Dict[str, Callable[[MachineConfig], MachineConfig]] = {
    "base": lambda c: c,
    "ER": lambda c: c.with_early_release(),
    "PRI-refcount+ckptcount": lambda c: c.with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT
    ),
    "PRI-refcount+lazy": lambda c: c.with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.LAZY),
    "PRI-ideal+ckptcount": lambda c: c.with_pri(WarPolicy.IDEAL, CheckpointPolicy.CKPTCOUNT),
    "PRI-ideal+lazy": lambda c: c.with_pri(WarPolicy.IDEAL, CheckpointPolicy.LAZY),
    "PRI+ER": lambda c: c.with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT
    ).with_early_release(),
    "inf": _with_inf_regs,
}

#: The scheme series of Figures 10 and 12, in the paper's legend order.
FIGURE10_SCHEMES: Tuple[str, ...] = (
    "ER",
    "PRI-refcount+ckptcount",
    "PRI-refcount+lazy",
    "PRI-ideal+ckptcount",
    "PRI-ideal+lazy",
    "PRI+ER",
    "inf",
)

INT_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in SPEC_INT)
FP_BENCHMARKS: Tuple[str, ...] = tuple(p.name for p in SPEC_FP)


def width_config(width: int) -> MachineConfig:
    """The Table 1 machine for a given issue width."""
    if width == 4:
        return four_wide()
    if width == 8:
        return eight_wide()
    raise ValueError(f"no Table 1 machine with width {width}")


@dataclass
class RunSpec:
    """How much work each simulation does.

    The paper runs 100M instructions after 400M of fast-forward; a Python
    cycle simulator cannot, so the defaults are small and every driver
    takes a spec so callers can scale up.
    """

    length: int = 6000
    warmup: int = 20000
    seed: int = 1


class TraceCache:
    """Per-process cache: one trace per (benchmark, spec)."""

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int, int, int], Trace] = {}

    def get(self, benchmark: str, spec: RunSpec) -> Trace:
        key = (benchmark, spec.length, spec.warmup, spec.seed)
        trace = self._cache.get(key)
        if trace is None:
            trace = generate_trace(
                benchmark, spec.length, seed=spec.seed, warmup=spec.warmup
            )
            self._cache[key] = trace
        return trace


_GLOBAL_TRACES = TraceCache()


def run_one(
    benchmark: str,
    scheme: str,
    width: int = 4,
    spec: Optional[RunSpec] = None,
    traces: Optional[TraceCache] = None,
) -> SimStats:
    """Simulate one (benchmark, scheme, width) cell."""
    spec = spec or RunSpec()
    traces = traces or _GLOBAL_TRACES
    config = SCHEMES[scheme](width_config(width))
    return simulate(config, traces.get(benchmark, spec))


def _run_row(args) -> tuple:
    """Worker: one benchmark through every scheme (module-level so it
    pickles for multiprocessing).  Regenerates the trace locally — traces
    are deterministic in (benchmark, spec), so results are identical to
    the serial path."""
    benchmark, schemes, width, spec = args
    traces = TraceCache()
    row = {
        scheme: run_one(benchmark, scheme, width, spec, traces)
        for scheme in schemes
    }
    return benchmark, row


def run_matrix(
    benchmarks: Sequence[str],
    schemes: Sequence[str],
    width: int = 4,
    spec: Optional[RunSpec] = None,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
) -> Dict[str, Dict[str, SimStats]]:
    """Simulate a benchmark x scheme matrix; returns [benchmark][scheme].

    ``jobs > 1`` distributes whole benchmarks over worker processes; the
    results are bit-identical to a serial run (each worker regenerates
    the same deterministic trace).
    """
    spec = spec or RunSpec()
    if jobs > 1 and len(benchmarks) > 1:
        import concurrent.futures

        work = [(b, tuple(schemes), width, spec) for b in benchmarks]
        results: Dict[str, Dict[str, SimStats]] = {}
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            for benchmark, row in pool.map(_run_row, work):
                results[benchmark] = row
        return {b: results[b] for b in benchmarks}
    traces = traces or _GLOBAL_TRACES
    results = {}
    for benchmark in benchmarks:
        row: Dict[str, SimStats] = {}
        for scheme in schemes:
            row[scheme] = run_one(benchmark, scheme, width, spec, traces)
        results[benchmark] = row
    return results


def speedups_over_base(
    results: Dict[str, Dict[str, SimStats]]
) -> Dict[str, Dict[str, float]]:
    """Convert a matrix including 'base' into per-scheme IPC speedups."""
    out: Dict[str, Dict[str, float]] = {}
    for benchmark, row in results.items():
        base_ipc = row["base"].ipc
        out[benchmark] = {
            scheme: (stats.ipc / base_ipc if base_ipc else 0.0)
            for scheme, stats in row.items()
            if scheme != "base"
        }
    return out
