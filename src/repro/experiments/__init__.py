"""Experiment harness: drivers that regenerate every table and figure of
the paper's evaluation (see DESIGN.md §5 for the index).

Command line::

    python -m repro.experiments --all            # everything (slow)
    python -m repro.experiments --figure 10      # one figure
    python -m repro.experiments --table 2        # one table
    python -m repro.experiments --figure 9 --length 4000 --width 4
"""

from repro.experiments.runner import (
    SCHEMES,
    FIGURE10_SCHEMES,
    INT_BENCHMARKS,
    FP_BENCHMARKS,
    CellError,
    MatrixError,
    RunSpec,
    TraceCache,
    matrix_errors,
    run_one,
    run_matrix,
    speedups_over_base,
    width_config,
)
from repro.experiments.journal import SweepJournal, cell_key
from repro.experiments.figures import (
    FigureResult,
    figure1,
    figure2,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.tables import table1, table2

__all__ = [
    "SCHEMES",
    "FIGURE10_SCHEMES",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "CellError",
    "MatrixError",
    "RunSpec",
    "SweepJournal",
    "TraceCache",
    "cell_key",
    "matrix_errors",
    "run_one",
    "run_matrix",
    "speedups_over_base",
    "width_config",
    "FigureResult",
    "figure1",
    "figure2",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "table1",
    "table2",
]
