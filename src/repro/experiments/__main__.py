"""CLI entry point for the experiment harness."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    MatrixError,
    RunSpec,
    figure1,
    figure2,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table2,
)

_FIGURES = {1: figure1, 2: figure2, 8: figure8, 9: figure9,
            10: figure10, 11: figure11, 12: figure12}
_TABLES = {1: table1, 2: table2}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--figure", type=int, choices=sorted(_FIGURES),
                        action="append", default=[])
    parser.add_argument("--table", type=int, choices=sorted(_TABLES),
                        action="append", default=[])
    parser.add_argument("--all", action="store_true",
                        help="run every table and figure")
    parser.add_argument("--length", type=int, default=6000,
                        help="timed instructions per run (default 6000)")
    parser.add_argument("--warmup", type=int, default=20000,
                        help="untimed warmup instructions (default 20000)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--width", type=int, choices=(4, 8), default=None,
                        help="restrict to one machine width (default: both)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="also write each result to DIR/<name>.txt")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for benchmark-parallel "
                             "figures (results are identical to --jobs 1)")
    parser.add_argument("--audit", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run every cell with the machine invariant "
                             "auditor attached (repro.audit)")
    parser.add_argument("--oracle", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run every cell under the golden-model "
                             "differential oracle (repro.oracle): value "
                             "divergence at commit fails the cell loudly")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="snapshot each cell's machine state every N "
                             "cycles so a crashed cell resumes "
                             "mid-simulation on the next run")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for cell checkpoint files "
                             "(default: .repro-checkpoints)")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="N",
                        help="per-cell cycle watchdog: fail a cell that "
                             "does not finish within N cycles")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="JSON sweep journal; completed cells are "
                             "restored from it and new ones appended, so "
                             "an interrupted sweep resumes")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SEC",
                        help="wall-clock budget per sweep cell (worker is "
                             "killed and the cell recorded as a timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry crashed/timed-out cells up to N times")
    args = parser.parse_args(argv)

    figures = sorted(set(args.figure))
    tables = sorted(set(args.table))
    if args.all:
        figures = sorted(_FIGURES)
        tables = sorted(_TABLES)
    if not figures and not tables:
        parser.error("nothing to do: pass --all, --figure N, or --table N")

    spec = RunSpec(length=args.length, warmup=args.warmup, seed=args.seed,
                   max_cycles=args.max_cycles, audit=args.audit,
                   oracle=args.oracle,
                   checkpoint_every=args.checkpoint_every,
                   checkpoint_dir=args.checkpoint_dir)
    widths = (args.width,) if args.width else (4, 8)
    matrix_opts = {}
    if args.journal:
        from repro.experiments import SweepJournal

        try:
            matrix_opts["journal"] = SweepJournal(args.journal)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    if args.cell_timeout is not None:
        matrix_opts["cell_timeout"] = args.cell_timeout
    if args.retries:
        matrix_opts["retries"] = args.retries

    def emit(name: str, result) -> None:
        text = result.render()
        print(text)
        if args.output:
            import os

            os.makedirs(args.output, exist_ok=True)
            path = os.path.join(args.output, f"{name}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")

    for number in tables:
        start = time.time()
        if number == 1:
            result = table1()
        else:
            result = table2(spec, widths=widths)
        emit(f"table{number}", result)
        print(f"[table {number}: {time.time() - start:.1f}s]\n")
    for number in figures:
        start = time.time()
        try:
            if number == 2:
                result = figure2(length=max(args.length, 10000), seed=args.seed)
            elif number == 9:
                result = _FIGURES[number](spec, widths=widths)
            else:
                result = _FIGURES[number](spec, widths=widths, jobs=args.jobs,
                                          matrix_opts=matrix_opts)
        except MatrixError as err:
            print(f"figure {number} failed: {len(err.errors)} sweep cell(s) "
                  "did not complete:", file=sys.stderr)
            for record in err.errors:
                print(f"  {record}", file=sys.stderr)
            if args.journal:
                print(f"(completed cells are journaled in {args.journal}; "
                      "re-run to resume)", file=sys.stderr)
            return 1
        emit(f"figure{number}", result)
        print(f"[figure {number}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
