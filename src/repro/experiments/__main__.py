"""CLI entry point for the experiment harness."""

from __future__ import annotations

import argparse
import shlex
import signal
import sys
import time

from repro.experiments import (
    MatrixError,
    RunSpec,
    figure1,
    figure2,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table2,
)

_FIGURES = {1: figure1, 2: figure2, 8: figure8, 9: figure9,
            10: figure10, 11: figure11, 12: figure12}
_TABLES = {1: table1, 2: table2}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("--figure", type=int, choices=sorted(_FIGURES),
                        action="append", default=[])
    parser.add_argument("--table", type=int, choices=sorted(_TABLES),
                        action="append", default=[])
    parser.add_argument("--all", action="store_true",
                        help="run every table and figure")
    parser.add_argument("--length", type=int, default=6000,
                        help="timed instructions per run (default 6000)")
    parser.add_argument("--warmup", type=int, default=20000,
                        help="untimed warmup instructions (default 20000)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--width", type=int, choices=(4, 8), default=None,
                        help="restrict to one machine width (default: both)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="also write each result to DIR/<name>.txt")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for benchmark-parallel "
                             "figures (results are identical to --jobs 1)")
    parser.add_argument("--backend", choices=("scalar", "vector"),
                        default="scalar",
                        help="simulation backend: 'vector' batches each "
                             "sweep column (cells sharing a trace, sizes "
                             "sharing a machine) into one lockstep job "
                             "with bit-identical results (needs numpy)")
    parser.add_argument("--audit", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run every cell with the machine invariant "
                             "auditor attached (repro.audit)")
    parser.add_argument("--oracle", action=argparse.BooleanOptionalAction,
                        default=False,
                        help="run every cell under the golden-model "
                             "differential oracle (repro.oracle): value "
                             "divergence at commit fails the cell loudly")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="snapshot each cell's machine state every N "
                             "cycles so a crashed cell resumes "
                             "mid-simulation on the next run")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for cell checkpoint files "
                             "(default: .repro-checkpoints)")
    parser.add_argument("--max-cycles", type=int, default=None, metavar="N",
                        help="per-cell cycle watchdog: fail a cell that "
                             "does not finish within N cycles")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="JSON sweep journal; completed cells are "
                             "restored from it and new ones appended, so "
                             "an interrupted sweep resumes")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SEC",
                        help="wall-clock budget per sweep cell (worker is "
                             "killed and the cell recorded as a timeout)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="retry crashed/timed-out cells up to N times")
    parser.add_argument("--farm", default=None, metavar="DIR",
                        help="run the sweep through the fault-tolerant "
                             "farm (repro.farm) rooted at DIR: cells "
                             "become durable leases, workers heartbeat "
                             "and checkpoint, crashes resume mid-cell; "
                             "attach extra workers from other shells "
                             "with `python -m repro.farm worker DIR`")
    parser.add_argument("--farm-workers", type=int, default=2, metavar="N",
                        help="local worker processes the farm broker "
                             "spawns (default 2; 0 = attached only)")
    parser.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="SEC",
                        help="reclaim a farm cell whose lease has not "
                             "heartbeat for SEC seconds (default 30)")
    parser.add_argument("--heartbeat", type=float, default=1.0,
                        metavar="SEC",
                        help="farm worker heartbeat cadence (default 1)")
    parser.add_argument("--grace", type=float, default=5.0, metavar="SEC",
                        help="seconds an evicted/drained farm worker "
                             "gets to checkpoint and release (default 5)")
    parser.add_argument("--farm-endpoint", default=None, metavar="URL",
                        help="HTTP lease-service URL (python -m repro.farm "
                             "serve): the broker and its workers speak the "
                             "lease protocol to this service instead of "
                             "the shared directory — DIR then holds only "
                             "the broker-local sweep journal")
    parser.add_argument("--farm-inject", action="append", default=[],
                        metavar="FAULT[:worker=N][:cell=N][:cycles=N]",
                        help="deterministically inject a farm fault "
                             "(process: kill, stall, orphan, evict, "
                             "double-lease; wire: net-drop, net-delay, "
                             "net-disconnect, net-duplicate, net-stale); "
                             "repeatable — used by the chaos suites")
    args = parser.parse_args(argv)

    figures = sorted(set(args.figure))
    tables = sorted(set(args.table))
    if args.all:
        figures = sorted(_FIGURES)
        tables = sorted(_TABLES)
    if not figures and not tables:
        parser.error("nothing to do: pass --all, --figure N, or --table N")

    spec = RunSpec(length=args.length, warmup=args.warmup, seed=args.seed,
                   max_cycles=args.max_cycles, audit=args.audit,
                   oracle=args.oracle,
                   checkpoint_every=args.checkpoint_every,
                   checkpoint_dir=args.checkpoint_dir)
    widths = (args.width,) if args.width else (4, 8)
    matrix_opts = {}
    if args.backend != "scalar":
        try:
            import repro.vector  # noqa: F401 — fail early, with the gate's message
        except ImportError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
        if not args.farm and (args.jobs > 1 or args.cell_timeout is not None
                              or args.retries):
            parser.error("--backend vector runs whole columns in one "
                         "process; --jobs/--cell-timeout/--retries apply "
                         "to the scalar backend (use --farm to "
                         "distribute columns)")
        matrix_opts["backend"] = args.backend
    if args.journal or args.farm:
        from repro.experiments import SweepJournal

        if args.farm and not args.journal:
            # The farm keeps its journal inside its root; open it here
            # so a damaged one is the same clean error --journal gets,
            # not a traceback from deep inside the broker.
            import os

            os.makedirs(args.farm, exist_ok=True)
        journal_file = args.journal or f"{args.farm}/journal.json"
        try:
            matrix_opts["journal"] = SweepJournal(journal_file)
        except ValueError as err:
            print(f"error: {err}", file=sys.stderr)
            return 1
    if args.cell_timeout is not None:
        matrix_opts["cell_timeout"] = args.cell_timeout
    if args.retries:
        matrix_opts["retries"] = args.retries
    if args.farm_endpoint and not args.farm:
        parser.error("--farm-endpoint needs --farm DIR for the "
                     "broker-local sweep journal")
    if args.farm:
        from repro.farm import FarmSpec

        farm_kwargs = {}
        if args.checkpoint_every is not None:
            farm_kwargs["checkpoint_every"] = args.checkpoint_every
        matrix_opts["farm"] = FarmSpec(
            root=args.farm, workers=args.farm_workers,
            endpoint=args.farm_endpoint,
            lease_ttl=args.lease_ttl, heartbeat_interval=args.heartbeat,
            grace=args.grace, inject=tuple(args.farm_inject),
            **farm_kwargs,
        )

        def farm_progress(report, active) -> None:
            print(f"\r{report.progress_line(active)}   ",
                  end="", file=sys.stderr, flush=True)

        matrix_opts["farm_progress"] = farm_progress

    def emit(name: str, result) -> None:
        text = result.render()
        print(text)
        if args.output:
            import os

            os.makedirs(args.output, exist_ok=True)
            path = os.path.join(args.output, f"{name}.txt")
            with open(path, "w") as handle:
                handle.write(text + "\n")

    # A drained sweep must be resumable with the exact same invocation:
    # completed cells are journaled, so re-running skips them.
    resume_command = "python -m repro.experiments " + " ".join(
        shlex.quote(a) for a in (argv if argv is not None else sys.argv[1:])
    )
    journal_path = args.journal or (
        f"{args.farm}/journal.json" if args.farm else None
    )

    def _sigterm(signum, frame):
        # Route SIGTERM (spot eviction, CI cancellation) through the
        # same drain path as Ctrl-C.
        raise KeyboardInterrupt

    previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    try:
        for number in tables:
            start = time.time()
            if number == 1:
                result = table1()
            else:
                result = table2(spec, widths=widths)
            emit(f"table{number}", result)
            print(f"[table {number}: {time.time() - start:.1f}s]\n")
        for number in figures:
            start = time.time()
            try:
                if number == 2:
                    result = figure2(length=max(args.length, 10000),
                                     seed=args.seed)
                elif number == 9:
                    result = _FIGURES[number](spec, widths=widths,
                                              backend=args.backend)
                else:
                    result = _FIGURES[number](spec, widths=widths,
                                              jobs=args.jobs,
                                              matrix_opts=matrix_opts)
            except MatrixError as err:
                print(f"figure {number} failed: {len(err.errors)} sweep "
                      "cell(s) did not complete:", file=sys.stderr)
                for record in err.errors:
                    print(f"  {record}", file=sys.stderr)
                if journal_path:
                    print(f"(completed cells are journaled in "
                          f"{journal_path}; re-run to resume)",
                          file=sys.stderr)
                return 1
            if args.farm:
                print(file=sys.stderr)  # end the live progress line
            emit(f"figure{number}", result)
            print(f"[figure {number}: {time.time() - start:.1f}s]\n")
    except KeyboardInterrupt:
        # In-flight cells were drained (farm broker / isolated-cell pool
        # handle that on the way out) and every finished cell is already
        # journaled; tell the user how to pick the sweep back up.
        print("\ninterrupted: sweep drained cleanly.", file=sys.stderr)
        if journal_path:
            print(f"  completed cells are journaled in {journal_path}",
                  file=sys.stderr)
            print(f"  resume with: {resume_command}", file=sys.stderr)
        else:
            print("  (no --journal/--farm given, so completed cells were "
                  "not persisted; pass one to make sweeps resumable)",
                  file=sys.stderr)
            print(f"  re-run with: {resume_command}", file=sys.stderr)
        return 130
    finally:
        signal.signal(signal.SIGTERM, previous_sigterm)
    return 0


if __name__ == "__main__":
    sys.exit(main())
