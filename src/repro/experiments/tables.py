"""Table drivers: the paper's Table 1 (machine configurations) and
Table 2 (benchmarks and base IPC)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import eight_wide, four_wide
from repro.experiments.figures import FigureResult
from repro.experiments.report import format_table
from repro.experiments.runner import (
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    RunSpec,
    TraceCache,
    run_one,
)
from repro.workloads import get_profile

_DEFAULT_WIDTHS = (4, 8)


def table1() -> FigureResult:
    """Render the machine configurations (Table 1)."""
    result = FigureResult("Table 1: machine configurations")
    rows = []
    for config in (four_wide(), eight_wide()):
        rows.append(
            (
                config.name,
                config.width,
                config.rob_entries,
                config.lsq_entries,
                config.scheduler_entries,
                config.int_phys_regs,
                config.fp_phys_regs,
                config.pri.int_width_bits,
            )
        )
    result.tables.append(
        format_table(
            "out-of-order execution",
            ("model", "width", "ROB", "LSQ", "sched", "intPR", "fpPR", "PRIbits"),
            rows,
        )
    )
    mem = four_wide().memory
    result.tables.append(
        format_table(
            "memory system (latency in cycles)",
            ("level", "size", "assoc", "line", "latency"),
            (
                ("IL1", mem.il1.size, mem.il1.assoc, mem.il1.line, mem.il1.latency),
                ("DL1", mem.dl1.size, mem.dl1.assoc, mem.dl1.line, mem.dl1.latency),
                ("L2", mem.l2.size, mem.l2.assoc, mem.l2.line, mem.l2.latency),
                ("memory", "-", "-", "-", mem.memory_latency),
            ),
        )
    )
    return result


def table2(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    traces: Optional[TraceCache] = None,
) -> FigureResult:
    """Base IPC for every benchmark at each width, next to the paper's
    reported values (Table 2)."""
    spec = spec or RunSpec()
    result = FigureResult("Table 2: benchmark programs simulated (base IPC)")
    for suite, names in (("integer", INT_BENCHMARKS), ("floating point", FP_BENCHMARKS)):
        rows = []
        for name in names:
            profile = get_profile(name)
            cells = [name]
            for width in widths:
                stats = run_one(name, "base", width, spec, traces)
                cells.append(stats.ipc)
            cells.extend([profile.paper_ipc_4w, profile.paper_ipc_8w])
            rows.append(cells)
        headers = (
            ["benchmark"]
            + [f"IPC({w}w)" for w in widths]
            + ["paper(4w)", "paper(8w)"]
        )
        result.tables.append(format_table(suite, headers, rows, floatfmt="{:.2f}"))
        result.data[suite] = rows
    return result
