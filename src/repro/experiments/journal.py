"""On-disk sweep journal: resume interrupted figure/table runs.

A :class:`SweepJournal` is a small JSON document mapping cell keys —
``benchmark|scheme|width|run-spec`` — to either a serialized
:class:`~repro.core.stats.SimStats` (completed cell) or a structured
error record (failed cell).  :func:`~repro.experiments.runner.run_matrix`
consults it before simulating each cell and appends to it as cells
finish, so a sweep killed halfway (machine crash, OOM-killed worker,
Ctrl-C) resumes from the completed cells instead of re-simulating them.
Failed cells are *not* resumed — a re-run retries them.

Writes are atomic (write-to-temp then :func:`os.replace`), so a crash
mid-write never corrupts the journal.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, Optional

from repro.core.stats import LifetimeStats, SimStats

_VERSION = 1


def stats_to_dict(stats: SimStats) -> Dict:
    """JSON-serializable form of a :class:`SimStats` (deep)."""
    return dataclasses.asdict(stats)


def stats_from_dict(data: Dict) -> SimStats:
    """Inverse of :func:`stats_to_dict`."""
    payload = dict(data)
    payload["lifetimes"] = {
        name: LifetimeStats(**fields)
        for name, fields in payload.get("lifetimes", {}).items()
    }
    return SimStats(**payload)


def cell_key(benchmark: str, scheme: str, width: int, spec) -> str:
    """Stable identity of one sweep cell.  Includes everything that
    determines the simulation's outcome, so one journal file can safely
    back multiple figures and run lengths."""
    return (
        f"{benchmark}|{scheme}|w{width}|n{spec.length}|u{spec.warmup}"
        f"|s{spec.seed}|c{spec.max_cycles or 0}|a{int(spec.audit)}"
    )


class SweepJournal:
    """Journal of completed/failed sweep cells, persisted after every
    update."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._cells: Dict[str, Dict] = {}
        if os.path.exists(path):
            with open(path) as handle:
                try:
                    doc = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"journal {path!r} is not valid JSON ({exc}); "
                        "delete or move it to start a fresh sweep"
                    ) from exc
            version = doc.get("version") if isinstance(doc, dict) else None
            if version != _VERSION:
                raise ValueError(
                    f"journal {path!r} has version {version}, "
                    f"expected {_VERSION}"
                )
            self._cells = doc.get("cells", {})

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def completed(self) -> int:
        return sum(1 for c in self._cells.values() if c.get("status") == "ok")

    def get(self, key: str) -> Optional[SimStats]:
        """Stats for a completed cell, or None (missing or failed)."""
        cell = self._cells.get(key)
        if cell is None or cell.get("status") != "ok":
            return None
        return stats_from_dict(cell["stats"])

    def record_ok(self, key: str, stats: SimStats) -> None:
        self._cells[key] = {"status": "ok", "stats": stats_to_dict(stats)}
        self._flush()

    def record_error(self, key: str, error: Dict) -> None:
        self._cells[key] = {"status": "error", "error": error}
        self._flush()

    def errors(self) -> Dict[str, Dict]:
        """key -> error record for every failed cell still journaled."""
        return {
            key: cell["error"]
            for key, cell in self._cells.items()
            if cell.get("status") == "error"
        }

    def _flush(self) -> None:
        doc = {"version": _VERSION, "cells": self._cells}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
