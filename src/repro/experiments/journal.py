"""On-disk sweep journal: resume interrupted figure/table runs.

A :class:`SweepJournal` is a small JSON document mapping cell keys —
``benchmark|scheme|width|run-spec|config-digest`` — to either a
serialized :class:`~repro.core.stats.SimStats` (completed cell) or a
structured error record (failed cell).
:func:`~repro.experiments.runner.run_matrix` consults it before
simulating each cell and appends to it as cells finish, so a sweep
killed halfway (machine crash, OOM-killed worker, Ctrl-C) resumes from
the completed cells instead of re-simulating them.  Failed cells are
*not* resumed — a re-run retries them.

Cell keys embed a digest of the *full resolved*
:class:`~repro.config.MachineConfig` (via
:func:`~repro.config.config_digest`), not just the knobs named in the
:class:`~repro.experiments.runner.RunSpec`: two cells that differ only
in, say, physical register file size (the Figure 9 PRF sweep) or an
inline-width override resolve to different keys and can never collide in
one journal file.

The document carries a schema version.  Loading a journal written by a
different version raises by default; pass ``archive_incompatible=True``
to move the old file aside (``<path>.v<N>.bak``) and restart fresh
instead — the archived cells stay on disk for manual salvage.

Writes are atomic (write-to-temp then :func:`os.replace`), so a crash
mid-write never corrupts the journal.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.config import MachineConfig, config_digest
from repro.core.stats import SimStats

_VERSION = 2


def stats_to_dict(stats: SimStats) -> Dict:
    """JSON-serializable form of a :class:`SimStats` (deep)."""
    return stats.to_dict()


def stats_from_dict(data: Dict) -> SimStats:
    """Inverse of :func:`stats_to_dict`."""
    return SimStats.from_dict(data)


def cell_key(
    benchmark: str,
    scheme: str,
    width: int,
    spec,
    config: Optional[MachineConfig] = None,
) -> str:
    """Stable identity of one sweep cell.  Includes everything that
    determines the simulation's outcome — the workload knobs from the
    run spec plus a digest of the fully resolved machine config — so one
    journal file can safely back multiple figures, run lengths, and
    config sweeps (PRF sizes, width-bit overrides, ...).

    ``config`` is the resolved :class:`~repro.config.MachineConfig` the
    cell will simulate; when omitted it is re-derived from
    ``(scheme, width, spec)`` exactly as
    :func:`~repro.experiments.runner.run_one` derives it.
    """
    if config is None:
        # Lazy: the runner imports this module.
        from repro.experiments.runner import resolve_config

        config = resolve_config(scheme, width, spec)
    return (
        f"{benchmark}|{scheme}|w{width}|n{spec.length}|u{spec.warmup}"
        f"|s{spec.seed}|c{spec.max_cycles or 0}|a{int(spec.audit)}"
        f"|{config_digest(config)}"
    )


class SweepJournal:
    """Journal of completed/failed sweep cells, persisted after every
    update."""

    def __init__(self, path: str, archive_incompatible: bool = False) -> None:
        self.path = path
        self._cells: Dict[str, Dict] = {}
        #: Path the incompatible predecessor was moved to, if any.
        self.archived: Optional[str] = None
        if os.path.exists(path):
            with open(path) as handle:
                try:
                    doc = json.load(handle)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"journal {path!r} is not valid JSON ({exc}); "
                        "delete or move it to start a fresh sweep"
                    ) from exc
            version = doc.get("version") if isinstance(doc, dict) else None
            if version != _VERSION:
                if not archive_incompatible:
                    raise ValueError(
                        f"journal {path!r} has version {version}, expected "
                        f"{_VERSION}; delete it, move it aside, or pass "
                        f"archive_incompatible=True to archive it and start "
                        f"a fresh sweep"
                    )
                self.archived = f"{path}.v{version}.bak"
                os.replace(path, self.archived)
            else:
                self._cells = doc.get("cells", {})

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def completed(self) -> int:
        return sum(1 for c in self._cells.values() if c.get("status") == "ok")

    def get(self, key: str) -> Optional[SimStats]:
        """Stats for a completed cell, or None (missing or failed)."""
        cell = self._cells.get(key)
        if cell is None or cell.get("status") != "ok":
            return None
        return stats_from_dict(cell["stats"])

    def record_ok(self, key: str, stats: SimStats) -> None:
        self._cells[key] = {"status": "ok", "stats": stats_to_dict(stats)}
        self._flush()

    def record_error(self, key: str, error: Dict) -> None:
        self._cells[key] = {"status": "error", "error": error}
        self._flush()

    def errors(self) -> Dict[str, Dict]:
        """key -> error record for every failed cell still journaled."""
        return {
            key: cell["error"]
            for key, cell in self._cells.items()
            if cell.get("status") == "error"
        }

    def _flush(self) -> None:
        doc = {"version": _VERSION, "cells": self._cells}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
