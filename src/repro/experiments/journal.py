"""On-disk sweep journal: resume interrupted figure/table runs.

A :class:`SweepJournal` maps cell keys —
``benchmark|scheme|width|run-spec|config-digest`` — to either a
serialized :class:`~repro.core.stats.SimStats` (completed cell) or a
structured error record (failed cell).
:func:`~repro.experiments.runner.run_matrix` consults it before
simulating each cell and appends to it as cells finish, so a sweep
killed halfway (machine crash, OOM-killed worker, Ctrl-C) resumes from
the completed cells instead of re-simulating them.  Failed cells are
*not* resumed — a re-run retries them.

Cell keys embed a digest of the *full resolved*
:class:`~repro.config.MachineConfig` (via
:func:`~repro.config.config_digest`), not just the knobs named in the
:class:`~repro.experiments.runner.RunSpec`: two cells that differ only
in, say, physical register file size (the Figure 9 PRF sweep) or an
inline-width override resolve to different keys and can never collide in
one journal file.

On-disk format (version 3) — **append-style checksummed lines** via
:mod:`repro.store`: one header record followed by one record per
finished cell, each line independently framed as
``<sha256-16hex> <json>`` and fsynced as it is appended.  Recording a
cell therefore costs O(1) I/O (the v2 journal rewrote the whole
document per cell), a crash mid-append damages at most the final line
(the *torn tail*, salvaged automatically on the next load), and any
byte of silent corruption is detected by a line digest.  A later
record for the same key supersedes the earlier one, which is how
re-runs heal failed cells.  Interior corruption — damage before the
last line — raises :class:`~repro.store.errors.DigestMismatch` and is
repairable with ``python -m repro.store fsck --repair`` (the valid
prefix is salvaged).

Besides cell records (``{"key": ..., "cell": ...}``), a journal may
carry **lease records** (``{"lease": {...}}``) — the durable audit
trail of the sweep farm (:mod:`repro.farm`): one line per lease
transition (``leased`` / ``heartbeat`` / ``completed`` / ``abandoned``
/ ``released``), each checksummed exactly like a cell line, so
``python -m repro.store fsck`` round-trips farmed journals unchanged.
Lease records never affect which cells are restored — they are
provenance, replayable to reconstruct who ran what, when, and how many
times each cell was reclaimed.

The header record carries a schema version.  Loading a journal written
by a different version (including the v1/v2 whole-document JSON
formats) raises by default; pass ``archive_incompatible=True`` to move
the old file aside (``<path>.v<N>.bak``) and restart fresh instead —
the archived cells stay on disk for manual salvage.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig, config_digest
from repro.core.stats import SimStats
from repro.store.atomic import atomic_writer, durable_replace
from repro.store.errors import DigestMismatch, MalformedRecord
from repro.store.integrity import (
    append_checked_line,
    checked_line,
    read_checked_lines,
)

_VERSION = 3

#: ``format`` tag of the journal header record (fsck's sniffing key).
JOURNAL_FORMAT = "repro-sweep-journal"

#: The lease state machine of the sweep farm (:mod:`repro.farm`), in
#: lifecycle order.  ``leased`` — a worker claimed the cell;
#: ``heartbeat`` — periodic liveness (journaled at a throttled rate);
#: ``completed`` — the cell's result was folded; ``abandoned`` — the
#: lease expired (crash/stall/timeout) and the cell became claimable
#: again; ``released`` — the holder gave the cell back voluntarily
#: (graceful drain or spot eviction) without completing it.
LEASE_STATES = ("leased", "heartbeat", "completed", "abandoned", "released")

#: Fields every journaled lease record must carry (fsck validates them).
LEASE_FIELDS = ("key", "state", "worker", "ts")


def stats_to_dict(stats: SimStats) -> Dict:
    """JSON-serializable form of a :class:`SimStats` (deep)."""
    return stats.to_dict()


def stats_from_dict(data: Dict) -> SimStats:
    """Inverse of :func:`stats_to_dict`."""
    return SimStats.from_dict(data)


def cell_key(
    benchmark: str,
    scheme: str,
    width: int,
    spec,
    config: Optional[MachineConfig] = None,
) -> str:
    """Stable identity of one sweep cell.  Includes everything that
    determines the simulation's outcome — the workload knobs from the
    run spec plus a digest of the fully resolved machine config — so one
    journal file can safely back multiple figures, run lengths, and
    config sweeps (PRF sizes, width-bit overrides, ...).

    ``config`` is the resolved :class:`~repro.config.MachineConfig` the
    cell will simulate; when omitted it is re-derived from
    ``(scheme, width, spec)`` exactly as
    :func:`~repro.experiments.runner.run_one` derives it.
    """
    if config is None:
        # Lazy: the runner imports this module.
        from repro.experiments.runner import resolve_config

        config = resolve_config(scheme, width, spec)
    return (
        f"{benchmark}|{scheme}|w{width}|n{spec.length}|u{spec.warmup}"
        f"|s{spec.seed}|c{spec.max_cycles or 0}|a{int(spec.audit)}"
        f"|{config_digest(config)}"
    )


def _header_record() -> Dict:
    return {"format": JOURNAL_FORMAT, "version": _VERSION}


class SweepJournal:
    """Journal of completed/failed sweep cells, persisted (appended and
    fsynced) after every update."""

    def __init__(self, path: str, archive_incompatible: bool = False) -> None:
        self.path = path
        self._cells: Dict[str, Dict] = {}
        #: Every lease transition journaled so far, in append order (the
        #: sweep farm's audit trail; see :data:`LEASE_STATES`).
        self.lease_events: List[Dict] = []
        #: Path the incompatible predecessor was moved to, if any.
        self.archived: Optional[str] = None
        #: ``(line, reason)`` of a torn tail dropped at load, if any.
        self.salvaged: Optional[Tuple[int, str]] = None
        self._initialized = False
        if os.path.exists(path):
            self._load(path, archive_incompatible)

    # ------------------------------------------------------------ load

    def _load(self, path: str, archive_incompatible: bool) -> None:
        with open(path, "rb") as handle:
            head = handle.read(64).lstrip()
        if head.startswith(b"{"):
            self._load_legacy_document(path, archive_incompatible)
            return
        result = read_checked_lines(path)
        if not result.records:
            if result.total_lines == 0 or (result.bad_line == 1
                                           and result.torn_tail):
                # Empty file or a crash while the header was being
                # written: nothing recorded yet, start fresh.
                return
            raise MalformedRecord(
                f"journal header line is damaged "
                f"({result.bad_reason}); run "
                f"`python -m repro.store fsck --repair` or delete it",
                path=path, kind="sweep-journal", line=result.bad_line,
            )
        header = result.records[0]
        if not isinstance(header, dict) or header.get("format") != JOURNAL_FORMAT:
            raise MalformedRecord(
                "first record is not a sweep-journal header",
                path=path, kind="sweep-journal", line=1,
            )
        version = header.get("version")
        if version != _VERSION:
            if not archive_incompatible:
                raise ValueError(
                    f"journal {path!r} has version {version}, expected "
                    f"{_VERSION}; delete it, move it aside, or pass "
                    f"archive_incompatible=True to archive it and start "
                    f"a fresh sweep"
                )
            self._archive(path, version)
            return
        if not result.clean and not result.torn_tail:
            raise DigestMismatch(
                f"journal record is damaged before the final line "
                f"({result.bad_reason}); the valid prefix "
                f"({len(result.records) - 1} cell records) is salvageable "
                f"with `python -m repro.store fsck --repair`",
                path=path, kind="sweep-journal", line=result.bad_line,
            )
        for record in result.records[1:]:
            if isinstance(record, dict) and "lease" in record:
                self.lease_events.append(record["lease"])
                continue
            if (
                not isinstance(record, dict)
                or "key" not in record
                or "cell" not in record
            ):
                raise MalformedRecord(
                    "journal record lacks key/cell fields",
                    path=path, kind="sweep-journal",
                )
            self._cells[record["key"]] = record["cell"]
        self._initialized = True
        if not result.clean:  # torn tail: drop it from disk too
            self.salvaged = (result.bad_line, result.bad_reason)
            self._rewrite()

    def _load_legacy_document(self, path: str, archive_incompatible: bool) -> None:
        """A v1/v2 whole-document JSON journal: incompatible by
        construction (v3 is the line format), so apply the standard
        archive-or-raise policy; corrupt JSON is typed, never a bare
        ``json.JSONDecodeError``."""
        with open(path, encoding="utf-8") as handle:
            try:
                doc = json.load(handle)
            except json.JSONDecodeError as exc:
                raise MalformedRecord(
                    f"journal is not valid JSON ({exc}); run "
                    f"`python -m repro.store fsck --repair` to quarantine "
                    f"it, or delete it to start a fresh sweep",
                    path=path, kind="sweep-journal",
                ) from exc
        version = doc.get("version") if isinstance(doc, dict) else None
        if not archive_incompatible:
            raise ValueError(
                f"journal {path!r} has version {version}, expected "
                f"{_VERSION}; delete it, move it aside, or pass "
                f"archive_incompatible=True to archive it and start "
                f"a fresh sweep"
            )
        self._archive(path, version)

    def _archive(self, path: str, version) -> None:
        # The rename must be made durable *here*: the caller is told the
        # archive's path (self.archived) as soon as we return, and the
        # next directory fsync may be arbitrarily far away (the first
        # append's rewrite).  Without the directory fsync a crash in
        # that window resurrects the incompatible journal at `path` and
        # silently loses the archive — the first gap the crash harness
        # (repro.crash) caught, kept honest by a reverted-fix test.
        self.archived = f"{path}.v{version}.bak"
        durable_replace(path, self.archived)

    # --------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def completed(self) -> int:
        return sum(1 for c in self._cells.values() if c.get("status") == "ok")

    def get(self, key: str) -> Optional[SimStats]:
        """Stats for a completed cell, or None (missing or failed)."""
        cell = self._cells.get(key)
        if cell is None or cell.get("status") != "ok":
            return None
        return stats_from_dict(cell["stats"])

    def errors(self) -> Dict[str, Dict]:
        """key -> error record for every failed cell still journaled."""
        return {
            key: cell["error"]
            for key, cell in self._cells.items()
            if cell.get("status") == "error"
        }

    def lease_states(self) -> Dict[str, Dict]:
        """key -> the *latest* journaled lease record per cell (replaying
        :attr:`lease_events` in append order)."""
        latest: Dict[str, Dict] = {}
        for event in self.lease_events:
            key = event.get("key")
            if key is not None:
                latest[key] = event
        return latest

    # --------------------------------------------------------- updates

    def record_ok(self, key: str, stats: SimStats) -> None:
        self._record(key, {"status": "ok", "stats": stats_to_dict(stats)})

    def record_error(self, key: str, error: Dict) -> None:
        self._record(key, {"status": "error", "error": error})

    def record_lease(self, event: Dict, *, durable: bool = True) -> None:
        """Append one lease-transition record (see :data:`LEASE_STATES`).

        ``event`` must carry at least :data:`LEASE_FIELDS`; the farm's
        broker is the only writer.  ``durable=False`` skips the fsync —
        used for throttled heartbeat lines, where losing the last one in
        a crash costs nothing (the next load still sees the grant)."""
        missing = [f for f in LEASE_FIELDS if f not in event]
        if missing:
            raise ValueError(f"lease record lacks fields: {missing}")
        if event["state"] not in LEASE_STATES:
            raise ValueError(f"unknown lease state {event['state']!r}")
        self.lease_events.append(event)
        self._append({"lease": event}, durable=durable)

    def _record(self, key: str, cell: Dict) -> None:
        self._cells[key] = cell
        self._append({"key": key, "cell": cell})

    def _append(self, record: Dict, *, durable: bool = True) -> None:
        if not self._initialized:
            self._rewrite()
            return
        append_checked_line(self.path, record, durable=durable)

    def _rewrite(self) -> None:
        """Atomically (re)write the whole journal: first record, or
        compaction after a salvage."""
        with atomic_writer(self.path) as handle:
            handle.write(checked_line(_header_record()))
            for key, cell in self._cells.items():
                handle.write(checked_line({"key": key, "cell": cell}))
            for event in self.lease_events:
                handle.write(checked_line({"lease": event}))
        self._initialized = True
