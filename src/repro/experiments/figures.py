"""Per-figure experiment drivers.

Each ``figureN`` function regenerates the data behind the paper's Figure
N — the same rows and series the paper plots — and returns a result
object whose ``render()`` produces a plain-text table.  Absolute numbers
come from the synthetic-trace substrate (see DESIGN.md §4); the shape is
what is being reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.lifetime import LifetimeBreakdown, breakdown_from_stats
from repro.analysis.significance import (
    fp_exponent_cdf,
    fp_significand_cdf,
    int_width_cdf,
)
from repro.config import PRF_SWEEP_SIZES
from repro.core.machine import simulate
from repro.experiments.report import (
    bar_chart,
    format_table,
    mean,
    stacked_bar_chart,
)
from repro.experiments.runner import (
    FIGURE10_SCHEMES,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    RunSpec,
    TraceCache,
    run_matrix,
    speedups_over_base,
    width_config,
)

_DEFAULT_WIDTHS: Tuple[int, ...] = (4, 8)


@dataclass
class FigureResult:
    """Generic container: a title plus one table per machine width."""

    title: str
    tables: List[str] = field(default_factory=list)
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        return "\n\n".join([self.title] + self.tables)


# ===================================================================
# Figure 1 — average register lifetime, base machine
# ===================================================================

def figure1(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = INT_BENCHMARKS,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    """Average physical register lifetime, split into alloc→write,
    write→last-read, last-read→release (stacked bars of Figure 1).

    ``matrix_opts`` forwards extra keyword arguments (``journal``,
    ``cell_timeout``, ``retries``, ``on_error``, ...) to
    :func:`~repro.experiments.runner.run_matrix`; the same applies to
    every other matrix-backed figure driver."""
    spec = spec or RunSpec()
    result = FigureResult(
        "Figure 1: average integer register lifetime (cycles), base machine"
    )
    for width in widths:
        rows = []
        breakdowns: List[LifetimeBreakdown] = []
        matrix = run_matrix(benchmarks, ["base"], width, spec, traces, jobs=jobs,
                            **(matrix_opts or {}))
        for benchmark in benchmarks:
            b = breakdown_from_stats(matrix[benchmark]["base"], benchmark)
            breakdowns.append(b)
            rows.append(
                (benchmark, b.alloc_to_write, b.write_to_last_read,
                 b.last_read_to_release, b.total)
            )
        rows.append(
            ("mean",
             mean([b.alloc_to_write for b in breakdowns]),
             mean([b.write_to_last_read for b in breakdowns]),
             mean([b.last_read_to_release for b in breakdowns]),
             mean([b.total for b in breakdowns]))
        )
        result.tables.append(
            format_table(
                f"width {width}",
                ("benchmark", "alloc->write", "write->last-read",
                 "last-read->release", "total"),
                rows,
                floatfmt="{:.1f}",
            )
        )
        result.tables.append(
            stacked_bar_chart(
                f"width {width} (cycles; stacked as in the paper's Figure 1)",
                [(b.label, (b.alloc_to_write, b.write_to_last_read,
                            b.last_read_to_release)) for b in breakdowns],
                ("alloc->write", "write->last-read", "last-read->release"),
            )
        )
        result.data[width] = breakdowns
    return result


# ===================================================================
# Figure 2 — operand significance CDFs
# ===================================================================

def figure2(
    length: int = 20000,
    seed: int = 1,
    int_benchmarks: Sequence[str] = INT_BENCHMARKS,
    fp_benchmarks: Sequence[str] = FP_BENCHMARKS,
) -> FigureResult:
    """Dynamic cumulative operand-width distributions (Figure 2)."""
    from repro.workloads import generate_trace

    result = FigureResult("Figure 2: operand significance")
    int_points = (1, 4, 7, 10, 16, 24, 32, 48, 64)
    rows = []
    cdfs: Dict[str, List[float]] = {}
    for name in int_benchmarks:
        trace = generate_trace(name, length, seed=seed, warmup=0)
        cdf = int_width_cdf(trace)
        cdfs[name] = cdf
        rows.append([name] + [cdf[b] for b in int_points])
    rows.append(["mean"] + [mean([cdfs[n][b] for n in int_benchmarks])
                            for b in int_points])
    result.tables.append(
        format_table(
            "integer operands: cumulative fraction representable in <= N bits",
            ["benchmark"] + [f"<={b}b" for b in int_points],
            rows,
        )
    )
    exp_rows, fp_data = [], {}
    for name in fp_benchmarks:
        trace = generate_trace(name, length, seed=seed, warmup=0)
        exp_cdf = fp_exponent_cdf(trace)
        sig_cdf = fp_significand_cdf(trace)
        fp_data[name] = (exp_cdf, sig_cdf)
        exp_rows.append((name, exp_cdf[0], exp_cdf[4], exp_cdf[8],
                         sig_cdf[0], sig_cdf[16], sig_cdf[32]))
    exp_rows.append(
        ("mean",
         mean([fp_data[n][0][0] for n in fp_benchmarks]),
         mean([fp_data[n][0][4] for n in fp_benchmarks]),
         mean([fp_data[n][0][8] for n in fp_benchmarks]),
         mean([fp_data[n][1][0] for n in fp_benchmarks]),
         mean([fp_data[n][1][16] for n in fp_benchmarks]),
         mean([fp_data[n][1][32] for n in fp_benchmarks]))
    )
    result.tables.append(
        format_table(
            "FP operands: exponent / significand significant-bit CDF",
            ("benchmark", "exp 0b", "exp<=4b", "exp<=8b",
             "sig 0b", "sig<=16b", "sig<=32b"),
            exp_rows,
        )
    )
    result.data = {"int": cdfs, "fp": fp_data}
    return result


# ===================================================================
# Figure 8 — lifetime reduction with PRI and PRI+ER
# ===================================================================

def figure8(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = INT_BENCHMARKS,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    """Register lifetime for base vs PRI vs PRI+ER (Figure 8)."""
    spec = spec or RunSpec()
    schemes = ("base", "PRI-refcount+ckptcount", "PRI+ER")
    labels = {"base": "base", "PRI-refcount+ckptcount": "PRI", "PRI+ER": "PRI+ER"}
    result = FigureResult(
        "Figure 8: average integer register lifetime (cycles) with PRI / PRI+ER"
    )
    for width in widths:
        matrix = run_matrix(benchmarks, schemes, width, spec, traces, jobs=jobs,
                            **(matrix_opts or {}))
        rows = []
        data = {}
        for benchmark in benchmarks:
            cells = [benchmark]
            for scheme in schemes:
                b = breakdown_from_stats(matrix[benchmark][scheme], benchmark)
                data.setdefault(benchmark, {})[labels[scheme]] = b
                cells.append(b.total)
            rows.append(cells)
        rows.append(
            ["mean"]
            + [mean([data[n][labels[s]].total for n in benchmarks]) for s in schemes]
        )
        result.tables.append(
            format_table(
                f"width {width} (total lifetime per scheme)",
                ["benchmark"] + [labels[s] for s in schemes],
                rows,
                floatfmt="{:.1f}",
            )
        )
        result.data[width] = data
    return result


# ===================================================================
# Figure 9 — register file size sensitivity
# ===================================================================

def figure9(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = INT_BENCHMARKS,
    sizes: Sequence[int] = PRF_SWEEP_SIZES,
    traces: Optional[TraceCache] = None,
    backend: str = "scalar",
) -> FigureResult:
    """Base-machine speedup vs physical register count, normalized to the
    smallest size (Figure 9).

    ``backend='vector'`` runs each benchmark's whole size sweep as one
    column on :mod:`repro.vector` — the canonical coherence-group shape:
    every size lane shares the trace and differs only in PRF capacity,
    so one machine carries the sweep and forks at each size's first
    register-exhaustion stall.  IPCs are bit-identical to the scalar
    path."""
    spec = spec or RunSpec()
    traces = traces or TraceCache()
    result = FigureResult(
        f"Figure 9: register file sensitivity (speedup over PR={sizes[0]})"
    )
    for width in widths:
        rows = []
        data: Dict[str, Dict[int, float]] = {}
        for benchmark in benchmarks:
            trace = traces.get(benchmark, spec)
            ipcs = {}
            if backend == "vector":
                from repro.vector import Lane, run_column

                lanes = [
                    Lane(key=str(size),
                         config=width_config(width).with_phys_regs(size),
                         trace=trace)
                    for size in sizes
                ]
                outcome = run_column(lanes)
                for size in sizes:
                    lane_result = outcome.results[str(size)]
                    if lane_result.error is not None:
                        raise lane_result.error
                    ipcs[size] = lane_result.stats.ipc
            else:
                for size in sizes:
                    config = width_config(width).with_phys_regs(size)
                    ipcs[size] = simulate(config, trace).ipc
            norm = ipcs[sizes[0]]
            data[benchmark] = {s: (ipcs[s] / norm if norm else 0.0) for s in sizes}
            rows.append([benchmark] + [data[benchmark][s] for s in sizes])
        rows.append(
            ["mean"] + [mean([data[b][s] for b in benchmarks]) for s in sizes]
        )
        result.tables.append(
            format_table(
                f"width {width}",
                ["benchmark"] + [f"PR={s}" for s in sizes],
                rows,
            )
        )
        result.data[width] = data
    return result


# ===================================================================
# Figures 10 and 12 — scheme speedups (INT and FP)
# ===================================================================

def _scheme_speedup_figure(
    title: str,
    benchmarks: Sequence[str],
    spec: Optional[RunSpec],
    widths: Sequence[int],
    traces: Optional[TraceCache],
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    spec = spec or RunSpec()
    schemes = ("base",) + FIGURE10_SCHEMES
    result = FigureResult(title)
    for width in widths:
        matrix = run_matrix(benchmarks, schemes, width, spec, traces, jobs=jobs,
                            **(matrix_opts or {}))
        speedups = speedups_over_base(matrix)
        rows = []
        for benchmark in benchmarks:
            rows.append(
                [benchmark, matrix[benchmark]["base"].ipc]
                + [speedups[benchmark][s] for s in FIGURE10_SCHEMES]
            )
        rows.append(
            ["mean", mean([matrix[b]["base"].ipc for b in benchmarks])]
            + [mean([speedups[b][s] for b in benchmarks]) for s in FIGURE10_SCHEMES]
        )
        result.tables.append(
            format_table(
                f"width {width} (IPC speedup over base)",
                ["benchmark", "baseIPC"] + list(FIGURE10_SCHEMES),
                rows,
            )
        )
        result.tables.append(
            bar_chart(
                f"width {width}: mean speedup by scheme (bar length = gain over base)",
                [(s, mean([speedups[b][s] for b in benchmarks]))
                 for s in FIGURE10_SCHEMES],
                baseline=1.0,
            )
        )
        result.data[width] = {"matrix": matrix, "speedups": speedups}
    return result


def figure10(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = INT_BENCHMARKS,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    """PRI speedups for the SPECint suite (Figure 10)."""
    return _scheme_speedup_figure(
        "Figure 10: PRI speed-up, SPEC2000 integer", benchmarks, spec, widths,
        traces, jobs=jobs, matrix_opts=matrix_opts,
    )


def figure12(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = FP_BENCHMARKS,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    """PRI speedups for the SPECfp suite (Figure 12)."""
    return _scheme_speedup_figure(
        "Figure 12: PRI speed-up, SPEC2000 floating point", benchmarks, spec,
        widths, traces, jobs=jobs, matrix_opts=matrix_opts,
    )


# ===================================================================
# Figure 11 — register file occupancy
# ===================================================================

def figure11(
    spec: Optional[RunSpec] = None,
    widths: Sequence[int] = _DEFAULT_WIDTHS,
    benchmarks: Sequence[str] = INT_BENCHMARKS,
    traces: Optional[TraceCache] = None,
    jobs: int = 1,
    matrix_opts: Optional[Dict] = None,
) -> FigureResult:
    """Average integer PRF occupancy for base / ER / PRI / PRI+ER."""
    spec = spec or RunSpec()
    schemes = ("base", "ER", "PRI-refcount+ckptcount", "PRI+ER")
    labels = ("base", "ER", "PRI", "PRI+ER")
    result = FigureResult("Figure 11: average integer PRF occupancy (registers)")
    for width in widths:
        matrix = run_matrix(benchmarks, schemes, width, spec, traces, jobs=jobs,
                            **(matrix_opts or {}))
        rows = []
        data = {}
        for benchmark in benchmarks:
            occs = [matrix[benchmark][s].avg_occupancy("int") for s in schemes]
            data[benchmark] = dict(zip(labels, occs))
            rows.append([benchmark] + occs)
        rows.append(
            ["mean"]
            + [mean([data[b][lab] for b in benchmarks]) for lab in labels]
        )
        result.tables.append(
            format_table(
                f"width {width}", ["benchmark"] + list(labels), rows, floatfmt="{:.1f}"
            )
        )
        result.tables.append(
            bar_chart(
                f"width {width}: mean occupancy by scheme",
                [(lab, mean([data[b][lab] for b in benchmarks]))
                 for lab in labels],
                floatfmt="{:.1f}",
            )
        )
        result.data[width] = data
    return result
