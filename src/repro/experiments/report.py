"""Plain-text rendering helpers for experiment output.

Every figure/table driver renders through these so the harness output is
uniform: a title line, a column header, aligned rows, and an optional
mean row — the same rows/series the paper's figures plot.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    floatfmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(floatfmt.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, sep, fmt_line(headers), sep]
    lines.extend(fmt_line(row) for row in rendered_rows)
    lines.append(sep)
    return "\n".join(lines)


def bar_chart(
    title: str,
    items: Sequence,
    width: int = 48,
    baseline: float = 0.0,
    floatfmt: str = "{:.3f}",
) -> str:
    """Render labelled horizontal bars (one per (label, value) pair).

    ``baseline`` subtracts a common offset before scaling, which makes
    speedup charts (baseline=1.0) show the *gain* as bar length, the way
    the paper's figures read.
    """
    items = [(str(label), float(value)) for label, value in items]
    if not items:
        return title
    span = max(abs(v - baseline) for _, v in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    lines = [title]
    for label, value in items:
        length = int(round(abs(value - baseline) / span * width))
        bar = "#" * length
        lines.append(
            f"{label.ljust(label_w)}  {floatfmt.format(value).rjust(8)}  {bar}"
        )
    return "\n".join(lines)


def stacked_bar_chart(
    title: str,
    items: Sequence,
    segment_labels: Sequence[str],
    width: int = 48,
) -> str:
    """Render stacked horizontal bars: each item is (label, [segments]).

    Used for the Figure 1/8 lifetime breakdowns; each segment gets a
    distinct fill character, keyed in a legend line.
    """
    fills = "#=+.@*"
    items = [(str(label), [float(s) for s in segments])
             for label, segments in items]
    if not items:
        return title
    span = max(sum(segments) for _, segments in items) or 1.0
    label_w = max(len(label) for label, _ in items)
    legend = "  ".join(
        f"{fills[i % len(fills)]}={name}" for i, name in enumerate(segment_labels)
    )
    lines = [title, f"  [{legend}]"]
    for label, segments in items:
        bar = "".join(
            fills[i % len(fills)] * int(round(s / span * width))
            for i, s in enumerate(segments)
        )
        total = sum(segments)
        lines.append(f"{label.ljust(label_w)}  {total:8.1f}  {bar}")
    return "\n".join(lines)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (the paper reports arithmetic-mean speedups)."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, for robustness checks alongside the paper's mean."""
    values = list(values)
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geomean requires positive values")
        product *= v
    return product ** (1.0 / len(values))
