"""Simulator performance tracking: record and compare throughput.

The figure sweeps and the paper's tables all sit on top of the same
pure-Python cycle loop, so simulator throughput *is* experiment
turnaround.  This package makes that throughput a first-class,
regression-gated artifact:

* :mod:`repro.perf.bench` — run the standard benchmark matrix (the
  same machine configurations ``benchmarks/test_simulator_throughput.py``
  times) and emit a schema-versioned ``BENCH_<date>.json`` through the
  :mod:`repro.store` envelope: cycles/sec and instrs/sec per config,
  peak RSS, Python version, git SHA.
* :mod:`repro.perf.compare` — diff two bench artifacts and fail (exit
  non-zero) when any config's throughput regressed past a threshold.
  CI runs this against the committed baseline on every pull request.

CLI::

    python -m repro.perf bench                     # write BENCH_<date>.json
    python -m repro.perf bench --out bench.json
    python -m repro.perf compare BASELINE CURRENT --threshold 15%
"""

from repro.perf.bench import (
    BENCH_KIND,
    BENCH_SCHEMA,
    default_bench_path,
    read_bench,
    run_bench,
    write_bench,
)
from repro.perf.compare import (
    BackendDimensionMissing,
    CompareResult,
    compare_payloads,
    parse_threshold,
    vector_ratio,
)

__all__ = [
    "BENCH_KIND",
    "BENCH_SCHEMA",
    "BackendDimensionMissing",
    "CompareResult",
    "compare_payloads",
    "default_bench_path",
    "parse_threshold",
    "read_bench",
    "run_bench",
    "vector_ratio",
    "write_bench",
]
