"""Performance-tracking CLI.

::

    python -m repro.perf bench                          # BENCH_<date>.json
    python -m repro.perf bench --out bench.json --rounds 7
    python -m repro.perf compare BASELINE CURRENT --threshold 15%
    python -m repro.perf latest-baseline benchmarks     # newest by date

Exit status: 0 on success / no regression, 1 on a regression or an
unreadable artifact, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.perf.bench import (
    DEFAULT_ROUNDS,
    default_bench_path,
    latest_baseline,
    read_bench,
    run_bench,
    write_bench,
)
from repro.perf.compare import (
    BackendDimensionMissing,
    compare_payloads,
    parse_threshold,
)
from repro.store import ArtifactError


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Record and compare simulator throughput benchmarks.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser(
        "bench", help="run the throughput matrix and write a bench artifact"
    )
    bench.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: BENCH_<date>.json in the CWD)",
    )
    bench.add_argument(
        "--rounds", type=int, default=DEFAULT_ROUNDS,
        help=f"timing rounds per config, best kept (default {DEFAULT_ROUNDS})",
    )
    bench.add_argument(
        "--min-ratio", type=float, default=None, metavar="X",
        help="fail (exit 1) unless every config's vector-backend speedup "
             "ratio is at least X (the CI vector gate)",
    )

    compare = sub.add_parser(
        "compare", help="diff two bench artifacts; non-zero on regression"
    )
    compare.add_argument("baseline", help="baseline BENCH_*.json")
    compare.add_argument("current", help="current BENCH_*.json")
    compare.add_argument(
        "--threshold", default="15%", metavar="PCT",
        help="allowed throughput drop, e.g. '15%%' or '0.15' (default 15%%)",
    )
    compare.add_argument(
        "--min-ratio", type=float, default=None, metavar="X",
        help="also gate the current artifact's vector-backend speedup "
             "ratio at X; a current artifact without the backend "
             "dimension is a typed error",
    )

    latest = sub.add_parser(
        "latest-baseline",
        help="print the newest readable BENCH_*.json by recorded date "
             "(replaces the 'ls | sort | tail -1' shell idiom)",
    )
    latest.add_argument(
        "directory", nargs="?", default="benchmarks",
        help="directory holding BENCH_*.json artifacts (default: "
             "benchmarks)",
    )

    args = parser.parse_args(argv)

    if args.command == "latest-baseline":
        path = latest_baseline(args.directory)
        if path is None:
            print(f"perf latest-baseline: no readable BENCH_*.json in "
                  f"{args.directory!r}", file=sys.stderr)
            return 1
        print(path)
        return 0

    if args.command == "bench":
        payload = run_bench(rounds=args.rounds)
        out = args.out or default_bench_path()
        write_bench(out, payload)
        print(f"wrote {out}")
        gate_failures = []
        for name, cfg in sorted(payload["configs"].items()):
            print(
                f"  {name}: {cfg['cycles_per_sec']:,.0f} cycles/s, "
                f"{cfg['instrs_per_sec']:,.0f} instrs/s "
                f"({cfg['seconds'] * 1000:.1f} ms best of "
                f"{payload['rounds']})"
            )
            vector = cfg.get("vector")
            if vector:
                print(
                    f"    vector: {len(vector['lanes'])} lanes in "
                    f"{vector['groups']} group(s), {vector['forks']} "
                    f"fork(s); {vector['cycles_per_sec']:,.0f} vs "
                    f"{vector['scalar_cycles_per_sec']:,.0f} cycles/s "
                    f"= {vector['speedup_ratio']:.1f}x"
                )
            if args.min_ratio is not None:
                if not vector or "speedup_ratio" not in vector:
                    print(f"    vector: MISSING (numpy unavailable?) — "
                          f"cannot gate at {args.min_ratio:.1f}x",
                          file=sys.stderr)
                    gate_failures.append(name)
                elif vector["speedup_ratio"] < args.min_ratio:
                    print(f"    vector: ratio below the "
                          f"{args.min_ratio:.1f}x gate", file=sys.stderr)
                    gate_failures.append(name)
        if gate_failures:
            print(f"perf bench: vector ratio gate FAILED for "
                  f"{', '.join(gate_failures)}", file=sys.stderr)
            return 1
        return 0

    try:
        limit = parse_threshold(args.threshold)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        baseline, _ = read_bench(args.baseline)
        current, _ = read_bench(args.current)
    except ArtifactError as exc:
        print(f"perf compare: unreadable bench artifact: {exc}",
              file=sys.stderr)
        return 1
    try:
        result = compare_payloads(baseline, current, threshold=limit,
                                  min_ratio=args.min_ratio)
    except BackendDimensionMissing as exc:
        print(f"perf compare: {exc}", file=sys.stderr)
        return 1
    for line in result.lines:
        print(line)
    print(result.summary())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
