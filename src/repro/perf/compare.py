"""Diff two bench artifacts and gate on throughput regressions.

``compare_payloads`` is the pure decision function (tested directly);
the CLI in :mod:`repro.perf.__main__` wraps it with artifact loading.
A regression is a drop in a config's ``cycles_per_sec`` beyond the
threshold *fraction*: with a 15% threshold, a config must fall to
strictly below 85% of the baseline's throughput to fail, so an exact
15% drop still passes and any improvement always passes.  A config
present in the baseline but missing from the current run fails — a
silently dropped measurement must not read as "no regression".

Schema-2 artifacts additionally carry a per-config **vector backend**
dimension (see :mod:`repro.perf.bench`); ``compare`` prints its
speedup ratio alongside each config and, with ``min_ratio`` set, gates
on it.  Gating against an artifact that predates the dimension raises
:class:`BackendDimensionMissing` — a typed, actionable error, not a
``KeyError`` from deep inside a dict walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

DEFAULT_THRESHOLD = 0.15

#: The throughput figure regressions are judged on.
METRIC = "cycles_per_sec"


class BackendDimensionMissing(ValueError):
    """A ratio gate (or ratio diff) needs the per-config ``vector``
    backend dimension, but the artifact predates it (schema 1, or a
    schema-2 run where numpy was unavailable).  Regenerate the artifact
    with ``python -m repro.perf bench`` in an environment with numpy."""

    def __init__(self, which: str, config: str) -> None:
        self.which = which
        self.config = config
        super().__init__(
            f"{which} bench artifact has no vector-backend dimension for "
            f"config {config!r} (schema-1 artifact, or benched without "
            f"numpy); regenerate it with `python -m repro.perf bench`"
        )


def vector_ratio(payload: Dict[str, Any], config: str, which: str) -> float:
    """The recorded vector-over-scalar speedup ratio for ``config``.
    Raises :class:`BackendDimensionMissing` when the artifact has none."""
    vector = payload.get("configs", {}).get(config, {}).get("vector")
    if not vector or "speedup_ratio" not in vector:
        raise BackendDimensionMissing(which, config)
    return vector["speedup_ratio"]


def parse_threshold(text: str) -> float:
    """Accept ``"15%"`` or a bare fraction like ``"0.15"``."""
    raw = text.strip()
    if raw.endswith("%"):
        value = float(raw[:-1]) / 100.0
    else:
        value = float(raw)
    if not 0.0 <= value < 1.0:
        raise ValueError(f"threshold must be in [0%, 100%), got {text!r}")
    return value


@dataclass
class CompareResult:
    """Outcome of one baseline-vs-current comparison."""

    threshold: float
    lines: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"perf compare: {verdict} "
            f"(threshold {self.threshold * 100:.1f}%, "
            f"{len(self.failures)} failing config(s))"
        )


def compare_payloads(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    min_ratio: Optional[float] = None,
) -> CompareResult:
    """Compare per-config throughput; populate human-readable lines.

    The vector backend's speedup ratio is shown per config whenever the
    current artifact carries it (informationally, with the baseline's
    ratio for context when both have one).  ``min_ratio`` turns it into
    a gate: every current config must have a ratio of at least
    ``min_ratio`` or the comparison fails, and a current config with
    *no* vector dimension raises :class:`BackendDimensionMissing`."""
    result = CompareResult(threshold=threshold)
    if baseline.get("trace") != current.get("trace"):
        result.failures.append("trace")
        result.lines.append(
            f"trace mismatch: baseline measured {baseline.get('trace')}, "
            f"current measured {current.get('trace')} — not comparable"
        )
        return result
    base_configs = baseline.get("configs", {})
    cur_configs = current.get("configs", {})
    for name, base in sorted(base_configs.items()):
        cur = cur_configs.get(name)
        if cur is None:
            result.failures.append(name)
            result.lines.append(
                f"{name}: missing from current run (baseline "
                f"{base[METRIC]:,.0f} {METRIC})"
            )
            continue
        base_tp = base[METRIC]
        cur_tp = cur[METRIC]
        if base_tp <= 0:
            change = 0.0
        else:
            change = (cur_tp - base_tp) / base_tp
        line = (
            f"{name}: {base_tp:,.0f} -> {cur_tp:,.0f} {METRIC} "
            f"({change:+.1%})"
        )
        # Strictly-beyond-threshold fails; an exact-threshold drop and
        # every improvement pass.
        if change < -threshold:
            result.failures.append(name)
            line += f"  REGRESSION (limit -{threshold:.1%})"
        cur_vec = cur.get("vector")
        if min_ratio is not None and (
            not cur_vec or "speedup_ratio" not in cur_vec
        ):
            raise BackendDimensionMissing("current", name)
        if cur_vec and "speedup_ratio" in cur_vec:
            ratio = cur_vec["speedup_ratio"]
            base_vec = base.get("vector") or {}
            if "speedup_ratio" in base_vec:
                line += (f", vector {base_vec['speedup_ratio']:.1f}x -> "
                         f"{ratio:.1f}x")
            else:
                line += f", vector {ratio:.1f}x (no baseline ratio)"
            if min_ratio is not None and ratio < min_ratio:
                result.failures.append(f"{name}:vector-ratio")
                line += (f"  RATIO BELOW GATE "
                         f"(need >= {min_ratio:.1f}x at "
                         f"{len(cur_vec.get('lanes', []))} lanes)")
        result.lines.append(line)
    for name in sorted(set(cur_configs) - set(base_configs)):
        result.lines.append(f"{name}: new config (no baseline) — informational")
    return result
