"""Run the throughput benchmark matrix and persist a bench artifact.

The measured configurations mirror ``benchmarks/test_simulator_throughput.py``
(the CI-visible throughput suite): the base Table 1 four-wide machine
and the PRI machine, on the same gzip trace.  Timing uses
best-of-``rounds`` wall clock including :class:`~repro.core.machine.Machine`
construction — exactly the shape the pytest benchmark times — so a
bench artifact and the benchmark suite agree on what "throughput"
means.

The artifact is a :mod:`repro.store` envelope (kind ``bench``, schema
:data:`BENCH_SCHEMA`), so corruption is detected at load time and
``python -m repro.store fsck`` can audit a tree of them.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import time
from typing import Any, Dict, Optional, Tuple

from repro.config import four_wide
from repro.core.machine import Machine
from repro.store import ArtifactMeta, read_json_artifact, write_json_artifact
from repro.workloads import generate_trace

#: Envelope kind and payload schema version for bench artifacts.  Bump
#: the schema whenever a field changes meaning; ``compare`` refuses to
#: diff artifacts whose schema it does not understand.
BENCH_KIND = "bench"
BENCH_SCHEMA = 1

#: The measured machine configurations, in report order.
BENCH_CONFIGS: Tuple[str, ...] = ("base", "pri")

#: The trace every config is timed on (mirrors the benchmark suite).
DEFAULT_TRACE = {"benchmark": "gzip", "length": 2000, "seed": 5, "warmup": 4000}

DEFAULT_ROUNDS = 5


def _config_for(name: str):
    if name == "base":
        return four_wide()
    if name == "pri":
        return four_wide().with_pri()
    raise ValueError(f"unknown bench config {name!r}")


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    if platform.system() == "Darwin":
        return usage // 1024
    return usage


def run_bench(
    rounds: int = DEFAULT_ROUNDS,
    trace_spec: Optional[Dict[str, Any]] = None,
    configs: Tuple[str, ...] = BENCH_CONFIGS,
) -> Dict[str, Any]:
    """Time each config and return a schema-``BENCH_SCHEMA`` payload.

    ``trace_spec`` overrides the measured trace (tests use a tiny one);
    the spec is recorded in the payload so ``compare`` can refuse to
    diff measurements of different workloads.
    """
    spec = dict(DEFAULT_TRACE, **(trace_spec or {}))
    trace = generate_trace(
        spec["benchmark"], spec["length"], seed=spec["seed"],
        warmup=spec["warmup"],
    )
    results: Dict[str, Dict[str, Any]] = {}
    for name in configs:
        cfg = _config_for(name)
        best = None
        stats = None
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            stats = Machine(cfg).run(trace)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        results[name] = {
            "seconds": best,
            "cycles": stats.cycles,
            "instrs": stats.committed,
            "cycles_per_sec": stats.cycles / best if best else 0.0,
            "instrs_per_sec": stats.committed / best if best else 0.0,
        }
    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": _git_sha(),
        "peak_rss_kb": _peak_rss_kb(),
        "rounds": rounds,
        "trace": spec,
        "configs": results,
    }


def default_bench_path(directory: str = ".") -> str:
    """``BENCH_<date>.json`` in ``directory`` (the conventional name the
    CI baseline lookup globs for)."""
    return os.path.join(
        directory, f"BENCH_{datetime.date.today().isoformat()}.json"
    )


def write_bench(path: str, payload: Dict[str, Any]) -> None:
    """Persist a bench payload as a checksummed store envelope."""
    write_json_artifact(path, BENCH_KIND, BENCH_SCHEMA, payload)


def read_bench(path: str) -> Tuple[Dict[str, Any], ArtifactMeta]:
    """Load and verify a bench artifact; raises the typed
    :class:`~repro.store.ArtifactError` family on damage or schema
    drift (no legacy plain-JSON fallback — bench files postdate the
    store)."""
    return read_json_artifact(
        path, BENCH_KIND, expected_schema=BENCH_SCHEMA, allow_legacy=False
    )
