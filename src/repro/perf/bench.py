"""Run the throughput benchmark matrix and persist a bench artifact.

The measured configurations mirror ``benchmarks/test_simulator_throughput.py``
(the CI-visible throughput suite): the base Table 1 four-wide machine
and the PRI machine, on the same gzip trace.  Timing uses
best-of-``rounds`` wall clock including :class:`~repro.core.machine.Machine`
construction — exactly the shape the pytest benchmark times — so a
bench artifact and the benchmark suite agree on what "throughput"
means.

Schema 2 adds a **backend dimension** per config: alongside the scalar
single-run timing, each config's Figure-9-style PRF sweep column
(:data:`BENCH_COLUMN_SIZES`, 8 lanes) is timed twice — once as eight
scalar runs, once as one batched column on :mod:`repro.vector` — and
the aggregate cycles/sec plus the ``speedup_ratio`` between them are
recorded, together with the honest cost accounting (coherence groups,
forks, machine-cycles actually simulated).  The vector dimension is
skipped, not faked, when numpy is unavailable.

The artifact is a :mod:`repro.store` envelope (kind ``bench``, schema
:data:`BENCH_SCHEMA`), so corruption is detected at load time and
``python -m repro.store fsck`` can audit a tree of them.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import time
from typing import Any, Dict, Optional, Tuple

from repro.config import four_wide
from repro.core.machine import Machine
from repro.store import (
    ArtifactError,
    ArtifactMeta,
    SchemaMismatch,
    read_json_artifact,
    write_json_artifact,
)
from repro.workloads import generate_trace

#: Envelope kind and payload schema version for bench artifacts.  Bump
#: the schema whenever a field changes meaning; ``compare`` refuses to
#: diff artifacts whose schema it does not understand.
BENCH_KIND = "bench"
BENCH_SCHEMA = 2

#: Schemas :func:`read_bench` understands.  Schema 1 artifacts (no
#: backend dimension) remain readable so the committed CI baseline keeps
#: working; ratio gating against one raises a typed error in ``compare``.
READABLE_SCHEMAS: Tuple[int, ...] = (1, 2)

#: The measured machine configurations, in report order.
BENCH_CONFIGS: Tuple[str, ...] = ("base", "pri")

#: The trace every config is timed on (mirrors the benchmark suite).
DEFAULT_TRACE = {"benchmark": "gzip", "length": 2000, "seed": 5, "warmup": 4000}

#: The 8-lane PRF sweep column the vector dimension measures: the upper
#: (saturated) half of a Figure-9 size sweep, where lanes rarely hit
#: register exhaustion and therefore share one machine.  The per-config
#: ``groups``/``forks`` counters record how much sharing actually
#: happened, so the ratio is auditable rather than assumed.
BENCH_COLUMN_SIZES: Tuple[int, ...] = (256, 288, 320, 352, 384, 416, 448, 480)

DEFAULT_ROUNDS = 5


def _config_for(name: str):
    if name == "base":
        return four_wide()
    if name == "pri":
        return four_wide().with_pri()
    raise ValueError(f"unknown bench config {name!r}")


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def _peak_rss_kb() -> Optional[int]:
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes; macOS reports bytes.
    if platform.system() == "Darwin":
        return usage // 1024
    return usage


def _bench_column(cfg, trace, rounds: int,
                  sizes: Tuple[int, ...]) -> Optional[Dict[str, Any]]:
    """Time ``cfg``'s PRF sweep column both ways; None without numpy.

    The scalar leg runs each size as its own machine (what a sweep
    would have cost before this backend existed); the vector leg runs
    the identical lanes as one batched column.  Both legs are
    best-of-``rounds`` including machine construction, and the aggregate
    throughput counts the *scalar-equivalent* cycles — the per-lane
    cycle totals — for both, so the two ``cycles_per_sec`` figures (and
    their ratio) measure the same work.
    """
    try:
        from repro.vector import Lane, run_column
    except ImportError:
        return None

    configs = [cfg.with_phys_regs(size) for size in sizes]
    scalar_best = None
    lane_cycles = 0
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        lane_cycles = sum(Machine(c).run(trace).cycles for c in configs)
        elapsed = time.perf_counter() - t0
        if scalar_best is None or elapsed < scalar_best:
            scalar_best = elapsed
    vector_best = None
    outcome = None
    for _ in range(max(1, rounds)):
        lanes = [Lane(key=str(size), config=c, trace=trace)
                 for size, c in zip(sizes, configs)]
        t0 = time.perf_counter()
        outcome = run_column(lanes)
        elapsed = time.perf_counter() - t0
        if vector_best is None or elapsed < vector_best:
            vector_best = elapsed
    return {
        "lanes": list(sizes),
        "groups": outcome.groups,
        "forks": outcome.forks,
        #: Scalar-equivalent work: summed per-lane cycle counts.
        "lane_cycles": lane_cycles,
        #: Machine-cycles the column actually simulated (sharing makes
        #: this smaller than lane_cycles; the gap is the speedup source).
        "cycles_simulated": outcome.cycles_simulated,
        "seconds": vector_best,
        "scalar_sweep_seconds": scalar_best,
        "cycles_per_sec": lane_cycles / vector_best if vector_best else 0.0,
        "scalar_cycles_per_sec": (
            lane_cycles / scalar_best if scalar_best else 0.0
        ),
        "speedup_ratio": (
            scalar_best / vector_best if vector_best else 0.0
        ),
    }


def run_bench(
    rounds: int = DEFAULT_ROUNDS,
    trace_spec: Optional[Dict[str, Any]] = None,
    configs: Tuple[str, ...] = BENCH_CONFIGS,
    column_sizes: Tuple[int, ...] = BENCH_COLUMN_SIZES,
) -> Dict[str, Any]:
    """Time each config and return a schema-``BENCH_SCHEMA`` payload.

    ``trace_spec`` overrides the measured trace (tests use a tiny one);
    the spec is recorded in the payload so ``compare`` can refuse to
    diff measurements of different workloads.  ``column_sizes`` sets the
    vector dimension's sweep column (empty tuple skips it).
    """
    spec = dict(DEFAULT_TRACE, **(trace_spec or {}))
    trace = generate_trace(
        spec["benchmark"], spec["length"], seed=spec["seed"],
        warmup=spec["warmup"],
    )
    results: Dict[str, Dict[str, Any]] = {}
    for name in configs:
        cfg = _config_for(name)
        best = None
        stats = None
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            stats = Machine(cfg).run(trace)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        results[name] = {
            "seconds": best,
            "cycles": stats.cycles,
            "instrs": stats.committed,
            "cycles_per_sec": stats.cycles / best if best else 0.0,
            "instrs_per_sec": stats.committed / best if best else 0.0,
        }
        if column_sizes:
            vector = _bench_column(cfg, trace, rounds, tuple(column_sizes))
            if vector is not None:
                results[name]["vector"] = vector
    return {
        "schema": BENCH_SCHEMA,
        "created": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": _git_sha(),
        "peak_rss_kb": _peak_rss_kb(),
        "rounds": rounds,
        "trace": spec,
        "configs": results,
    }


def default_bench_path(directory: str = ".") -> str:
    """``BENCH_<date>.json`` in ``directory`` (the conventional name the
    CI baseline lookup globs for)."""
    return os.path.join(
        directory, f"BENCH_{datetime.date.today().isoformat()}.json"
    )


def latest_baseline(directory: str) -> Optional[str]:
    """The newest readable ``BENCH_*.json`` in ``directory``, by the
    payload's recorded ``created`` date (filename as the tiebreak), or
    None when the directory holds no readable bench artifact.

    This replaces the shell's ``ls | sort | tail -1``, which silently
    picks the wrong baseline the moment two files share a date suffix
    variant or names stop sorting chronologically — the *payload* date
    is the authoritative recency, and unreadable artifacts are skipped
    instead of crashing the comparison."""
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return None
    best: Optional[Tuple[str, str, str]] = None
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(directory, name)
        try:
            payload, _ = read_bench(path)
        except (ArtifactError, OSError):
            continue  # damaged or foreign: never a baseline
        created = str(payload.get("created", ""))
        candidate = (created, name, path)
        if best is None or candidate > best:
            best = candidate
    return best[2] if best else None


def write_bench(path: str, payload: Dict[str, Any]) -> None:
    """Persist a bench payload as a checksummed store envelope."""
    write_json_artifact(path, BENCH_KIND, BENCH_SCHEMA, payload)


def read_bench(path: str) -> Tuple[Dict[str, Any], ArtifactMeta]:
    """Load and verify a bench artifact; raises the typed
    :class:`~repro.store.ArtifactError` family on damage or schema
    drift (no legacy plain-JSON fallback — bench files postdate the
    store).  Accepts every schema in :data:`READABLE_SCHEMAS` — a
    schema-1 baseline simply has no per-config ``vector`` dimension."""
    payload, meta = read_json_artifact(path, BENCH_KIND, allow_legacy=False)
    if meta.schema not in READABLE_SCHEMAS:
        raise SchemaMismatch(
            f"bench artifact {path} has schema {meta.schema}; this reader "
            f"understands {READABLE_SCHEMAS}",
            path=path, found=meta.schema, expected=BENCH_SCHEMA,
        )
    return payload, meta
