"""Figure 2: dynamic cumulative distribution of operand significance.

Shape targets quoted in the paper: ~10 bits cover about half of all
integer operands (worst case ~23%, best ~82%); about 77% of FP exponents
and about 54% of FP significands contain only zeroes or ones; roughly
half of FP operands are entirely zero.
"""

from conftest import BENCH_LENGTH, run_once

from repro.experiments.figures import figure2
from repro.experiments.report import mean


def test_figure2(benchmark):
    result = run_once(benchmark, figure2, length=max(4 * BENCH_LENGTH, 8000),
                      seed=1)
    print()
    print(result.render())

    int_cdfs = result.data["int"]
    at10 = {name: cdf[10] for name, cdf in int_cdfs.items()}
    assert 0.15 <= min(at10.values()) <= 0.35   # paper worst case 23%
    assert 0.70 <= max(at10.values()) <= 0.90   # paper best case 82%
    assert 0.40 <= mean(list(at10.values())) <= 0.65  # "approximately half"
    assert min(at10, key=at10.get) == "crafty"
    assert max(at10, key=at10.get) == "gzip"

    fp = result.data["fp"]
    exp_zero = mean([fp[n][0][0] for n in fp])
    sig_zero = mean([fp[n][1][0] for n in fp])
    assert 0.65 <= exp_zero <= 0.90  # paper: about 77%
    assert 0.40 <= sig_zero <= 0.70  # paper: about 54%
