"""Figure 8: register lifetime reduction from PRI and PRI+ER.

Shape targets: PRI cuts the average lifetime versus base; PRI+ER cuts it
at least as much; the reduction comes out of the last-read→release phase.
"""

from conftest import run_once

from repro.experiments.figures import figure8
from repro.experiments.report import mean


def test_figure8(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure8, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        data = result.data[width]
        base = mean([data[b]["base"].total for b in data])
        pri = mean([data[b]["PRI"].total for b in data])
        both = mean([data[b]["PRI+ER"].total for b in data])
        assert pri < base * 0.97
        assert both < base * 0.95
        assert both <= pri * 1.02

        base_dead = mean([data[b]["base"].last_read_to_release for b in data])
        both_dead = mean([data[b]["PRI+ER"].last_read_to_release for b in data])
        assert both_dead < base_dead
