"""Ablation: the WAR-recovery policy space, including the detect-and-
replay mechanism the paper mentions but declines to evaluate (Section
3.3: "we think that this is too costly").

Shape targets: ideal >= refcount (the paper's bounds); replay sits at or
below ideal and actually detects violations on register-starved runs;
refcount never lets a violation occur (the machine would raise).
"""

import dataclasses

from conftest import run_once

from repro.config import CheckpointPolicy, WarPolicy, four_wide
from repro.core.machine import simulate
from repro.experiments.report import format_table

_BENCHMARKS = ("gzip", "mcf")


def _tight(cfg):
    # Fewer spare registers make reallocation (hence WAR exposure) common.
    return dataclasses.replace(cfg, int_phys_regs=48, fp_phys_regs=48)


def _sweep(spec, traces):
    rows, results = [], {}
    for name in _BENCHMARKS:
        trace = traces.get(name, spec)
        base = simulate(_tight(four_wide()), trace)
        cells = [name]
        for policy in (WarPolicy.REFCOUNT, WarPolicy.IDEAL, WarPolicy.REPLAY):
            cfg = _tight(four_wide()).with_pri(policy, CheckpointPolicy.LAZY)
            stats = simulate(cfg, trace)
            results[(name, policy)] = stats
            cells.append(stats.ipc / base.ipc)
        rows.append(cells)
    table = format_table(
        "PRI speedup by WAR policy (4-wide, 48 registers)",
        ("benchmark", "refcount", "ideal", "replay"),
        rows,
    )
    return results, table


def test_war_policy_ablation(benchmark, spec, traces):
    results, table = run_once(benchmark, _sweep, spec, traces)
    print()
    print(table)

    for name in _BENCHMARKS:
        ref = results[(name, WarPolicy.REFCOUNT)]
        ideal = results[(name, WarPolicy.IDEAL)]
        replay = results[(name, WarPolicy.REPLAY)]
        assert ideal.ipc >= ref.ipc * 0.99, name
        # Replay never *beats* ideal beyond scheduling noise: both free
        # immediately, but replay pays per-violation penalties.
        assert replay.ipc <= ideal.ipc * 1.03, name
        assert ref.war_replays == 0
        assert ideal.war_replays == 0
    # Somewhere in the starved runs, replay actually fires.
    assert any(results[(n, WarPolicy.REPLAY)].war_replays > 0
               for n in _BENCHMARKS)
