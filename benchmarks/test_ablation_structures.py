"""Ablations over the machine structures PRI interacts with.

* **Checkpoint capacity** — PRI's ckptcount policy pins registers while
  shadow maps live; fewer checkpoints also stall rename at branches.
* **Scheduler size** — the paper contrasts a 32-entry scheduler (4-wide,
  "current generation") with a 512-entry one (8-wide, "future"): the
  small scheduler masks register-file pressure, which is why 4-wide
  speedups are smaller (Section 5.2's discussion of issue-queue limits).
"""

import dataclasses

from conftest import run_once

from repro.config import four_wide
from repro.core.machine import simulate
from repro.experiments.report import format_table

_BENCH = "gzip"


def _ckpt_sweep(spec, traces):
    trace = traces.get(_BENCH, spec)
    rows = []
    ipcs = {}
    for capacity in (4, 8, 16, 64):
        cfg = dataclasses.replace(four_wide(), max_checkpoints=capacity)
        stats = simulate(cfg.with_pri(), trace)
        ipcs[capacity] = stats.ipc
        rows.append((capacity, stats.ipc, stats.rename_stall_other))
    table = format_table(
        f"{_BENCH}: PRI vs checkpoint capacity (4-wide)",
        ("checkpoints", "IPC", "rename stalls"),
        rows,
    )
    return ipcs, table


def test_checkpoint_capacity(benchmark, spec, traces):
    ipcs, table = run_once(benchmark, _ckpt_sweep, spec, traces)
    print()
    print(table)
    # More checkpoints never hurt; the default (64) is the best point.
    assert ipcs[64] >= ipcs[4] * 0.995
    assert ipcs[64] >= ipcs[8] * 0.995


def _sched_sweep(spec, traces):
    trace = traces.get(_BENCH, spec)
    rows = []
    gains = {}
    for entries in (16, 32, 128, 512):
        cfg = dataclasses.replace(four_wide(), scheduler_entries=entries)
        base = simulate(cfg, trace)
        pri = simulate(cfg.with_pri(), trace)
        gains[entries] = pri.ipc / base.ipc
        rows.append((entries, base.ipc, pri.ipc, gains[entries]))
    table = format_table(
        f"{_BENCH}: PRI gain vs scheduler size (4-wide)",
        ("sched entries", "base IPC", "PRI IPC", "speedup"),
        rows,
    )
    return gains, table


def test_scheduler_size(benchmark, spec, traces):
    gains, table = run_once(benchmark, _sched_sweep, spec, traces)
    print()
    print(table)
    # Section 5.2: with the issue-queue limit removed, limited physical
    # registers become the bottleneck — PRI's gain grows with scheduler
    # size.
    assert gains[512] >= gains[16] - 0.01
    assert all(g >= 0.98 for g in gains.values())
