"""Figure 1: average physical register lifetime on the base machine,
split into allocate→write / write→last-read / last-read→release.

Shape target (the motivation for the whole paper): the third phase —
after the last read, waiting for the redefiner's commit — dominates the
average lifetime.
"""

from conftest import run_once

from repro.experiments.figures import figure1
from repro.experiments.report import mean


def test_figure1(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure1, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        breakdowns = result.data[width]
        dead = mean([b.last_read_to_release for b in breakdowns])
        alloc = mean([b.alloc_to_write for b in breakdowns])
        live = mean([b.write_to_last_read for b in breakdowns])
        total = dead + alloc + live
        # Phase 3 dominates (paper: clearly the largest of the three).
        assert dead > alloc
        assert dead > live
        assert dead / total > 0.4
        # Lifetimes are tens of cycles, not single digits (Figure 1's
        # axis runs to ~140 cycles).
        assert 15 < total < 400
