"""Shared configuration for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures (the same
rows/series the paper reports) and asserts its *shape* — who wins, by
roughly what factor — against the paper.  Absolute numbers come from the
synthetic-trace substrate and differ from the paper's SPEC2000 runs; see
EXPERIMENTS.md.

Scaling knobs (environment variables):

* ``REPRO_BENCH_LENGTH`` — timed instructions per run (default 2500).
* ``REPRO_BENCH_WARMUP`` — warmup instructions (default 20000; shorter
  warmups leave predictors and caches cold and depress every IPC).
* ``REPRO_BENCH_WIDTHS`` — comma-separated machine widths (default "4";
  set to "4,8" for the paper's full pair — roughly doubles runtime).

Every benchmark uses ``benchmark.pedantic(..., rounds=1, iterations=1)``:
a cycle-level simulation is deterministic, so repeated timing rounds
would only waste hours.
"""

import os

import pytest

from repro.experiments.runner import RunSpec, TraceCache


def _env_int(name, default):
    return int(os.environ.get(name, default))


BENCH_LENGTH = _env_int("REPRO_BENCH_LENGTH", 2500)
BENCH_WARMUP = _env_int("REPRO_BENCH_WARMUP", 20000)
BENCH_WIDTHS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_WIDTHS", "4").split(",")
)


@pytest.fixture(scope="session")
def spec():
    return RunSpec(length=BENCH_LENGTH, warmup=BENCH_WARMUP, seed=1)


@pytest.fixture(scope="session")
def traces():
    """One trace cache for the whole benchmark session: every scheme of a
    figure runs the same trace, as in the paper."""
    return TraceCache()


@pytest.fixture(scope="session")
def widths():
    return BENCH_WIDTHS


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
