"""Figure 11: average integer PRF occupancy for base / ER / PRI / PRI+ER.

Shape targets: every reclamation scheme lowers average occupancy below
the base machine; PRI+ER is lowest (or tied); occupancy stays within the
physically possible range (31 committed + in-flight <= 64).
"""

from conftest import run_once

from repro.experiments.figures import figure11
from repro.experiments.report import mean


def test_figure11(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure11, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        data = result.data[width]
        benchmarks = list(data)
        means = {
            label: mean([data[b][label] for b in benchmarks])
            for label in ("base", "ER", "PRI", "PRI+ER")
        }
        assert 31 <= means["base"] <= 64
        assert means["ER"] < means["base"]
        assert means["PRI"] < means["base"]
        assert means["PRI+ER"] <= min(means["ER"], means["PRI"]) * 1.02
