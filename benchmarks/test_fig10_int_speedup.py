"""Figure 10: PRI speedups across SPEC2000 integer.

Shape targets from the paper:

* PRI (refcount+ckptcount) clearly beats the baseline on average
  (paper: +7.3% at 4-wide, +14.8% at 8-wide);
* PRI beats prior-work ER on average (paper: by 3.7% / 9.2%);
* lazy checkpointing >= checkpoint counting; ideal payload update >=
  reference counting (each by a small margin);
* PRI+ER beats PRI alone;
* infinite registers bound everything from above.
"""

from conftest import run_once

from repro.experiments.figures import figure10
from repro.experiments.report import mean


def _scheme_means(data, benchmarks):
    speedups = data["speedups"]
    return {
        scheme: mean([speedups[b][scheme] for b in benchmarks])
        for scheme in next(iter(speedups.values()))
    }


def test_figure10(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure10, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        data = result.data[width]
        benchmarks = list(data["speedups"])
        means = _scheme_means(data, benchmarks)

        pri = means["PRI-refcount+ckptcount"]
        assert 1.02 < pri < 1.5, pri  # paper: 1.073 (4w) / 1.148 (8w)
        assert pri > means["ER"]
        assert means["PRI-refcount+lazy"] >= pri * 0.995
        assert means["PRI-ideal+ckptcount"] >= pri * 0.995
        assert means["PRI-ideal+lazy"] >= means["PRI-refcount+lazy"] * 0.995
        assert means["PRI+ER"] >= pri * 0.99
        for scheme, value in means.items():
            assert means["inf"] >= value * 0.99, scheme

        if width == 8:
            # The aggressive machine gains more from PRI (paper: 14.8%
            # vs 7.3%); compare against the 4-wide run when present.
            if 4 in result.data:
                means4 = _scheme_means(result.data[4],
                                       list(result.data[4]["speedups"]))
                assert means["PRI-refcount+ckptcount"] >= \
                    means4["PRI-refcount+ckptcount"] - 0.01
