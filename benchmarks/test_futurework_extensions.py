"""Future-work extensions from the paper's Section 6, as benchmarks.

* **Virtual-physical registers** (delayed allocation, refs [7]/[17]):
  how PRI interacts with allocating physical registers at issue rather
  than rename.
* **Load-immediate dead-register hints**: the compiler marks a register
  dead by writing a narrow immediate; the hardware inlines it at rename
  and never allocates a register.
"""

import dataclasses

from conftest import run_once

from repro.config import four_wide
from repro.core.machine import simulate
from repro.experiments.report import format_table

_BENCHMARKS = ("gzip", "twolf")


def _vp_sweep(spec, traces):
    rows, results = [], {}
    for name in _BENCHMARKS:
        trace = traces.get(name, spec)
        for regs in (40, 64):
            cfg = dataclasses.replace(four_wide(), int_phys_regs=regs,
                                      fp_phys_regs=regs)
            base = simulate(cfg, trace)
            vp = simulate(cfg.with_virtual_physical(), trace)
            pri = simulate(cfg.with_pri(), trace)
            both = simulate(cfg.with_virtual_physical().with_pri(), trace)
            results[(name, regs)] = {
                "base": base, "vp": vp, "pri": pri, "both": both,
            }
            rows.append((
                f"{name}/{regs}r",
                base.ipc,
                vp.ipc / base.ipc,
                pri.ipc / base.ipc,
                both.ipc / base.ipc,
            ))
    table = format_table(
        "virtual-physical allocation x PRI (4-wide)",
        ("bench/regs", "base IPC", "VP", "PRI", "VP+PRI"),
        rows,
    )
    return results, table


def test_virtual_physical(benchmark, spec, traces):
    results, table = run_once(benchmark, _vp_sweep, spec, traces)
    print()
    print(table)
    for name in _BENCHMARKS:
        starved = results[(name, 40)]
        # Delayed allocation pays off when registers are scarce...
        assert starved["vp"].ipc >= starved["base"].ipc * 0.99, name
        # ...and composes with PRI.
        assert starved["both"].ipc >= starved["pri"].ipc * 0.97, name
        # The allocate->write lifetime phase is what VP removes.
        assert (starved["vp"].lifetime("int").avg_alloc_to_write
                < starved["base"].lifetime("int").avg_alloc_to_write), name


def _li_sweep(spec, traces):
    rows, results = [], {}
    for name in _BENCHMARKS:
        trace = traces.get(name, spec)
        cfg = dataclasses.replace(four_wide(), int_phys_regs=48, fp_phys_regs=48)
        pri = simulate(cfg.with_pri(), trace)
        li = simulate(cfg.with_pri(inline_on_load_immediate=True), trace)
        results[name] = (pri, li)
        rows.append((name, pri.ipc, li.ipc, li.ipc / pri.ipc, li.inlined))
    table = format_table(
        "load-immediate dead-register hint (4-wide, 48 registers)",
        ("benchmark", "PRI IPC", "PRI+hint IPC", "ratio", "inlined"),
        rows,
    )
    return results, table


def test_load_immediate_hint(benchmark, spec, traces):
    results, table = run_once(benchmark, _li_sweep, spec, traces)
    print()
    print(table)
    for name, (pri, li) in results.items():
        assert li.ipc >= pri.ipc * 0.98, name
        assert li.inlined >= pri.inlined, name
