"""Figure 9: base-machine sensitivity to physical register file size
(PR in {40, 48, 56, 64, 72, 80, 96}, speedup normalized to PR=40).

Shape targets: speedup is monotone (non-decreasing, within noise) in the
register count, and the growth from 64 to 96 registers is modest compared
to the growth from 40 to 64 — the paper's justification for choosing 64.
"""

from conftest import run_once

from repro.config import PRF_SWEEP_SIZES
from repro.experiments.figures import figure9
from repro.experiments.report import mean


def test_figure9(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure9, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        data = result.data[width]
        benchmarks = list(data)
        means = {
            size: mean([data[b][size] for b in benchmarks])
            for size in PRF_SWEEP_SIZES
        }
        # Monotone on average (allow tiny noise between adjacent sizes).
        sizes = list(PRF_SWEEP_SIZES)
        for a, b in zip(sizes, sizes[1:]):
            assert means[b] >= means[a] - 0.02, (a, b)
        # Diminishing returns: 40->64 gains more than 64->96.
        assert means[64] - means[40] > means[96] - means[64]
        # There IS register pressure at 40 (the sweep is meaningful).
        assert means[96] > 1.05
