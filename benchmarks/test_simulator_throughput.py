"""Simulator performance: instructions simulated per second.

Unlike the figure benchmarks (which time a whole experiment once), this
measures the cycle-level core itself so performance regressions in the
simulator are visible.  Multiple rounds are meaningful here.
"""

import pytest

from repro.config import four_wide
from repro.core.machine import Machine
from repro.workloads import generate_trace


@pytest.fixture(scope="module")
def throughput_trace():
    return generate_trace("gzip", 2000, seed=5, warmup=4000)


def test_base_machine_throughput(benchmark, throughput_trace):
    def run():
        return Machine(four_wide()).run(throughput_trace)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.committed == 2000


def test_pri_machine_throughput(benchmark, throughput_trace):
    def run():
        return Machine(four_wide().with_pri()).run(throughput_trace)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.committed == 2000


def test_trace_generation_throughput(benchmark):
    def run():
        return generate_trace("gcc", 5000, seed=9, warmup=0)

    trace = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(trace) == 5000
