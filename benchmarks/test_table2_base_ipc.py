"""Table 2: base IPC for every benchmark.

Shape targets: `mcf`, `ammp`, `art`, `vpr_ref`, `galgel` are the
memory-bound stragglers (IPC well below 1); the streaming FP codes
(`applu`, `equake`, `lucas`, `swim`, `wupwise`, `mesa`) sit at the top;
and the suite-wide ordering tracks the paper's Table 2.
"""

from conftest import run_once

from repro.experiments.tables import table2
from repro.workloads import get_profile


def test_table2(benchmark, spec, traces, widths):
    result = run_once(benchmark, table2, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    ipc = {}
    for suite in ("integer", "floating point"):
        for row in result.data[suite]:
            ipc[row[0]] = row[1]  # first width's IPC

    # The memory-bound stragglers are at the bottom, as in the paper.
    for slow in ("mcf", "ammp", "art", "vpr_ref", "galgel"):
        assert ipc[slow] < 0.9, slow
    assert ipc["ammp"] < 0.25  # paper: 0.06, by far the slowest

    # The well-behaved codes clear IPC 1 on the 4-wide machine.
    for fast in ("bzip2", "gzip", "eon", "mesa", "wupwise", "equake"):
        assert ipc[fast] > 1.0, fast

    # Rank correlation with the paper's Table 2 (coarse: the order of
    # slow / medium / fast thirds must hold).
    names = sorted(ipc)
    paper = {n: get_profile(n).paper_ipc_4w for n in names}
    agreements = 0
    comparisons = 0
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            if abs(paper[a] - paper[b]) < 0.3:
                continue  # too close to demand ordering agreement
            comparisons += 1
            agreements += (ipc[a] < ipc[b]) == (paper[a] < paper[b])
    assert comparisons > 50
    assert agreements / comparisons > 0.80
