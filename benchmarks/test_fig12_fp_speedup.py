"""Figure 12: PRI speedups across SPEC2000 floating point.

Shape targets from the paper: the FP suite gains more than the integer
suite on average (paper: +12.0% vs +7.3% at 4-wide, +25.2% vs +14.8% at
8-wide); `ammp` gains essentially nothing under any scheme (even
infinite registers); the scheme ordering matches Figure 10's.
"""

from conftest import run_once

from repro.experiments.figures import figure12
from repro.experiments.report import mean


def test_figure12(benchmark, spec, traces, widths):
    result = run_once(benchmark, figure12, spec, widths=widths, traces=traces)
    print()
    print(result.render())

    for width in widths:
        data = result.data[width]
        speedups = data["speedups"]
        benchmarks = list(speedups)
        means = {
            scheme: mean([speedups[b][scheme] for b in benchmarks])
            for scheme in next(iter(speedups.values()))
        }
        pri = means["PRI-refcount+ckptcount"]
        assert pri > 1.02
        assert means["PRI+ER"] >= pri * 0.99
        assert means["inf"] >= pri

        # ammp: memory-serialised, no register-file sensitivity under any
        # realistic scheme (the paper's Figure 12 shows ~1.0 throughout).
        # Known deviation: at 8-wide our infinite-register bound recovers
        # some memory-level parallelism the paper's ammp lacks entirely,
        # so `inf` is excluded (see EXPERIMENTS.md).
        for scheme, value in speedups["ammp"].items():
            if scheme == "inf":
                continue
            assert value < 1.08, (scheme, value)
