"""Ablation: PRI's inlinable-width threshold.

The paper fixes the threshold at 7 bits (4-wide, 8-bit map entries) and
10 bits (8-wide, 11-bit entries).  This ablation sweeps the threshold to
show the design-space behaviour: more bits inline more values (coverage
follows the Figure 2 CDF) with diminishing performance returns — the
justification for "a slight increase in the map table entry size seems
reasonable".
"""

import pytest
from conftest import run_once

from repro.config import four_wide
from repro.core.machine import simulate
from repro.experiments.report import format_table

_THRESHOLDS = (1, 4, 7, 10, 13, 16)
_BENCHMARKS = ("gzip", "mcf", "twolf")


def _sweep(spec, traces):
    rows = []
    results = {}
    for name in _BENCHMARKS:
        trace = traces.get(name, spec)
        base = simulate(four_wide(), trace)
        cells = [name]
        for bits in _THRESHOLDS:
            cfg = four_wide().with_pri(int_width_bits=bits)
            stats = simulate(cfg, trace)
            speedup = stats.ipc / base.ipc
            results[(name, bits)] = (speedup, stats.inlined)
            cells.append(speedup)
        rows.append(cells)
    return results, format_table(
        "PRI speedup vs inlinable width threshold (4-wide)",
        ["benchmark"] + [f"{b}b" for b in _THRESHOLDS],
        rows,
    )


def test_width_threshold_ablation(benchmark, spec, traces):
    results, table = run_once(benchmark, _sweep, spec, traces)
    print()
    print(table)

    for name in _BENCHMARKS:
        # Coverage (inlined count) grows with the threshold.
        inlined = [results[(name, b)][1] for b in _THRESHOLDS]
        assert inlined == sorted(inlined), name
        # The paper's 7-bit point captures most of the benefit available
        # at 16 bits.
        gain7 = results[(name, 7)][0] - 1.0
        gain16 = results[(name, 16)][0] - 1.0
        if gain16 > 0.02:
            assert gain7 >= 0.5 * gain16, name
