#!/usr/bin/env python
"""Narrow-value analysis: what fraction of a workload can PRI inline?

Reproduces the paper's Figure 2 reasoning for any benchmark profile:
computes the dynamic operand-width CDF, shows the coverage at the two
map-entry sizes the paper considers (8-bit entries → 7 value bits,
11-bit entries → 10 value bits), and then verifies the prediction
against actual inlining rates measured in simulation.

Run:  python examples/narrow_value_analysis.py [benchmark ...]
"""

import sys

from repro import eight_wide, four_wide, generate_trace, simulate
from repro.analysis.significance import int_width_cdf, summarize_trace
from repro.experiments.report import format_table


def main() -> None:
    benchmarks = sys.argv[1:] or ["gzip", "gcc", "crafty", "mcf"]

    rows = []
    for name in benchmarks:
        trace = generate_trace(name, 6000, seed=1)
        cdf = int_width_cdf(trace)
        stats4 = simulate(four_wide().with_pri(), trace)
        stats8 = simulate(eight_wide().with_pri(), trace)
        measured4 = stats4.inlined / max(1, stats4.inline_attempts)
        rows.append((
            name,
            cdf[7],
            cdf[10],
            cdf[16],
            stats4.inline_attempts,
            stats4.inlined,
            measured4,
            stats8.inlined,
        ))

    print(format_table(
        "operand significance vs measured inlining",
        ("benchmark", "<=7 bits", "<=10 bits", "<=16 bits",
         "narrow@retire(4w)", "inlined(4w)", "WAW survival", "inlined(8w)"),
        rows,
    ))
    print()
    for name in benchmarks:
        print(summarize_trace(generate_trace(name, 4000, seed=2, warmup=0)))
    print("\n'<=7 bits' is what the 4-wide machine's 8-bit map entries can")
    print("hold; '<=10 bits' matches the 8-wide machine's 11-bit entries.")
    print("'WAW survival' is the fraction of narrow results whose late map")
    print("update passed the Figure 7 check (the rest were re-mapped first).")


if __name__ == "__main__":
    main()
