#!/usr/bin/env python
"""Quickstart: simulate one benchmark under every reclamation scheme.

Generates a synthetic `gzip`-profile trace, runs the paper's 4-wide
machine as: baseline, early release (ER), physical register inlining
(PRI), PRI+ER, and an unlimited-register upper bound — and prints IPC,
speedup, register occupancy, and lifetime for each.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro import four_wide, generate_trace, simulate
from repro.config import EFFECTIVELY_INFINITE_REGS
from repro.experiments.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    print(f"generating {length} instructions of the {benchmark!r} profile...")
    trace = generate_trace(benchmark, length, seed=1)
    stats = trace.stats()
    print(f"  {stats.length} ops: {stats.loads} loads, {stats.stores} stores, "
          f"{stats.branches} branches ({stats.taken_rate:.0%} taken)\n")

    base_cfg = four_wide()
    schemes = [
        ("base", base_cfg),
        ("ER", base_cfg.with_early_release()),
        ("PRI", base_cfg.with_pri()),
        ("PRI+ER", base_cfg.with_pri().with_early_release()),
        ("inf regs", base_cfg.with_phys_regs(EFFECTIVELY_INFINITE_REGS)),
    ]

    rows = []
    base_ipc = None
    for name, cfg in schemes:
        result = simulate(cfg, trace)
        if base_ipc is None:
            base_ipc = result.ipc
        life = result.lifetime("int")
        rows.append((
            name,
            result.ipc,
            result.ipc / base_ipc,
            result.avg_occupancy("int"),
            life.avg_total,
            result.inlined,
            result.pri_early_frees + result.er_early_frees,
        ))

    print(format_table(
        f"{benchmark} on the paper's 4-wide machine (64 INT + 64 FP registers)",
        ("scheme", "IPC", "speedup", "avg occ", "reg lifetime", "inlined",
         "early frees"),
        rows,
    ))
    print("\nPRI stores narrow results directly in the rename map and frees")
    print("their physical registers early; see DESIGN.md for the mechanism.")


if __name__ == "__main__":
    main()
