#!/usr/bin/env python
"""Register-pressure study: how many physical registers does PRI buy?

The paper's pitch is that PRI lets a machine with a *small* register
file perform like one with a larger file (avoiding multi-cycle register
file access).  This example sweeps the physical register count for the
base machine and for PRI, and reports the "effective registers" PRI
adds: the smallest base-machine file that matches each PRI point.

Run:  python examples/register_pressure_study.py [benchmark]
"""

import sys

from repro import four_wide, generate_trace, simulate
from repro.experiments.report import format_table

SIZES = (40, 48, 56, 64, 72, 80, 96)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "gzip"
    trace = generate_trace(benchmark, 5000, seed=1)

    base_ipc = {}
    pri_ipc = {}
    for size in SIZES:
        cfg = four_wide().with_phys_regs(size)
        base_ipc[size] = simulate(cfg, trace).ipc
        pri_ipc[size] = simulate(cfg.with_pri(), trace).ipc

    rows = []
    for size in SIZES:
        # Smallest base file that reaches this PRI point's IPC.
        effective = next(
            (s for s in SIZES if base_ipc[s] >= pri_ipc[size]), SIZES[-1]
        )
        rows.append((
            size,
            base_ipc[size],
            pri_ipc[size],
            pri_ipc[size] / base_ipc[size],
            effective,
            effective - size,
        ))

    print(format_table(
        f"{benchmark}: base vs PRI across register file sizes (4-wide)",
        ("registers", "base IPC", "PRI IPC", "speedup", "base equiv",
         "regs saved"),
        rows,
    ))
    print("\n'base equiv' = smallest conventional register file whose IPC")
    print("matches the PRI machine; the gap is the storage PRI recovers by")
    print("inlining narrow values into the rename map.")


if __name__ == "__main__":
    main()
