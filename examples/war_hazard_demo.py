#!/usr/bin/env python
"""The Figure 6 WAR hazard, step by step, under each recovery policy.

Builds (with :class:`repro.workloads.TraceBuilder`) the exact scenario of
the paper's Figure 6: a load misses to memory, delaying a dependent add;
the add's *other* input is narrow, gets inlined at retire, and its
physical register becomes a freeing candidate while the add still holds
a stale pointer.  We then run the scenario under:

* ``refcount`` — the consumer's reference pins the register (realistic);
* ``ideal``    — payload RAM is patched instantaneously (upper bound);
* ``replay``   — the register frees immediately and the violated
  consumer replays through the map (the mechanism the paper mentions
  but declines to build).

Run:  python examples/war_hazard_demo.py
"""

import dataclasses

from repro.config import CheckpointPolicy, WarPolicy, four_wide
from repro.core.machine import simulate
from repro.experiments.report import format_table
from repro.workloads import TraceBuilder

COLD = 0x4000_0000


def figure6_trace():
    b = TraceBuilder()
    b.alu(dest=1, value=COLD)                        # address
    b.load(dest=2, addr=COLD, value=0xABCDEF123, base=1)   # 1) load misses
    b.alu(dest=3, value=5)                           # 2) narrow producer
    b.alu(dest=5, value=0xABCDEF128, srcs=[2, 3])    # the delayed add
    for i in range(80):                              # 3) churn wanting regs
        b.alu(dest=6 + (i % 4), value=0x4000_0000 + i)
    return b.build("figure6")


def main() -> None:
    trace = figure6_trace()
    # Few spare registers, so the freed register is reallocated quickly —
    # step 3/4 of Figure 6.
    cfg = dataclasses.replace(four_wide(), int_phys_regs=40,
                              perfect_icache=True)

    rows = []
    for label, policy in (("refcount", WarPolicy.REFCOUNT),
                          ("ideal", WarPolicy.IDEAL),
                          ("replay", WarPolicy.REPLAY)):
        machine_cfg = cfg.with_pri(policy, CheckpointPolicy.LAZY)
        stats = simulate(machine_cfg, trace)
        rows.append((
            label,
            stats.cycles,
            stats.inlined,
            stats.pri_early_frees,
            stats.pri_frees_deferred,
            stats.war_replays,
        ))

    print(format_table(
        "Figure 6 scenario under each WAR policy (40 INT registers)",
        ("policy", "cycles", "inlined", "early frees", "frees deferred",
         "WAR replays"),
        rows,
        floatfmt="{:.0f}",
    ))
    print("\nrefcount defers the free until the delayed add reads its")
    print("operand; ideal patches the add's payload entry and frees at")
    print("once; replay frees at once and pays for it when the add finds")
    print("its register reallocated.  Every run is checked end-to-end: the")
    print("add always receives the value dataflow requires.")


if __name__ == "__main__":
    main()
