"""Shared fixtures for the test suite."""

import dataclasses

import pytest

from repro.config import eight_wide, four_wide
from repro.workloads import TraceBuilder, generate_trace


@pytest.fixture
def cfg4():
    """4-wide machine with a perfect I-cache: hand-built unit-test traces
    have no warmup prefix, so cold IL1 misses would swamp their timing."""
    return dataclasses.replace(four_wide(), perfect_icache=True)


@pytest.fixture
def cfg8():
    return dataclasses.replace(eight_wide(), perfect_icache=True)


@pytest.fixture
def cfg4_real():
    return four_wide()


@pytest.fixture
def cfg8_real():
    return eight_wide()


@pytest.fixture
def builder():
    return TraceBuilder()


@pytest.fixture(scope="session")
def gzip_trace():
    """A small real-profile trace, shared across tests for speed."""
    return generate_trace("gzip", 3000, seed=7, warmup=6000)


@pytest.fixture(scope="session")
def mcf_trace():
    return generate_trace("mcf", 2000, seed=7, warmup=4000)


@pytest.fixture(scope="session")
def swim_trace():
    return generate_trace("swim", 2500, seed=7, warmup=5000)
