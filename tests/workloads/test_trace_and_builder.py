"""Trace container and TraceBuilder tests."""

import pytest

from repro.isa.opcodes import OpClass, RegClass
from repro.workloads import Trace, TraceBuilder


class TestTrace:
    def test_basics(self):
        b = TraceBuilder()
        b.alu(dest=1, value=5)
        b.alu(dest=2, value=6, srcs=[1])
        trace = b.build("t")
        assert len(trace) == 2
        assert trace[0].dest == 1
        assert list(trace)[1].sources[0].expected_value == 5

    def test_stats(self):
        b = TraceBuilder()
        b.alu(dest=1, value=0)
        b.load(dest=2, addr=0x1000, value=3)
        b.store(data=2, addr=0x1008)
        b.branch(taken=True)
        b.branch(taken=False)
        stats = b.build().stats()
        assert stats.length == 5
        assert stats.loads == 1 and stats.stores == 1
        assert stats.branches == 2 and stats.taken_branches == 1
        assert stats.taken_rate == pytest.approx(0.5)
        assert stats.reg_writers == 2

    def test_default_initial_state(self):
        trace = Trace("x", [])
        assert trace.initial_int == [0] * 32
        assert trace.warmup_ops == []


class TestBuilder:
    def test_tracks_values(self):
        b = TraceBuilder()
        b.alu(dest=3, value=7)
        op = b.alu(dest=4, value=9, srcs=[3, 3])
        assert [s.expected_value for s in op.sources] == [7, 7]

    def test_initial_values(self):
        b = TraceBuilder(initial_int=[11] * 32)
        op = b.alu(dest=1, value=0, srcs=[5])
        assert op.sources[0].expected_value == 11
        trace = b.build()
        assert trace.initial_int[5] == 11

    def test_fp_ops(self):
        b = TraceBuilder()
        b.fp(dest=1, value=0)
        op = b.fp(dest=2, value=5, srcs=[1, 1])
        assert op.dest_class == RegClass.FP
        assert all(s.reg_class == RegClass.FP for s in op.sources)

    def test_branch_redirects_pc(self):
        b = TraceBuilder()
        br = b.branch(taken=True, target=0x400800)
        nxt = b.alu(dest=1, value=0)
        assert nxt.pc == 0x400800

    def test_untaken_branch_falls_through(self):
        b = TraceBuilder()
        br = b.branch(taken=False, target=0x400800)
        nxt = b.alu(dest=1, value=0)
        assert nxt.pc == br.pc + 4

    def test_call_and_ret(self):
        b = TraceBuilder()
        call = b.call(0x400900)
        assert call.op == OpClass.CALL and call.taken
        body = b.alu(dest=1, value=0)
        assert body.pc == 0x400900
        ret = b.ret(call.pc + 4)
        assert ret.op == OpClass.RETURN and ret.is_indirect

    def test_store_sources(self):
        b = TraceBuilder()
        b.alu(dest=1, value=3)
        b.alu(dest=2, value=0x1000)
        op = b.store(data=1, base=2, addr=0x1000)
        assert [s.expected_value for s in op.sources] == [3, 0x1000]

    def test_ops_validated(self):
        b = TraceBuilder()
        with pytest.raises(ValueError):
            b.alu(dest=1, value=0, srcs=[1, 2, 3])

    def test_nops(self):
        b = TraceBuilder()
        b.nops(5)
        assert len(b.ops) == 5
