"""Value-model tests: the generated values must land on the profile's
Figure 2 curves."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.values import (
    MAX_UINT64,
    fp_exponent_bits,
    fp_significand_bits,
    is_all_zeros_or_ones,
    significant_bits,
)
from repro.workloads.value_models import (
    WIDTH_GRID,
    FpValueModel,
    IntValueModel,
    WidthAnchors,
)


def _anchors(f10=0.5):
    from repro.workloads.profiles import int_anchors

    return int_anchors(f10)


class TestWidthAnchors:
    def test_validation(self):
        with pytest.raises(ValueError):
            WidthAnchors([0.5] * 3)
        with pytest.raises(ValueError):
            WidthAnchors([0.1] * len(WIDTH_GRID))  # last must be 1.0
        bad = [0.5, 0.4] + [1.0] * (len(WIDTH_GRID) - 2)
        with pytest.raises(ValueError):
            WidthAnchors(bad)  # non-monotone

    def test_fraction_interpolates(self):
        a = WidthAnchors((0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0))
        assert a.fraction_at_most(0) == 0.0
        assert a.fraction_at_most(1) == pytest.approx(0.1)
        assert a.fraction_at_most(64) == 1.0
        assert 0.1 < a.fraction_at_most(2) < 0.2

    def test_cdf_monotone(self):
        a = _anchors()
        previous = 0.0
        for width in range(1, 65):
            f = a.fraction_at_most(width)
            assert f >= previous - 1e-12
            previous = f

    def test_sample_within_grid(self):
        a = _anchors()
        rng = random.Random(0)
        for _ in range(500):
            assert 1 <= a.sample_width(rng) <= 64


class TestIntValueModel:
    @given(st.integers(min_value=1, max_value=64), st.integers(0, 1000))
    @settings(max_examples=60)
    def test_value_of_width_is_exact(self, width, seed):
        model = IntValueModel(_anchors())
        value = model.value_of_width(width, random.Random(seed))
        assert significant_bits(value) == width

    def test_sampled_widths_match_cdf(self):
        model = IntValueModel(_anchors(0.5))
        rng = random.Random(42)
        n = 4000
        narrow = sum(significant_bits(model.sample(rng)) <= 10 for _ in range(n))
        assert narrow / n == pytest.approx(0.5, abs=0.05)

    def test_positive_bias(self):
        model = IntValueModel(_anchors(), positive_bias=1.0)
        rng = random.Random(0)
        assert all(model.sample(rng) >= 0 for _ in range(200))


class TestFpValueModel:
    def test_zero_fraction(self):
        model = FpValueModel(zero_frac=0.5, ones_frac=0.02)
        rng = random.Random(1)
        n = 4000
        zeros = sum(model.sample(rng) == 0 for _ in range(n))
        assert zeros / n == pytest.approx(0.5, abs=0.05)

    def test_inlineable_fraction(self):
        model = FpValueModel(zero_frac=0.45, ones_frac=0.05)
        rng = random.Random(2)
        n = 4000
        inlineable = sum(
            is_all_zeros_or_ones(model.sample(rng)) for _ in range(n)
        )
        assert inlineable / n == pytest.approx(0.5, abs=0.05)

    def test_exponent_narrow_fraction(self):
        model = FpValueModel(zero_frac=0.4, ones_frac=0.02, exp_narrow_frac=0.77)
        rng = random.Random(3)
        n = 4000
        narrow = sum(fp_exponent_bits(model.sample(rng)) == 0 for _ in range(n))
        assert narrow / n == pytest.approx(0.77, abs=0.06)

    def test_significand_narrow_fraction(self):
        model = FpValueModel(zero_frac=0.4, ones_frac=0.02, sig_narrow_frac=0.54)
        rng = random.Random(4)
        n = 4000
        narrow = sum(fp_significand_bits(model.sample(rng)) == 0 for _ in range(n))
        assert narrow / n == pytest.approx(0.54, abs=0.06)

    def test_patterns_are_64_bit(self):
        model = FpValueModel()
        rng = random.Random(5)
        for _ in range(500):
            assert 0 <= model.sample(rng) <= MAX_UINT64

    def test_rejects_overfull_fractions(self):
        with pytest.raises(ValueError):
            FpValueModel(zero_frac=0.8, ones_frac=0.4)
