"""Benchmark profile registry tests."""

import pytest

from repro.workloads.profiles import (
    ALL_BENCHMARKS,
    SPEC_FP,
    SPEC_INT,
    get_profile,
    int_anchors,
)


def test_suite_sizes_match_table2():
    assert len(SPEC_INT) == 13  # incl. both vpr inputs, as in the paper
    assert len(SPEC_FP) == 14
    assert len(ALL_BENCHMARKS) == 27


def test_expected_names_present():
    names = {p.name for p in ALL_BENCHMARKS}
    for required in ("gzip", "gcc", "mcf", "vpr", "vpr_ref", "ammp", "swim",
                     "wupwise", "crafty", "eon"):
        assert required in names


def test_suites_labelled():
    assert all(p.suite == "int" for p in SPEC_INT)
    assert all(p.suite == "fp" for p in SPEC_FP)


def test_get_profile():
    assert get_profile("gzip").name == "gzip"
    with pytest.raises(KeyError):
        get_profile("doom3")


def test_mix_is_a_distribution():
    for p in ALL_BENCHMARKS:
        assert 0 < p.alu_frac < 1
        total = (p.alu_frac + p.load_frac + p.store_frac + p.branch_frac
                 + p.mul_frac + p.div_frac + p.fp_add_frac + p.fp_mul_frac
                 + p.fp_div_frac)
        assert total == pytest.approx(1.0)


def test_memory_fractions_sane():
    for p in ALL_BENCHMARKS:
        assert 0 <= p.l2_access_frac <= 1
        assert 0 <= p.mem_access_frac <= 1
        assert p.dl1_hit_frac >= 0


def test_paper_ipcs_recorded():
    gzip = get_profile("gzip")
    assert gzip.paper_ipc_4w == pytest.approx(1.51)
    assert gzip.paper_ipc_8w == pytest.approx(1.54)
    ammp = get_profile("ammp")
    assert ammp.paper_ipc_4w == pytest.approx(0.06)


def test_width_anchor_extremes_match_paper_range():
    """Figure 2: 23%-82% of integer operands fit in 10 bits; gzip is the
    narrow extreme and crafty the wide extreme."""
    gzip = get_profile("gzip").int_widths.fraction_at_most(10)
    crafty = get_profile("crafty").int_widths.fraction_at_most(10)
    assert gzip >= 0.75
    assert crafty <= 0.30
    for p in ALL_BENCHMARKS:
        f10 = p.int_widths.fraction_at_most(10)
        assert 0.15 <= f10 <= 0.85


def test_int_anchors_shape():
    a = int_anchors(0.5)
    assert a.fraction_at_most(10) == pytest.approx(0.5)
    assert a.fraction_at_most(7) == pytest.approx(0.425)
    assert a.fraction_at_most(64) == 1.0


def test_profiles_are_frozen():
    with pytest.raises(Exception):
        get_profile("gzip").load_frac = 0.9


def test_mcf_is_memory_bound_and_ammp_serial():
    mcf = get_profile("mcf")
    assert mcf.mem_access_frac >= 0.05
    assert mcf.pointer_chase_frac > 0.2
    ammp = get_profile("ammp")
    assert ammp.pointer_chase_frac > 0.8
    assert ammp.mem_access_frac >= 0.5
