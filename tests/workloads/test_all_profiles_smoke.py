"""Every benchmark profile must generate and simulate cleanly.

A thin but broad net: each of the 27 profiles exercises its own mix of
generator features (pointer chasing, FP traffic, calls, loop branches,
engineered miss classes), and the machine's dataflow checker validates
the whole path.
"""

import pytest

from repro.config import four_wide
from repro.core.machine import Machine, simulate
from repro.workloads import ALL_BENCHMARKS, generate_trace


@pytest.mark.parametrize("profile", ALL_BENCHMARKS, ids=lambda p: p.name)
def test_profile_generates_and_simulates(profile):
    trace = generate_trace(profile.name, 400, seed=13, warmup=800)
    stats = simulate(four_wide().with_pri().with_early_release(), trace)
    assert stats.committed == 400
    assert stats.ipc > 0


def test_machine_is_single_run(gzip_trace):
    m = Machine(four_wide())
    m.run(gzip_trace, max_insts=50)
    with pytest.raises(Exception):
        m.run(gzip_trace)
