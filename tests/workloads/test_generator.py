"""Trace generator tests: determinism, dataflow consistency, and the
statistical properties the simulator relies on."""

import pytest

from repro.isa.opcodes import OpClass, RegClass
from repro.isa.registers import INT_ZERO_REG
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def gzip_trace():
    return generate_trace("gzip", 5000, seed=3, warmup=1000)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("gcc", 500, seed=9, warmup=0)
        b = generate_trace("gcc", 500, seed=9, warmup=0)
        for x, y in zip(a, b):
            assert (x.op, x.pc, x.dest, x.result, x.mem_addr, x.taken) == (
                y.op, y.pc, y.dest, y.result, y.mem_addr, y.taken
            )

    def test_different_seeds_differ(self):
        a = generate_trace("gcc", 500, seed=1, warmup=0)
        b = generate_trace("gcc", 500, seed=2, warmup=0)
        assert any(x.result != y.result for x, y in zip(a, b))

    def test_reproducible_across_generators(self):
        p = get_profile("swim")
        a = TraceGenerator(p, seed=5).generate(300)
        b = TraceGenerator(p, seed=5).generate(300)
        assert [op.result for op in a] == [op.result for op in b]


class TestDataflowConsistency:
    def _check(self, trace):
        """Replay architectural state; every source must match."""
        int_values = list(trace.initial_int)
        fp_values = list(trace.initial_fp)
        for op in trace:
            for src in op.sources:
                values = int_values if src.reg_class == RegClass.INT else fp_values
                assert values[src.index] == src.expected_value, op
            if op.dest is not None:
                if op.dest_class == RegClass.INT:
                    int_values[op.dest] = op.result
                else:
                    fp_values[op.dest] = op.result

    def test_int_benchmark(self, gzip_trace):
        self._check(gzip_trace)

    def test_fp_benchmark(self):
        self._check(generate_trace("swim", 3000, seed=4, warmup=500))

    def test_pointer_chaser(self):
        self._check(generate_trace("mcf", 3000, seed=4, warmup=500))

    def test_all_ops_validate(self, gzip_trace):
        for op in gzip_trace:
            op.validate()

    def test_zero_register_never_written(self, gzip_trace):
        for op in gzip_trace:
            if op.dest is not None and op.dest_class == RegClass.INT:
                assert op.dest != INT_ZERO_REG


class TestControlFlow:
    def test_branch_sites_have_stable_pcs(self):
        trace = generate_trace("gzip", 8000, seed=5, warmup=0)
        outcomes = {}
        for op in trace:
            if op.op == OpClass.BRANCH:
                outcomes.setdefault(op.pc, set()).add(op.target)
        # Every conditional branch site has exactly one target.
        assert all(len(targets) == 1 for targets in outcomes.values())
        # And sites recur (predictors can train).
        counts = {}
        for op in trace:
            if op.op == OpClass.BRANCH:
                counts[op.pc] = counts.get(op.pc, 0) + 1
        assert max(counts.values()) > 20

    def test_calls_and_returns_nest(self):
        trace = generate_trace("perlbmk", 8000, seed=5, warmup=0)
        stack = []
        for op in trace:
            if op.op == OpClass.CALL:
                stack.append(op.pc + 4)
            elif op.op == OpClass.RETURN:
                if stack:  # returns beyond generated depth never occur
                    assert op.target == stack.pop()
        calls = sum(op.op == OpClass.CALL for op in trace)
        rets = sum(op.op == OpClass.RETURN for op in trace)
        assert calls > 0 and rets > 0

    def test_pcs_inside_footprint(self):
        profile = get_profile("gzip")
        trace = generate_trace("gzip", 3000, seed=5, warmup=0)
        lo = 0x0040_0000
        hi = lo + max(profile.code_footprint, 4096) + 4096
        assert all(lo <= op.pc < hi for op in trace)


class TestMix:
    def test_matches_profile(self):
        profile = get_profile("gzip")
        trace = generate_trace("gzip", 20000, seed=6, warmup=0)
        stats = trace.stats()
        n = stats.length
        assert stats.loads / n == pytest.approx(profile.load_frac, abs=0.02)
        assert stats.stores / n == pytest.approx(profile.store_frac, abs=0.02)
        assert stats.branches / n == pytest.approx(profile.branch_frac, abs=0.02)

    def test_fp_benchmark_has_fp_ops(self):
        trace = generate_trace("swim", 5000, seed=6, warmup=0)
        mix = trace.stats().mix
        assert mix[OpClass.FP_ADD] > 0
        assert mix[OpClass.FP_LOAD] > 0


class TestMemoryClasses:
    def test_address_classes(self):
        profile = get_profile("mcf")
        trace = generate_trace("mcf", 20000, seed=6, warmup=0)
        hot = l2 = mem = 0
        for op in trace:
            if op.mem_addr is None:
                continue
            if op.mem_addr < 0x2000_0000:
                hot += 1
            elif op.mem_addr < 0x4000_0000:
                l2 += 1
            else:
                mem += 1
        total = hot + l2 + mem
        assert mem / total == pytest.approx(profile.mem_access_frac, abs=0.02)
        assert l2 / total == pytest.approx(profile.l2_access_frac, abs=0.02)

    def test_mem_addresses_never_repeat(self):
        trace = generate_trace("mcf", 20000, seed=6, warmup=0)
        cold = [op.mem_addr for op in trace
                if op.mem_addr is not None and op.mem_addr >= 0x4000_0000]
        assert len(cold) == len(set(cold))


class TestWarmup:
    def test_warmup_ops_attached(self):
        trace = generate_trace("gzip", 100, seed=1, warmup=250)
        assert len(trace.warmup_ops) == 250
        assert len(trace) == 100

    def test_initial_values_snapshot_after_warmup(self):
        """The timed region's first reads must match the recorded initial
        architectural state (i.e. the snapshot is taken post-warmup)."""
        trace = generate_trace("gzip", 200, seed=1, warmup=300)
        int_values = list(trace.initial_int)
        first = trace[0]
        for src in first.sources:
            if src.reg_class == RegClass.INT:
                assert int_values[src.index] == src.expected_value
