"""Trace save/load round-trip tests."""

import pytest

from repro.config import four_wide
from repro.core.machine import simulate
from repro.workloads import (
    TraceBuilder,
    generate_trace,
    load_trace,
    save_trace,
)


def _ops_equal(a, b):
    return (
        a.op == b.op and a.pc == b.pc and a.dest == b.dest
        and a.dest_class == b.dest_class and a.result == b.result
        and a.mem_addr == b.mem_addr and a.taken == b.taken
        and a.target == b.target and a.is_indirect == b.is_indirect
        and len(a.sources) == len(b.sources)
        and all(
            x.reg_class == y.reg_class and x.index == y.index
            and x.expected_value == y.expected_value
            for x, y in zip(a.sources, b.sources)
        )
    )


class TestRoundTrip:
    def test_generated_trace(self, tmp_path):
        trace = generate_trace("gzip", 300, seed=9, warmup=150)
        path = str(tmp_path / "gzip.trace")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "gzip"
        assert loaded.seed == 9
        assert len(loaded) == 300
        assert len(loaded.warmup_ops) == 150
        assert loaded.initial_int == trace.initial_int
        assert loaded.initial_fp == trace.initial_fp
        assert all(_ops_equal(a, b) for a, b in zip(trace, loaded))
        assert all(
            _ops_equal(a, b)
            for a, b in zip(trace.warmup_ops, loaded.warmup_ops)
        )

    def test_simulation_identical(self, tmp_path):
        trace = generate_trace("mcf", 400, seed=9, warmup=300)
        path = str(tmp_path / "mcf.trace")
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(four_wide().with_pri(), trace)
        b = simulate(four_wide().with_pri(), loaded)
        assert (a.cycles, a.committed, a.inlined) == (b.cycles, b.committed,
                                                      b.inlined)

    def test_negative_values_survive(self, tmp_path):
        b = TraceBuilder()
        b.alu(dest=1, value=-7)
        b.alu(dest=2, value=-(1 << 62), srcs=[1])
        path = str(tmp_path / "neg.trace")
        save_trace(b.build("neg"), path)
        loaded = load_trace(path)
        assert loaded[0].result == -7
        assert loaded[1].sources[0].expected_value == -7
        assert loaded[1].result == -(1 << 62)

    def test_fp_trace(self, tmp_path):
        trace = generate_trace("swim", 200, seed=9, warmup=0)
        path = str(tmp_path / "swim.trace")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert all(_ops_equal(a, b) for a, b in zip(trace, loaded))


class TestErrors:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello world\n")
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_rejects_corrupt_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("trace-v1 x 1 0 0\nX 0\nF 0\n")
        with pytest.raises(ValueError):
            load_trace(str(path))
