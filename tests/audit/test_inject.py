"""Fault injection: every corruption class must be caught, with a
structured diagnostic naming the offending state."""

import pytest

from repro.audit import FAULTS, AuditError, FaultNotCaught, run_with_fault
from repro.audit.inject import Fault
from repro.config import CheckpointPolicy, WarPolicy
from repro.experiments.runner import SCHEMES


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_fault_caught_on_base(cfg4, gzip_trace, name):
    fault = FAULTS[name]
    # Faults that corrupt refcount/checkpoint state need a scheme that
    # maintains it; the pure baseline machine keeps no refcounts.
    needs_refs = name in (
        "refcount-leak", "refcount-drop", "war-release", "stale-checkpoint",
    )
    config = (
        SCHEMES["PRI+ER"](cfg4)
        if needs_refs
        else SCHEMES["base"](cfg4)
    )
    err = run_with_fault(config, gzip_trace, fault)
    assert isinstance(err, AuditError)
    diag = err.diagnostic
    assert diag["check"] in fault.expect
    assert diag["cycle"] >= 0
    assert diag["scheme"]
    assert isinstance(diag["inflight"], tuple) and len(diag["inflight"]) == 3
    assert diag["reason"]


def test_fault_caught_on_er(cfg4, gzip_trace):
    config = SCHEMES["ER"](cfg4)
    err = run_with_fault(config, gzip_trace, FAULTS["double-free"])
    assert err.diagnostic["check"] == "free-list"
    assert err.diagnostic["scheme"] == "ER"


def test_fault_caught_on_pri_lazy(cfg4, gzip_trace):
    config = cfg4.with_pri(WarPolicy.REFCOUNT, CheckpointPolicy.LAZY)
    err = run_with_fault(config, gzip_trace, FAULTS["alloc-leak"])
    assert err.diagnostic["check"] in ("conservation", "prf-leak")


def test_diagnostic_names_offender(cfg4, gzip_trace):
    err = run_with_fault(
        SCHEMES["base"](cfg4), gzip_trace, FAULTS["map-corrupt"]
    )
    assert err.diagnostic["preg"] is not None
    assert err.diagnostic["reg_class"] == "int"
    # the message embeds the structured fields for bare-log consumers
    assert "map" in str(err)


def test_escaped_fault_raises_fault_not_caught(cfg4, gzip_trace):
    """A no-op 'fault' must be reported as escaped, not silently pass."""
    noop = Fault(
        "noop", "corrupts nothing", ("free-list",), lambda m: "did nothing"
    )
    with pytest.raises(FaultNotCaught, match="escaped the auditor"):
        run_with_fault(SCHEMES["base"](cfg4), gzip_trace, noop)


def test_inapplicable_fault_raises(cfg4, gzip_trace):
    never = Fault("never", "never applicable", ("free-list",), lambda m: None)
    with pytest.raises(FaultNotCaught, match="never became applicable"):
        run_with_fault(SCHEMES["base"](cfg4), gzip_trace, never)
