"""Clean-run auditing: every scheme passes aggressive invariant audits."""

import dataclasses

import pytest

from repro.audit import InvariantAuditor, scheme_label
from repro.config import CheckpointPolicy, WarPolicy
from repro.core.machine import Machine, SimulationError, simulate
from repro.experiments.runner import FIGURE10_SCHEMES, SCHEMES


def _audited(config):
    """Aggressive settings: audit every 16 cycles and at every commit."""
    return config.with_audit(interval=16, check_commits=True)


@pytest.mark.parametrize("scheme", ("base",) + FIGURE10_SCHEMES)
def test_figure10_schemes_audit_clean(cfg4, gzip_trace, scheme):
    config = _audited(SCHEMES[scheme](cfg4))
    stats = simulate(config, gzip_trace)
    assert stats.committed == len(gzip_trace)
    assert stats.audits > 0


def test_vp_audits_clean(cfg4, gzip_trace):
    config = _audited(cfg4.with_virtual_physical())
    stats = simulate(config, gzip_trace)
    assert stats.committed == len(gzip_trace)
    assert stats.audits > 0


def test_vp_pri_audits_clean(cfg4, gzip_trace):
    config = _audited(cfg4.with_virtual_physical().with_pri(
        WarPolicy.REFCOUNT, CheckpointPolicy.CKPTCOUNT))
    stats = simulate(config, gzip_trace)
    assert stats.committed == len(gzip_trace)


def test_replay_policy_audits_clean(cfg4, gzip_trace):
    config = _audited(cfg4.with_pri(WarPolicy.REPLAY, CheckpointPolicy.CKPTCOUNT))
    stats = simulate(config, gzip_trace)
    assert stats.committed == len(gzip_trace)


def test_final_audit_runs_without_interval(cfg4, gzip_trace):
    """final=True alone still audits once at end of run."""
    config = cfg4.with_audit(interval=0, check_commits=False)
    stats = simulate(config, gzip_trace)
    assert stats.audits == 1


def test_audit_off_by_default(cfg4, gzip_trace):
    stats = simulate(cfg4, gzip_trace)
    assert stats.audits == 0


def test_commit_boundary_audits(cfg4, gzip_trace):
    """check_commits audits far more often than the interval alone."""
    sparse = simulate(cfg4.with_audit(interval=10_000), gzip_trace)
    dense = simulate(
        cfg4.with_audit(interval=10_000, check_commits=True), gzip_trace
    )
    assert dense.audits > sparse.audits


def test_scheme_labels():
    from repro.config import four_wide

    plain = four_wide()
    assert scheme_label(SCHEMES["base"](plain)) == "base"
    assert scheme_label(SCHEMES["ER"](plain)) == "ER"
    assert "PRI" in scheme_label(SCHEMES["PRI+ER"](plain))
    assert scheme_label(plain.with_virtual_physical()).startswith("VP")


def test_auditor_counts_in_stats(cfg4, gzip_trace):
    config = cfg4.with_audit(interval=64)
    machine = Machine(config)
    assert isinstance(machine.auditor, InvariantAuditor)
    stats = machine.run(gzip_trace)
    assert stats.audits >= stats.cycles // 64


def test_deadlock_watchdog_fires(cfg4, gzip_trace):
    """Starving the free list mid-run stalls rename forever; the
    no-commit watchdog must convert the hang into a SimulationError."""
    from repro.isa.opcodes import RegClass

    config = dataclasses.replace(cfg4, deadlock_cycles=500)
    machine = Machine(config)

    def steal_all_free_regs(m):
        if m.now < 100:
            return
        rf = m.rf[RegClass.INT]
        while rf.allocate(lreg=0, owner_seq=-3, cycle=m.now) is not None:
            pass

    machine.add_cycle_hook(steal_all_free_regs)
    with pytest.raises(SimulationError, match="deadlock: no commit since"):
        machine.run(gzip_trace)
    assert machine.now < 5000  # fired promptly, not at max_cycles
