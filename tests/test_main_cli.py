"""Top-level CLI tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "ammp" in out


def test_requires_benchmark():
    with pytest.raises(SystemExit):
        main([])


def test_basic_run(capsys):
    code = main(["gzip", "--length", "300", "--warmup", "600"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ipc=" in out
    assert "register lifetime" in out


def test_pri_run_reports_inlining(capsys):
    code = main(["gzip", "--scheme", "PRI-refcount+ckptcount",
                 "--length", "400", "--warmup", "800"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PRI:" in out and "inlined" in out


def test_regs_override(capsys):
    code = main(["gzip", "--length", "200", "--warmup", "400",
                 "--regs", "96"])
    assert code == 0
    assert "96 INT" in capsys.readouterr().out


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["gzip", "--scheme", "magic"])
