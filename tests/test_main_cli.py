"""Top-level CLI tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "gzip" in out and "ammp" in out


def test_requires_benchmark():
    with pytest.raises(SystemExit):
        main([])


def test_basic_run(capsys):
    code = main(["gzip", "--length", "300", "--warmup", "600"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ipc=" in out
    assert "register lifetime" in out


def test_pri_run_reports_inlining(capsys):
    code = main(["gzip", "--scheme", "PRI-refcount+ckptcount",
                 "--length", "400", "--warmup", "800"])
    assert code == 0
    out = capsys.readouterr().out
    assert "PRI:" in out and "inlined" in out


def test_regs_override(capsys):
    code = main(["gzip", "--length", "200", "--warmup", "400",
                 "--regs", "96"])
    assert code == 0
    assert "96 INT" in capsys.readouterr().out


def test_unknown_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["gzip", "--scheme", "magic"])


def test_oracle_run_reports_oracle_stats(capsys):
    code = main(["gzip", "--length", "300", "--warmup", "600", "--oracle"])
    assert code == 0
    out = capsys.readouterr().out
    assert "oracle:" in out and "all clean" in out
    assert "300 commits compared" in out


def test_no_oracle_is_default(capsys):
    code = main(["gzip", "--length", "300", "--warmup", "600",
                 "--no-oracle"])
    assert code == 0
    assert "oracle:" not in capsys.readouterr().out


def test_checkpointed_run(tmp_path, capsys):
    import os

    args = ["gzip", "--length", "300", "--warmup", "600",
            "--checkpoint-every", "200", "--checkpoint-dir", str(tmp_path)]
    assert main(args) == 0
    checkpointed = capsys.readouterr().out
    assert "ipc=" in checkpointed
    assert not os.listdir(str(tmp_path)), "completed run left a checkpoint"
    # identical to the plain run: checkpointing must not perturb results
    assert main(["gzip", "--length", "300", "--warmup", "600"]) == 0
    plain = capsys.readouterr().out
    line = next(l for l in checkpointed.splitlines() if "ipc=" in l)
    assert line in plain
