"""SIGKILL the lease service mid-sweep, restart it, finish the sweep.

The service's whole recovery story — cells, leases, results, and the
fencing-token counter rebuilt from disk (``fence.json``), idempotent
RPCs riding out the lost rid cache — exercised the honest way: a real
``python -m repro.farm serve`` process killed with SIGKILL (no atexit,
no flush, no goodbye) between RPCs and restarted on the same root and
port.  The broker and workers must retry through the outage, fencing
tokens must never regress (a reused token would let a zombie write),
and the folded matrix must land bit-identical with zero duplicates.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.core.stats import SimStats
from repro.experiments import RunSpec, run_matrix
from repro.farm import FarmSpec
from repro.farm.lease import FarmPaths

_SPEC = RunSpec(length=300, warmup=600, seed=3)
_PRI = "PRI-refcount+ckptcount"
_BENCH = ("gcc", "mesa")
_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep))
    return env


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve(root: str, port: int) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.farm", "serve", root,
         "--host", "127.0.0.1", "--port", str(port)],
        env=_env(), stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _get(url: str, path: str, timeout: float = 2.0) -> dict:
    with urllib.request.urlopen(url + path, timeout=timeout) as response:
        return json.loads(response.read())


def _wait_ping(url: str, deadline: float = 30.0) -> dict:
    end = time.time() + deadline
    while time.time() < end:
        try:
            return _get(url, "/ping")
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"lease service at {url} never came up")


def _kill_and_restart(proc, root, port, url, state):
    """Wait for a live lease (a worker mid-cell), snapshot the fence,
    SIGKILL the service, restart it on the same root and port."""
    end = time.time() + 120
    while time.time() < end:
        try:
            if _get(url, "/leases")["leases"]:
                break
        except OSError:
            pass
        time.sleep(0.01)
    else:
        return  # sweep finished before a lease was ever observed
    state["prekill_fence"] = _get(url, "/ping")["fence"]
    proc.kill()  # SIGKILL: no shutdown path runs
    proc.wait()
    state["killed"] = True
    time.sleep(0.2)  # let in-flight RPCs fail, workers start retrying
    state["restarted"] = _serve(root, port)
    _wait_ping(url)


@pytest.fixture
def plain_small():
    return run_matrix(_BENCH, ("base", _PRI), 4, _SPEC)


def test_sigkill_restart_mid_sweep_is_exactly_once(tmp_path, plain_small):
    root = str(tmp_path / "server-root")
    FarmPaths(root).ensure()
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    proc = _serve(root, port)
    state = {"prekill_fence": 0, "killed": False, "restarted": None}
    try:
        _wait_ping(url)
        killer = threading.Thread(
            target=_kill_and_restart, args=(proc, root, port, url, state),
            daemon=True)
        killer.start()
        farm = FarmSpec(
            root=str(tmp_path / "broker"), workers=2, endpoint=url,
            rpc_timeout=1.0, rpc_deadline=30.0, lease_ttl=2.0,
            heartbeat_interval=0.1, poll_interval=0.05,
            checkpoint_every=120, grace=4.0,
        )
        result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm,
                            retries=4)
        killer.join(60)

        assert state["killed"], "service was never SIGKILLed mid-sweep"
        assert state["restarted"] is not None

        # Exactly-once through the restart: bit-identical folds, every
        # cell completed, nothing doubled.
        for benchmark in plain_small:
            for scheme in plain_small[benchmark]:
                got = result[benchmark][scheme]
                assert isinstance(got, SimStats), (benchmark, scheme, got)
                assert got.to_dict() == \
                    plain_small[benchmark][scheme].to_dict(), \
                    (benchmark, scheme)
        report = farm.report
        assert report.completed == 4
        assert report.failed == 0
        assert report.divergent == 0
        assert report.duplicates == 0

        # Fencing tokens never regress across the crash: every token the
        # restarted service issued is above everything issued before the
        # kill, so no pre-kill zombie's token can ever be honored twice.
        final = _get(url, "/ping")
        assert final["fence"] >= state["prekill_fence"]
        assert final["results"] >= 4
    finally:
        for server in (proc, state.get("restarted")):
            if server is not None and server.poll() is None:
                server.kill()
                server.wait()
