"""Vector columns through the sweep farm: one durable lease per
column, per-cell fan-out on fold, bit-identical results."""

import pytest

from repro.core.stats import SimStats
from repro.experiments import RunSpec, SweepJournal, run_matrix
from repro.experiments.journal import cell_key
from repro.farm import FarmSpec

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"
_BENCH = ("gcc", "mesa")
_SCHEMES = ("base", "inf", _PRI)


def _farm(tmp_path, **kw):
    defaults = dict(workers=2, lease_ttl=5.0, heartbeat_interval=0.1,
                    poll_interval=0.05, grace=4.0)
    defaults.update(kw)
    return FarmSpec(root=str(tmp_path / "farm"), **defaults)


@pytest.fixture(scope="module")
def plain():
    return run_matrix(_BENCH, _SCHEMES, 4, _SPEC)


def test_farm_vector_matches_plain(tmp_path, plain):
    farm = _farm(tmp_path)
    result = run_matrix(_BENCH, _SCHEMES, 4, _SPEC, farm=farm,
                        backend="vector")
    for benchmark in plain:
        for scheme in plain[benchmark]:
            got = result[benchmark][scheme]
            assert isinstance(got, SimStats), (benchmark, scheme, got)
            assert got.to_dict() == plain[benchmark][scheme].to_dict()
    report = farm.report
    # One lease per benchmark column — NOT one per cell.
    assert report.completed == len(_BENCH)
    assert report.failed == 0
    assert report.divergent == 0


def test_farm_vector_leases_are_columns(tmp_path):
    farm = _farm(tmp_path)
    run_matrix(_BENCH, _SCHEMES, 4, _SPEC, farm=farm, backend="vector")
    journal = SweepJournal(farm.paths.journal)
    lease_keys = {event["key"] for event in journal.lease_events}
    assert lease_keys, "no lease audit trail"
    assert all(key.startswith("column|") for key in lease_keys)
    assert len(lease_keys) == len(_BENCH)
    # ... while the *cell* records fan out individually, each resumable
    # on its own (scalar or vector) in a later run.
    assert len(journal) == len(_BENCH) * len(_SCHEMES)
    for benchmark in _BENCH:
        for scheme in _SCHEMES:
            saved = journal.get(cell_key(benchmark, scheme, 4, _SPEC))
            assert isinstance(saved, SimStats)


def test_farm_vector_journal_resumes_without_rerun(tmp_path, plain):
    farm = _farm(tmp_path)
    run_matrix(_BENCH, _SCHEMES, 4, _SPEC, farm=farm, backend="vector")
    # Second run over the same journal: everything restored, nothing
    # re-leased.
    again = run_matrix(_BENCH, _SCHEMES, 4, _SPEC, farm=farm,
                       backend="vector")
    for benchmark in plain:
        for scheme in plain[benchmark]:
            assert (again[benchmark][scheme].to_dict()
                    == plain[benchmark][scheme].to_dict())
