"""Chaos suite: the farm's contract under injected distributed failure.

Every test drives a real sweep through the broker/worker farm with
deterministic faults from :mod:`repro.farm.inject` and asserts the
farm's three invariants:

* **exactly-once completion** — every cell is folded into the results
  exactly once, duplicates verified bit-identical;
* **zero lost work** — the final matrix equals a fault-free run
  bit-for-bit, whatever was killed, stalled, orphaned, or evicted;
* **resume, never restart** — a reclaimed cell with a checkpoint on
  disk continues mid-simulation (``cold_restarts == 0``).
"""

import os
import subprocess
import sys
import time

import pytest

from repro.core.stats import SimStats
from repro.experiments import RunSpec, SweepJournal, run_matrix, run_one
from repro.experiments.runner import FIGURE10_SCHEMES, CellError
from repro.farm import FarmSpec
from repro.farm.aggregate import Aggregator
from repro.farm.lease import CellResult

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"
_BENCH = ("gcc", "mesa")


def _farm(tmp_path, **kw):
    defaults = dict(workers=2, lease_ttl=1.0, heartbeat_interval=0.1,
                    poll_interval=0.05, checkpoint_every=120, grace=4.0)
    defaults.update(kw)
    return FarmSpec(root=str(tmp_path / "farm"), **defaults)


def _assert_identical(farmed, plain):
    for benchmark in plain:
        for scheme in plain[benchmark]:
            got = farmed[benchmark][scheme]
            want = plain[benchmark][scheme]
            assert isinstance(got, SimStats), (benchmark, scheme, got)
            assert got.to_dict() == want.to_dict(), (benchmark, scheme)


@pytest.fixture(scope="module")
def plain_small():
    """Fault-free reference for the 2x2 matrix used by most tests."""
    return run_matrix(_BENCH, ("base", _PRI), 4, _SPEC)


# ============================================================ fault-free


def test_farm_matches_plain_run(tmp_path, plain_small):
    farm = _farm(tmp_path)
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.completed == 4
    assert report.failed == 0
    assert report.divergent == 0
    assert report.cold_restarts == 0


def test_farm_journals_lease_audit_trail(tmp_path, plain_small):
    farm = _farm(tmp_path)
    run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm)
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    states = [e["state"] for e in journal.lease_events]
    assert states.count("completed") == 4
    assert "leased" in states
    # Exactly one completion per cell key: the exactly-once contract,
    # as recorded durably in the journal.
    completed = [e["key"] for e in journal.lease_events
                 if e["state"] == "completed"]
    assert len(completed) == len(set(completed)) == 4
    # And the journal restores the cells on the next run: nothing left.
    again = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                       journal=os.path.join(farm.root, "journal.json"))
    _assert_identical(again, plain_small)


# ======================================================== kill (sat. 3)


def test_sigkill_between_checkpoints_resumes(tmp_path, plain_small):
    """SIGKILL a worker between checkpoints: the reclaimed cell must
    resume from the last snapshot — not cycle 0 — and the final stats
    must be bit-identical to an uninterrupted run."""
    farm = _farm(tmp_path, inject=("kill:worker=0:cell=0:cycles=400",))
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                        farm=farm, retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.reclaims >= 1          # the SIGKILLed lease expired
    assert report.resumes >= 1           # ... and its cell resumed
    assert report.cold_restarts == 0     # ... from the checkpoint
    assert report.respawns >= 1          # the dead worker was replaced
    assert report.divergent == 0
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    states = [e["state"] for e in journal.lease_events]
    assert "abandoned" in states
    # The reclaimed cell's completion records a mid-simulation start.
    resumed = [e for e in journal.lease_events
               if e["state"] == "completed" and e.get("start_cycle", 0) > 0]
    assert resumed


def test_eviction_checkpoints_within_grace(tmp_path, plain_small):
    """SIGTERM (spot eviction) must checkpoint-and-release promptly; the
    cell then resumes elsewhere from that exact cycle."""
    farm = _farm(tmp_path, inject=("evict:worker=1:cell=0:cycles=300",))
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                        farm=farm, retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.evictions >= 1
    assert report.resumes >= 1
    assert report.cold_restarts == 0
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    assert any(e["state"] == "released" for e in journal.lease_events)


def test_stalled_heartbeat_is_reclaimed(tmp_path, plain_small):
    """Heartbeats stop but the worker keeps (slowly) simulating: the
    lease must expire and the cell be reclaimed; if the zombie finishes
    too, its duplicate must verify bit-identical, never diverge."""
    farm = _farm(tmp_path, inject=("stall:worker=0:cell=0:cycles=200",))
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                        farm=farm, retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.reclaims >= 1
    assert report.cold_restarts == 0
    assert report.divergent == 0


def test_orphaned_worker_is_reclaimed_and_respawned(tmp_path, plain_small):
    farm = _farm(tmp_path, inject=("orphan:worker=1:cell=0:cycles=300",))
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                        farm=farm, retries=3)
    _assert_identical(result, plain_small)
    assert farm.report.reclaims >= 1
    assert farm.report.respawns >= 1
    assert farm.report.cold_restarts == 0


def test_double_lease_completes_exactly_once(tmp_path, plain_small):
    farm = _farm(tmp_path, inject=("double-lease:worker=0:cell=0:cycles=200",))
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC,
                        farm=farm, retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.completed == 4
    assert report.divergent == 0
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    completed = [e["key"] for e in journal.lease_events
                 if e["state"] == "completed"]
    assert len(completed) == len(set(completed)) == 4


# ==================================== figure-10-shaped acceptance sweep


def test_figure10_shaped_sweep_under_continuous_chaos(tmp_path):
    """The PR's acceptance criterion: a figure-10-shaped sweep (every
    Figure 10 scheme plus base, two benchmarks) driven through the farm
    with continuous fault injection — worker SIGKILLs, one simulated
    spot eviction, one stalled heartbeat, one double-lease — completes
    with every cell's SimStats identical to a fault-free run_matrix
    run, and no cell ever re-simulates from cycle 0 when a checkpoint
    existed."""
    schemes = ("base",) + FIGURE10_SCHEMES
    plain = run_matrix(_BENCH, schemes, 4, _SPEC)
    farm = _farm(
        tmp_path,
        inject=(
            "kill:worker=0:cell=0:cycles=400",         # hard crash
            "evict:worker=1:cell=1:cycles=300",        # spot eviction
            "stall:worker=2:cell=0:cycles=200",        # w0's replacement
            "double-lease:worker=3:cell=0:cycles=200", # w1's replacement
            "kill:worker=4:cell=1:cycles=500",         # keep the pressure on
        ),
    )
    result = run_matrix(_BENCH, schemes, 4, _SPEC, farm=farm, retries=4)
    _assert_identical(result, plain)
    report = farm.report
    assert report.cells == len(_BENCH) * len(schemes)
    assert report.completed == report.cells      # exactly-once, no loss
    assert report.failed == 0
    assert report.divergent == 0
    assert report.cold_restarts == 0             # resume, never restart
    assert report.reclaims + report.evictions >= 2


# =========================================================== error paths


def _deterministic_boom(benchmark, scheme, width, spec, traces=None):
    if scheme == _PRI:
        raise ValueError(f"injected deterministic failure in {benchmark}")
    return run_one(benchmark, scheme, width, spec, traces)


def test_deterministic_error_is_not_retried(tmp_path):
    farm = _farm(tmp_path)
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm,
                        retries=3, on_error="record",
                        cell_fn=_deterministic_boom)
    for benchmark in _BENCH:
        assert isinstance(result[benchmark]["base"], SimStats)
        err = result[benchmark][_PRI]
        assert isinstance(err, CellError)
        assert err.kind == "error"
        assert err.error_type == "ValueError"
        assert err.attempts == 1            # deterministic: no retry
    assert farm.report.failed == 2


def _crash_pri(benchmark, scheme, width, spec, traces=None):
    if scheme == _PRI:
        os._exit(9)  # simulated segfault: lease left behind, no result
    return run_one(benchmark, scheme, width, spec, traces)


def test_retry_budget_exhaustion_is_terminal(tmp_path):
    farm = _farm(tmp_path, workers=1)
    result = run_matrix(("gcc",), ("base", _PRI), 4, _SPEC, farm=farm,
                        retries=1, on_error="record", cell_fn=_crash_pri)
    assert isinstance(result["gcc"]["base"], SimStats)
    err = result["gcc"][_PRI]
    assert isinstance(err, CellError)
    assert err.kind == "crash"
    assert err.error_type == "LeaseExpired"
    assert farm.report.reclaims >= 1
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    assert _PRI in str(journal.errors())


# ===================================================== aggregator units


def _result(worker="w0", attempt=1, status="ok", stats=None, **kw):
    return CellResult(cid="c1", key="k1", worker=worker, attempt=attempt,
                      status=status,
                      stats=stats if stats is not None else {"committed": 7},
                      **kw)


def test_aggregator_folds_exactly_once_and_verifies_duplicates():
    agg = Aggregator()
    assert agg.fold(_result()) == "folded"
    assert agg.report.completed == 1
    # A zombie's bit-identical re-completion: dropped, counted.
    assert agg.fold(_result(worker="w1", attempt=2, start_cycle=240)) \
        == "duplicate"
    assert agg.report.duplicates == 1
    assert agg.report.completed == 1
    # A differing duplicate is a real finding.
    assert agg.fold(_result(worker="w2", stats={"committed": 8})) \
        == "divergent"
    assert agg.report.divergent == 1
    assert agg.report.divergent_keys == ["k1"]


def test_aggregator_flags_cold_restart():
    agg = Aggregator()
    agg.expect_resume.add(("c1", 2))
    agg.fold(_result(attempt=2, start_cycle=0))
    assert agg.report.cold_restarts == 1
    agg2 = Aggregator()
    agg2.expect_resume.add(("c1", 2))
    agg2.fold(_result(attempt=2, start_cycle=240))
    assert agg2.report.cold_restarts == 0
    assert agg2.report.resumes == 1


# ======================================= fence-stale lease (satellite 2)


def test_fence_stale_lease_is_scrubbed_not_reclaimed(tmp_path, plain_small):
    """A lease left behind by a pre-reclaim holder — its attempt is
    below the published spec's (the fence) — must be scrubbed on the
    broker's first scan, without waiting for TTL expiry and without
    counting as a reclaim.  Before the fence-stale branch this lease
    blocked its cell for a full lease_ttl."""
    import dataclasses as dc

    from repro.experiments.journal import cell_key
    from repro.farm.lease import CellSpec, cid_of, claim, write_cell

    farm = _farm(tmp_path, lease_ttl=30.0)  # TTL-expiry path cannot fire
    farm.paths.ensure()
    key = cell_key("gcc", "base", 4, _SPEC)
    stale = CellSpec(
        cid=cid_of(key), key=key, benchmark="gcc", scheme="base", width=4,
        spec={"length": _SPEC.length, "warmup": _SPEC.warmup,
              "seed": _SPEC.seed},
    )
    bumped = dc.replace(stale)
    bumped.attempt = 2
    write_cell(farm.paths, bumped)         # reclaim already fenced it...
    assert claim(farm.paths, stale, "ghost", ttl=30.0)  # ...ghost lingers

    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm,
                        retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.completed == 4
    assert report.reclaims == 0            # scrubbed, never "reclaimed"
    assert report.divergent == 0
    assert not os.path.exists(farm.paths.lease(stale.cid))


# ================================================= broker crash + resume


def test_broker_crash_resume_burns_no_retry_budget(tmp_path):
    """SIGKILL the whole broker mid-sweep (power loss / CI teardown):
    the next run — with retries=0, the default — must hand the stale
    leases back voluntarily and complete every cell.  Preemption is
    infrastructure failure, not cell failure, so it never consumes
    retry budget."""
    crash_spec = RunSpec(length=1200, warmup=2400, seed=2)
    farm_root = str(tmp_path / "farm")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    driver = (
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        "from repro.experiments import RunSpec, run_matrix\n"
        "from repro.farm import FarmSpec\n"
        f"farm = FarmSpec(root={farm_root!r}, workers=2, lease_ttl=1.0,\n"
        "                heartbeat_interval=0.1, poll_interval=0.05,\n"
        "                checkpoint_every=150, grace=3.0)\n"
        f"run_matrix(('gcc', 'mesa'), ('base', {_PRI!r}), 4,\n"
        "           RunSpec(length=1200, warmup=2400, seed=2), farm=farm)\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", driver])
    time.sleep(2.0)
    proc.kill()
    proc.wait()
    plain = run_matrix(_BENCH, ("base", _PRI), 4, crash_spec)
    farm = _farm(tmp_path)  # same root: resumes the crashed sweep
    result = run_matrix(_BENCH, ("base", _PRI), 4, crash_spec, farm=farm)
    _assert_identical(result, plain)
    if farm.report is not None:  # None if the child finished pre-kill
        assert farm.report.failed == 0
        assert farm.report.divergent == 0


# ======================================================= attached worker


def test_externally_attached_worker_completes_cells(tmp_path, plain_small):
    """workers=0: the broker publishes and folds, but every simulation
    is done by a worker attached via ``python -m repro.farm worker`` —
    the cross-shell/cross-host mode."""
    farm = _farm(tmp_path, workers=0)
    farm.paths.ensure()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "..", "src")]
        + env.get("PYTHONPATH", "").split(os.pathsep)
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.farm", "worker", farm.root,
         "--name", "attached", "--lease-ttl", "2", "--heartbeat", "0.1",
         "--poll", "0.05", "--checkpoint-every", "120"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    try:
        result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm)
        _assert_identical(result, plain_small)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    journal = SweepJournal(os.path.join(farm.root, "journal.json"))
    workers = {e["worker"] for e in journal.lease_events
               if e["state"] == "completed"}
    assert workers == {"attached"}


# ============================================================== farm CLI


def test_farm_status_cli_is_read_only(tmp_path, capsys):
    from repro.farm.__main__ import main

    farm = _farm(tmp_path)
    run_matrix(("gcc",), ("base",), 4, _SPEC, farm=farm)
    journal_path = os.path.join(farm.root, "journal.json")
    before = (os.path.getmtime(journal_path), os.path.getsize(journal_path))
    assert main(["status", farm.root]) == 0
    out = capsys.readouterr().out
    assert "1/1 cells have results" in out
    time.sleep(0.02)
    assert main(["status", farm.root, "--json"]) == 0
    after = (os.path.getmtime(journal_path), os.path.getsize(journal_path))
    assert before == after  # status never writes


def test_farm_status_salvages_torn_journal_tail(tmp_path, capsys):
    """A broker crash mid-append leaves a torn final journal line.
    ``farm status`` must salvage the valid prefix, say so explicitly,
    and still never write — not raise, not silently under-report."""
    from repro.farm.__main__ import main

    farm = _farm(tmp_path)
    run_matrix(("gcc",), ("base",), 4, _SPEC, farm=farm)
    journal_path = os.path.join(farm.root, "journal.json")
    with open(journal_path, "rb") as fh:
        data = fh.read()
    with open(journal_path, "wb") as fh:
        fh.write(data[:-9])  # crash mid-append: the tail is torn
    before = (os.path.getmtime(journal_path), os.path.getsize(journal_path))

    assert main(["status", farm.root]) == 0
    out = capsys.readouterr().out
    assert "torn journal tail salvaged" in out
    assert main(["status", farm.root, "--json"]) == 0
    parsed = __import__("json").loads(capsys.readouterr().out)
    assert "torn journal tail salvaged" in parsed["journal_note"]
    after = (os.path.getmtime(journal_path), os.path.getsize(journal_path))
    assert before == after  # salvage is read-only: the evidence stays


def test_farm_status_reports_interior_journal_damage(tmp_path, capsys):
    """Interior corruption (not a torn tail) truncates the usable
    history; status must say where and point at fsck, exit 0."""
    from repro.farm.__main__ import main

    farm = _farm(tmp_path)
    run_matrix(("gcc",), ("base",), 4, _SPEC, farm=farm)
    journal_path = os.path.join(farm.root, "journal.json")
    with open(journal_path, "rb") as fh:
        lines = fh.read().split(b"\n")
    assert len(lines) > 3
    lines[1] = lines[1][:-1] + (b"X" if lines[1][-1:] != b"X" else b"Y")
    with open(journal_path, "wb") as fh:
        fh.write(b"\n".join(lines))

    assert main(["status", farm.root]) == 0
    out = capsys.readouterr().out
    assert "journal damaged at line 2" in out
    assert "fsck" in out


def test_farm_faults_cli_lists_registry(capsys):
    from repro.farm.__main__ import main

    assert main(["faults"]) == 0
    out = capsys.readouterr().out
    for name in ("kill", "stall", "orphan", "evict", "double-lease"):
        assert name in out
    for name in ("net-drop", "net-delay", "net-disconnect",
                 "net-duplicate", "net-stale"):
        assert name in out
