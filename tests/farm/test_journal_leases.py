"""Lease records in the sweep journal, and fsck's validation of them."""

import pytest

from repro.core.stats import SimStats
from repro.experiments.journal import LEASE_STATES, SweepJournal
from repro.store.fsck import fsck_tree
from repro.store.integrity import checked_line


def _event(key="k1", state="leased", worker="w0", **extra):
    return {"key": key, "state": state, "worker": worker, "ts": 1.0, **extra}


def test_lease_records_roundtrip(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event(state="leased"))
    journal.record_lease(_event(state="heartbeat", cycle=500), durable=False)
    journal.record_lease(_event(state="completed"))
    back = SweepJournal(path)
    assert [e["state"] for e in back.lease_events] == [
        "leased", "heartbeat", "completed",
    ]
    assert back.lease_states()["k1"]["state"] == "completed"


def test_lease_records_do_not_shadow_cells(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event())
    stats = SimStats()
    stats.committed = 42
    journal.record_ok("k1", stats)
    journal.record_lease(_event(state="completed"))
    back = SweepJournal(path)
    assert back.get("k1").committed == 42
    assert len(back) == 1
    assert len(back.lease_events) == 2


def test_record_lease_validates_fields(tmp_path):
    journal = SweepJournal(str(tmp_path / "journal.json"))
    with pytest.raises(ValueError, match="lacks fields"):
        journal.record_lease({"key": "k", "state": "leased"})
    with pytest.raises(ValueError, match="unknown lease state"):
        journal.record_lease(_event(state="zombie"))


def test_lease_states_latest_wins(tmp_path):
    journal = SweepJournal(str(tmp_path / "journal.json"))
    for state in ("leased", "abandoned", "leased", "completed"):
        assert state in LEASE_STATES
        journal.record_lease(_event(state=state))
    journal.record_lease(_event(key="k2", state="released"))
    latest = journal.lease_states()
    assert latest["k1"]["state"] == "completed"
    assert latest["k2"]["state"] == "released"


def test_salvage_rewrite_preserves_lease_lines(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event())
    stats = SimStats()
    journal.record_ok("k1", stats)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("deadbeef torn-tail")  # crash mid-append
    back = SweepJournal(path)
    assert back.salvaged is not None
    assert len(back.lease_events) == 1
    # And the compacted rewrite still carries the lease line.
    again = SweepJournal(path)
    assert len(again.lease_events) == 1


# ------------------------------------------------------------------ fsck


def test_fsck_accepts_journal_with_lease_lines(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event())
    journal.record_ok("k1", SimStats())
    journal.record_lease(_event(state="completed"))
    report = fsck_tree(path)
    assert report.ok == 1
    assert not report.unrepaired


def test_fsck_rejects_malformed_lease_record(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event())
    # Append a checksum-valid line whose lease payload is garbage: the
    # digest passes, so only semantic validation can catch it.
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(checked_line({"lease": {"key": "k", "state": "bogus"}}))
    report = fsck_tree(path)
    assert report.unrepaired


def test_fsck_rejects_lease_with_missing_fields(tmp_path):
    path = str(tmp_path / "journal.json")
    journal = SweepJournal(path)
    journal.record_lease(_event())
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(checked_line({"lease": {"state": "leased"}}))
    report = fsck_tree(path)
    assert report.unrepaired
