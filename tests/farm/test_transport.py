"""Unit tests for the pluggable lease transports.

The HTTP lease service's three wire-safety properties — fencing tokens,
idempotent request ids, server-owned clocks — are each pinned here
against a real in-process :class:`~repro.farm.server.FarmServer`, plus
the filesystem backend's behavior behind the same interface and the
``make_transport`` factory that picks between them.
"""

import os
import time

import pytest

from repro.farm.inject import NetPlan, NetworkChaos
from repro.farm.lease import (
    CellResult,
    CellSpec,
    FarmPaths,
    LeaseLost,
    cid_of,
    read_lease,
)
from repro.farm.server import FarmServer
from repro.farm.transport import (
    Fenced,
    TransportUnavailable,
    make_transport,
)
from repro.farm.transport.fs import FsTransport
from repro.farm.transport.http import HttpTransport


class _FastHttp(HttpTransport):
    """The production transport with a test-tight retry schedule."""

    retry_base = 0.01
    retry_cap = 0.05


def _cell(key="gcc|base|w4|n300|u600|s2|c0|a0|deadbeef", **kw):
    return CellSpec(
        cid=cid_of(key), key=key, benchmark="gcc", scheme="base",
        width=4, spec={"length": 300, "warmup": 600, "seed": 2}, **kw,
    )


def _ok(cell, worker, attempt=1):
    return CellResult(cid=cell.cid, key=cell.key, worker=worker,
                      attempt=attempt, status="ok",
                      stats={"committed": 7})


@pytest.fixture
def server(tmp_path):
    srv = FarmServer(str(tmp_path / "root")).start()
    yield srv
    srv.stop()


def _client(server, name="w0", deadline=2.0, plans=()):
    chaos = NetworkChaos(tuple(plans)) if plans else None
    return _FastHttp(server.url, client_id=name, timeout=5.0,
                     deadline=deadline, chaos=chaos)


# ============================================================== factory


def test_make_transport_dispatch(tmp_path, server):
    assert isinstance(make_transport(root=str(tmp_path / "fs")), FsTransport)
    http = make_transport(endpoint=server.url, client_id="t")
    assert isinstance(http, HttpTransport)
    assert http.client_id == "t"
    with pytest.raises(ValueError):
        make_transport()


def test_make_transport_builds_chaos_from_plans(server):
    plan = NetPlan(fault="net-drop", op="claim", seq=0, count=1)
    http = make_transport(endpoint=server.url, net_plans=(plan,))
    assert http.chaos is not None
    assert http.chaos.plans == (plan,)


# =============================================== fencing (HTTP service)


def test_claim_issues_monotonic_fencing_tokens(server):
    client = _client(server)
    a, b = _cell("ka"), _cell("kb")
    for cell in (a, b):
        client.publish(cell)
    lease_a = client.claim(a, "w0", ttl=30.0)
    lease_b = client.claim(b, "w0", ttl=30.0)
    assert lease_a.token >= 1
    assert lease_b.token > lease_a.token


def test_claim_is_exclusive_until_released(server):
    client = _client(server, "w0")
    rival = _client(server, "w1")
    cell = _cell()
    client.publish(cell)
    lease = client.claim(cell, "w0", ttl=30.0)
    assert lease is not None
    assert rival.claim(cell, "w1", ttl=30.0) is None  # taken
    assert client.release(lease)
    assert rival.claim(cell, "w1", ttl=30.0) is not None


def test_reclaim_fences_every_write_of_the_old_holder(server):
    """The zombie scenario, rejected server-side: after the broker
    reclaims, the old holder's heartbeat, checkpoint upload, and
    completion must all bounce off the stale token — no matter how
    delayed its packets are."""
    worker = _client(server, "w0")
    broker = _client(server, "broker")
    cell = _cell()
    broker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)

    reclaimed = CellSpec.from_dict(cell.to_dict())
    reclaimed.attempt = 2
    assert broker.reclaim(reclaimed, lease)

    with pytest.raises(LeaseLost):
        worker.heartbeat(lease, cycle=100)
    with pytest.raises(Fenced):
        worker.write_result(_ok(cell, "w0"), lease=lease)
    snap = os.path.join(worker.checkpoint_dir, "zombie.snap")
    with open(snap, "wb") as fh:
        fh.write(b"stale snapshot")
    with pytest.raises(Fenced):
        worker.store_checkpoint(cell, lease, snap)
    # And the fenced completion left nothing behind.
    assert worker.done_cids() == set()


def test_stale_attempt_claim_is_refused(server):
    """A claimer whose scan predates a reclaim carries a stale attempt
    number; granting it would undo the fence."""
    worker = _client(server, "w0")
    broker = _client(server, "broker")
    cell = _cell()
    broker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)
    bumped = CellSpec.from_dict(cell.to_dict())
    bumped.attempt = 2
    broker.reclaim(bumped, lease)
    # Old snapshot of the spec (attempt 1): refused.
    assert worker.claim(cell, "w0", ttl=30.0) is None
    # A fresh scan sees attempt 2 and claims fine.
    fresh = worker.read_cell(cell.cid)
    assert fresh.attempt == 2
    assert worker.claim(fresh, "w0", ttl=30.0) is not None


def test_broker_reclaim_with_stale_token_is_refused(server):
    """The broker's own view can go stale too: if the lease changed
    hands since its last scan, reclaim must refuse rather than fence
    out the *new* (live) holder."""
    broker = _client(server, "broker")
    w0, w1 = _client(server, "w0"), _client(server, "w1")
    cell = _cell()
    broker.publish(cell)
    old = w0.claim(cell, "w0", ttl=30.0)
    assert w0.release(old)
    new = w1.claim(cell, "w1", ttl=30.0)
    bumped = CellSpec.from_dict(cell.to_dict())
    bumped.attempt = 2
    assert not broker.reclaim(bumped, old)   # stale token: refused
    w1.heartbeat(new)                        # the live holder is untouched


# ====================================== idempotency (HTTP service rids)


def test_disconnect_mid_complete_applies_exactly_once(server, tmp_path):
    """The classic torn-connection fault: the completion executes
    server-side but the response is lost.  The retry re-sends the same
    rid and must be answered from the replay cache — one result file,
    no duplicate, no error surfaced to the caller."""
    plans = (NetPlan(fault="net-disconnect", op="complete", seq=0, count=1),)
    worker = _client(server, "w0", plans=plans)
    cell = _cell()
    worker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)
    worker.write_result(_ok(cell, "w0"), lease=lease)  # must not raise
    results = os.listdir(FarmPaths(server.state.paths.root).results)
    assert len(results) == 1
    assert worker.done_cids() == {cell.cid}


def test_duplicate_delivery_applies_exactly_once(server):
    plans = (NetPlan(fault="net-duplicate", op="claim", seq=0, count=1),)
    worker = _client(server, "w0", plans=plans)
    cell = _cell()
    worker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)
    # The duplicated claim executed twice on the wire but once in
    # effect: exactly one lease exists, with one token.
    assert lease is not None
    assert len(server.state.leases) == 1
    assert server.state.leases[cell.cid].token == lease.token


def test_stale_response_is_unmasked_by_rid_verification(server):
    """A misbehaving proxy replaying yesterday's response must not be
    mistaken for the answer: the echoed rid gives it away and the
    client retries until the real response arrives."""
    a, b = _cell("ka"), _cell("kb")
    # claim #0 real (primes the stale cache), claim #1 replayed stale,
    # the retry (claim #2) goes through.
    plans = (NetPlan(fault="net-stale", op="claim", seq=1, count=1),)
    worker = _client(server, "w0", plans=plans)
    worker.publish(a)
    worker.publish(b)
    lease_a = worker.claim(a, "w0", ttl=30.0)
    lease_b = worker.claim(b, "w0", ttl=30.0)
    assert lease_a is not None and lease_b is not None
    assert lease_b.cid == b.cid              # not A's replayed lease
    assert lease_b.token != lease_a.token


def test_reclaiming_own_live_lease_is_idempotent(server):
    """Semantic idempotency behind the rid cache: re-claiming a lease
    you already hold (a retry whose rid the cache lost, e.g. across a
    service restart) returns the same grant, not ``taken``."""
    worker = _client(server, "w0")
    cell = _cell()
    worker.publish(cell)
    first = worker.claim(cell, "w0", ttl=30.0)
    again = worker.claim(cell, "w0", ttl=30.0)
    assert again is not None
    assert again.token == first.token


def test_replayed_completion_is_ok_not_fenced(server):
    """Re-completing an applied result (lease already dropped) must be
    ``ok``, not ``fenced`` — a service restart that lost the rid cache
    cannot turn a worker's retry into a spurious zombie verdict."""
    worker = _client(server, "w0")
    cell = _cell()
    worker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)
    worker.write_result(_ok(cell, "w0"), lease=lease)
    server.state.rid_cache.clear()  # simulate a cache wipe
    worker.write_result(_ok(cell, "w0"), lease=lease)  # must not raise


# ============================================= restart + clock ownership


def test_server_restart_recovers_state_and_fence(server, tmp_path):
    root = server.state.paths.root
    client = _client(server, "w0")
    a, b, c = _cell("ka"), _cell("kb"), _cell("kc")
    for cell in (a, b, c):
        client.publish(cell)
    lease_a = client.claim(a, "w0", ttl=30.0)
    client.write_result(_ok(a, "w0"), lease=lease_a)
    lease_b = client.claim(b, "w0", ttl=30.0)
    server.stop()

    revived = FarmServer(root).start()
    try:
        client2 = _client(revived, "w0")
        # Results, cells, and live leases all came back from disk.
        assert client2.done_cids() == {a.cid}
        assert set(client2.list_cells()) == {a.cid, b.cid, c.cid}
        client2.heartbeat(lease_b, cycle=42)       # still owns B
        # The fence counter survived (fence.json): a new claim's token
        # is strictly above every token issued before the restart.
        lease_c = client2.claim(c, "w0", ttl=30.0)
        assert lease_c.token > lease_b.token
    finally:
        revived.stop()


def test_backoff_fence_travels_as_delta_not_timestamp(server):
    """Retry backoff crosses the wire as "not claimable for N seconds",
    re-anchored on each host's own clock — never as a unix time that
    clock skew could stretch or collapse."""
    broker = _client(server, "broker")
    worker = _client(server, "w0")
    cell = _cell()
    broker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)
    bumped = CellSpec.from_dict(cell.to_dict())
    bumped.attempt = 2
    bumped.not_before = time.time() + 5.0
    broker.reclaim(bumped, lease)

    seen = worker.read_cell(cell.cid)
    assert 2.0 < seen.not_before - time.time() <= 5.0
    # And the service itself refuses a claim inside the backoff window.
    assert worker.claim(seen, "w0", ttl=30.0) is None


def test_lease_ages_are_computed_on_the_server_clock(server):
    worker = _client(server, "w0")
    broker = _client(server, "broker")
    cell = _cell()
    broker.publish(cell)
    worker.claim(cell, "w0", ttl=30.0)
    (view,) = broker.lease_views()
    assert view.cid == cell.cid
    assert 0.0 <= view.age < 5.0
    assert view.held >= view.age - 1e-6


# ========================================== checkpoints over the service


def test_checkpoint_roundtrip_and_cleanup(server):
    worker = _client(server, "w0")
    cell = _cell()
    worker.publish(cell)
    lease = worker.claim(cell, "w0", ttl=30.0)

    local = os.path.join(worker.checkpoint_dir, "cell.snap")
    payload = b"\x00machine snapshot bytes\xff" * 64
    with open(local, "wb") as fh:
        fh.write(payload)
    worker.store_checkpoint(cell, lease, local)
    assert worker.has_checkpoint(cell, local)

    # A different worker (fresh spool: nothing local) fetches it back.
    other = _client(server, "w1")
    fetched = os.path.join(other.checkpoint_dir, "cell.snap")
    assert other.fetch_checkpoint(cell, fetched)
    with open(fetched, "rb") as fh:
        assert fh.read() == payload

    # Completion retires the checkpoint with the cell.
    worker.write_result(_ok(cell, "w0"), lease=lease)
    assert not worker.has_checkpoint(cell, local)
    assert not other.fetch_checkpoint(cell, fetched)


# ============================================ results cursor + liveness


def test_new_results_is_a_cursor(server):
    worker = _client(server, "w0")
    broker = _client(server, "broker")
    a, b = _cell("ka"), _cell("kb")
    for cell in (a, b):
        broker.publish(cell)
    for cell in (a, b):
        lease = worker.claim(cell, "w0", ttl=30.0)
        worker.write_result(_ok(cell, "w0"), lease=lease)
    first = broker.new_results()
    assert {r.cid for r in first} == {a.cid, b.cid}
    assert broker.new_results() == []        # already folded


def test_unreachable_endpoint_raises_typed_error():
    dead = _FastHttp("http://127.0.0.1:1", client_id="w0",
                     timeout=0.2, deadline=0.3)
    with pytest.raises(TransportUnavailable) as info:
        dead.list_cells()
    exc = info.value
    assert exc.endpoint == "http://127.0.0.1:1"
    assert exc.attempts >= 1
    assert exc.last is not None
    assert "unreachable" in str(exc)


# ===================================================== filesystem parity


def test_fs_publish_preserves_attempt_fence(tmp_path):
    transport = FsTransport(str(tmp_path / "farm"))
    cell = _cell()
    transport.publish(cell)
    lease = transport.claim(cell, "w0", ttl=30.0)
    bumped = CellSpec.from_dict(cell.to_dict())
    bumped.attempt = 2
    transport.reclaim(bumped, lease)
    # A resumed broker republishing the original (attempt-1) spec must
    # not rewind the fence.
    republished = transport.publish(_cell())
    assert republished.attempt == 2


def test_fs_read_cell_raises_keyerror_when_pruned(tmp_path):
    transport = FsTransport(str(tmp_path / "farm"))
    with pytest.raises(KeyError):
        transport.read_cell("nope")


def test_fs_scrub_fenced_never_deletes_a_successor_lease(tmp_path):
    """scrub_fenced is ownership-checked like release(): it removes the
    exact stale lease the broker observed, never one a new claim just
    created in the gap."""
    transport = FsTransport(str(tmp_path / "farm"))
    cell = _cell()
    transport.publish(cell)
    stale = transport.claim(cell, "ghost", ttl=30.0)
    bumped = CellSpec.from_dict(cell.to_dict())
    bumped.attempt = 2
    transport.reclaim(bumped, stale)          # unlinks ghost's lease
    fresh = transport.claim(bumped, "w1", ttl=30.0)
    assert fresh is not None

    (view,) = transport.lease_views()
    view = type(view)(cid=view.cid, lease=stale, age=view.age,
                      held=view.held)         # the broker's stale view
    transport.scrub_fenced(view)
    current = read_lease(transport.paths.lease(cell.cid))
    assert current.worker == "w1"             # survivor untouched


def test_fs_and_http_resume_commands_name_their_backend(tmp_path, server):
    fs = FsTransport(str(tmp_path / "farm"))
    assert fs.paths.root in fs.resume_command("w0")
    assert "--name w0" in fs.resume_command("w0")
    http = _client(server)
    assert f"--endpoint {server.url}" in http.resume_command("w0")
