"""Network chaos suite: the farm's contract when the *wire* fails.

The differential core: the same sweep driven over the filesystem
backend, over a clean HTTP lease service, and over HTTP with
deterministic wire faults (drops, delays, disconnects, duplicates,
stale replays, and a mid-sweep partition that parks a worker) must fold
bit-identical SimStats, exactly once — zero duplicate folds, zero
divergence.  Wire faults are keyed to RPC sequence numbers
(:class:`~repro.farm.inject.NetPlan`), so a red run is a finding, not
flake.

Plus the worker's graceful-degradation contract when the service is
unreachable: typed exits (2: between cells, 3: mid-cell after parking
a checkpoint) and a printed resume command — never a hang, never a raw
socket traceback.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.core.stats import SimStats
from repro.experiments import RunSpec, run_matrix
from repro.farm import FarmSpec
from repro.farm.inject import (
    InjectPlan,
    NetPlan,
    NetworkChaos,
    normalize_plans,
    parse_plan,
)
from repro.farm.lease import (
    CellSpec,
    FarmPaths,
    cid_of,
    read_lease,
    write_cell,
)
from repro.farm.server import FarmServer
from repro.store import ArtifactError

_SPEC = RunSpec(length=300, warmup=600, seed=2)
_PRI = "PRI-refcount+ckptcount"
_BENCH = ("gcc", "mesa")
_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _assert_identical(farmed, plain):
    for benchmark in plain:
        for scheme in plain[benchmark]:
            got = farmed[benchmark][scheme]
            want = plain[benchmark][scheme]
            assert isinstance(got, SimStats), (benchmark, scheme, got)
            assert got.to_dict() == want.to_dict(), (benchmark, scheme)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + env.get("PYTHONPATH", "").split(os.pathsep))
    return env


def _http_farm(tmp_path, server, **kw):
    """A farm whose broker and workers all speak to ``server``; the
    broker-local root holds only the sweep journal."""
    defaults = dict(workers=2, lease_ttl=1.0, heartbeat_interval=0.1,
                    poll_interval=0.05, checkpoint_every=120, grace=4.0,
                    endpoint=server.url, rpc_timeout=5.0, rpc_deadline=8.0)
    defaults.update(kw)
    return FarmSpec(root=str(tmp_path / "broker"), **defaults)


@pytest.fixture(scope="module")
def plain_small():
    """Fault-free, farm-free reference for the 2x2 matrix."""
    return run_matrix(_BENCH, ("base", _PRI), 4, _SPEC)


@pytest.fixture
def lease_server(tmp_path):
    server = FarmServer(str(tmp_path / "server-root")).start()
    yield server
    server.stop()


# ================================================== differential: clean


def test_http_transport_matches_fs_and_plain(tmp_path, lease_server,
                                             plain_small):
    """The tentpole differential, clean half: fs backend and HTTP
    backend both fold bit-identical to a farm-free run."""
    fs_farm = FarmSpec(root=str(tmp_path / "fs"), workers=2, lease_ttl=1.0,
                       heartbeat_interval=0.1, poll_interval=0.05,
                       checkpoint_every=120, grace=4.0)
    over_fs = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=fs_farm)
    _assert_identical(over_fs, plain_small)

    http_farm = _http_farm(tmp_path, lease_server)
    over_http = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=http_farm)
    _assert_identical(over_http, plain_small)
    report = http_farm.report
    assert report.completed == 4
    assert report.failed == 0
    assert report.divergent == 0
    assert report.duplicates == 0
    assert report.cold_restarts == 0
    # The cells/leases/results live on the server's root, not the
    # broker-local one (which holds only the journal).
    assert not os.listdir(FarmPaths(http_farm.root).cells)
    assert os.listdir(FarmPaths(lease_server.state.paths.root).results)


# ================================================== differential: chaos


def test_http_under_wire_chaos_matches_plain(tmp_path, lease_server,
                                             plain_small):
    """Every wire fault at once — dropped claims, a torn-connection
    completion, a duplicated claim, delayed heartbeats, a stale replay —
    and the folded matrix must not move by one bit."""
    farm = _http_farm(
        tmp_path, lease_server,
        inject=(
            "net-drop:worker=0:op=claim:seq=0:count=2",
            "net-disconnect:worker=0:op=complete:seq=0:count=1",
            "net-duplicate:worker=1:op=claim:seq=0:count=1",
            "net-delay:worker=1:op=heartbeat:seq=2:count=3:delay=0.2",
            "net-stale:worker=0:op=heartbeat:seq=3:count=1",
        ),
    )
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm,
                        retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.completed == 4              # exactly-once, no loss
    assert report.failed == 0
    assert report.divergent == 0
    assert report.duplicates == 0             # fencing rejected any zombie
    assert report.cold_restarts == 0


def test_mid_sweep_partition_parks_worker_and_sweep_completes(
        tmp_path, lease_server, plain_small):
    """The acceptance scenario: one worker is partitioned from the
    service mid-cell (every heartbeat dropped from its third onward).
    It must exhaust its retry deadline, park, and exit typed; the
    broker respawns a replacement, the cell's lease expires and is
    reclaimed, and the sweep still folds bit-identical with zero
    duplicates."""
    farm = _http_farm(
        tmp_path, lease_server,
        rpc_deadline=1.5,
        inject=("net-drop:worker=0:op=heartbeat:seq=2:count=100000",),
    )
    result = run_matrix(_BENCH, ("base", _PRI), 4, _SPEC, farm=farm,
                        retries=3)
    _assert_identical(result, plain_small)
    report = farm.report
    assert report.completed == 4
    assert report.failed == 0
    assert report.divergent == 0
    assert report.duplicates == 0
    assert report.respawns >= 1               # the parked worker was replaced
    assert report.reclaims >= 1               # ... and its lease reclaimed


def test_chaos_schedule_is_deterministic_given_plans():
    """The injection schedule is a pure function of the request
    pattern: same plans, same op sequence, same faults — never a
    function of wall time."""
    plans = (NetPlan(fault="net-drop", op="claim", seq=1, count=2),
             NetPlan(fault="net-delay", seq=5, count=1))
    ops = ["claim", "cells", "claim", "claim", "done", "cells", "claim"]

    def drive():
        chaos = NetworkChaos(plans)
        return [plan.fault if (plan := chaos.intercept(op)) else None
                for op in ops]

    first = drive()
    assert first == drive()
    # op-scoped plan counts only "claim" attempts; the global one counts
    # every attempt.
    assert first == [None, None, "net-drop", "net-drop", None,
                     "net-delay", None]


def test_retries_advance_the_injection_sequence():
    """A retry is a new wire attempt with a new sequence number, so a
    finite drop window is always escaped — the schedule cannot trap the
    retry loop forever."""
    chaos = NetworkChaos((NetPlan(fault="net-drop", op="claim", seq=0,
                                  count=3),))
    outcomes = [chaos.intercept("claim") for _ in range(5)]
    assert [p.fault if p else None for p in outcomes] == \
        ["net-drop", "net-drop", "net-drop", None, None]


# ========================================================== plan parsing


def test_net_plan_parse_roundtrip():
    plan = parse_plan("net-delay:worker=1:op=heartbeat:seq=3:count=2"
                      ":delay=0.2")
    assert plan == NetPlan(fault="net-delay", worker=1, op="heartbeat",
                           seq=3, count=2, delay=0.2)
    assert NetPlan.from_dict(plan.to_dict()) == plan


def test_parse_plan_dispatches_on_net_prefix():
    assert isinstance(parse_plan("kill:worker=1:cycles=400"), InjectPlan)
    assert isinstance(parse_plan("net-drop:op=claim"), NetPlan)
    with pytest.raises(ValueError):
        parse_plan("net-teleport:seq=0")
    with pytest.raises(ValueError):
        parse_plan("net-drop:bogus=1")


def test_normalize_plans_accepts_mixed_kinds():
    plans = normalize_plans([
        "net-drop:worker=1:op=claim",
        "stall:worker=0:cycles=200",
        {"fault": "net-stale", "op": "heartbeat", "seq": 2},
        NetPlan(fault="net-delay"),
    ])
    kinds = [type(p).__name__ for p in plans]
    assert kinds == ["NetPlan", "InjectPlan", "NetPlan", "NetPlan"]


# ===================================== unreachable service (satellite 4)


def test_worker_unreachable_at_startup_exits_2():
    """Nothing in flight: the worker must give up after its retry
    deadline with exit status 2, a typed message, and the exact resume
    command — not a hang, not a traceback."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.farm", "worker",
         "--endpoint", "http://127.0.0.1:1", "--name", "lonely",
         "--rpc-timeout", "0.2", "--rpc-deadline", "0.5"],
        env=_env(), capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 2
    assert "transport unreachable (no cell in flight)" in proc.stderr
    assert ("resume with: python -m repro.farm worker "
            "--endpoint http://127.0.0.1:1 --name lonely") in proc.stderr
    assert "Traceback" not in proc.stderr


def test_worker_parks_checkpoint_when_service_dies_mid_cell(tmp_path):
    """The service vanishes while a cell is simulating: the worker must
    save a local checkpoint at the exact cycle it gave up, print where
    it parked it plus the resume command, and exit 3."""
    root = str(tmp_path / "server-root")
    paths = FarmPaths(root).ensure()
    key = "gcc|base|w4|long-cell"
    cell = CellSpec(cid=cid_of(key), key=key, benchmark="gcc",
                    scheme="base", width=4,
                    spec={"length": 4000, "warmup": 8000, "seed": 2})
    write_cell(paths, cell)
    server = FarmServer(root).start()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.farm", "worker",
         "--endpoint", server.url, "--name", "parker",
         "--heartbeat", "0.05", "--poll", "0.05",
         "--checkpoint-every", "200",
         "--rpc-timeout", "1", "--rpc-deadline", "1"],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        # Wait for the first heartbeat (not just the claim): the cell
        # must actually be simulating when the service vanishes, or the
        # worker is correctly "unreachable between cells" (exit 2).
        deadline = time.time() + 30
        lease_path = paths.lease(cell.cid)
        simulating = False
        while time.time() < deadline and not simulating:
            try:
                simulating = read_lease(lease_path).cycle > 0
            except (FileNotFoundError, ArtifactError):
                pass
            time.sleep(0.05)
        assert simulating, "worker never heartbeat mid-cell"
        server.stop()
        _out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        server.stop()
    assert proc.returncode == 3
    assert "transport unreachable mid-cell" in err
    assert "resume with: python -m repro.farm worker --endpoint" in err
    parked = [line.split("checkpoint parked at ", 1)[1].strip()
              for line in err.splitlines()
              if "checkpoint parked at " in line]
    assert parked, err
    assert os.path.exists(parked[0])  # the parked cycles survive the exit
    assert "Traceback" not in err
