"""Unit tests for the farm's on-disk lease protocol and backoff."""

import dataclasses
import os

import pytest

from repro.farm.lease import (
    CellResult,
    CellSpec,
    FarmPaths,
    LeaseLost,
    backoff_delay,
    cid_of,
    claim,
    heartbeat,
    iter_results,
    list_cells,
    list_leases,
    list_results,
    read_cell,
    read_lease,
    read_result,
    release,
    write_cell,
    write_result,
)


@pytest.fixture
def paths(tmp_path):
    return FarmPaths(str(tmp_path / "farm")).ensure()


def _cell(key="gcc|base|w4|n300|u600|s2|c0|a0|deadbeef"):
    return CellSpec(
        cid=cid_of(key), key=key, benchmark="gcc", scheme="base",
        width=4, spec={"length": 300, "warmup": 600, "seed": 2},
    )


# ------------------------------------------------------------ cell specs


def test_cell_spec_roundtrip(paths):
    cell = _cell()
    write_cell(paths, cell)
    assert list_cells(paths) == [cell.cid]
    back = read_cell(paths.cell(cell.cid))
    assert back == cell


def test_cell_rewrite_preserves_attempt_fence(paths):
    cell = _cell()
    write_cell(paths, cell)
    cell.attempt = 3
    cell.not_before = 123.5
    write_cell(paths, cell)
    back = read_cell(paths.cell(cell.cid))
    assert back.attempt == 3
    assert back.not_before == 123.5


# ---------------------------------------------------------------- claims


def test_claim_is_exclusive(paths):
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=5.0)
    assert lease is not None
    assert lease.worker == "w0"
    # Second claim loses: the O_EXCL create arbitrates.
    assert claim(paths, cell, "w1", ttl=5.0) is None
    assert list_leases(paths) == [cell.cid]


def test_claim_after_release(paths):
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=5.0)
    assert release(paths, lease) is True
    assert list_leases(paths) == []
    assert claim(paths, cell, "w1", ttl=5.0) is not None


def test_release_refuses_foreign_lease(paths):
    cell = _cell()
    write_cell(paths, cell)
    mine = claim(paths, cell, "w0", ttl=5.0)
    # Simulate the broker reclaiming and another worker re-claiming.
    os.unlink(paths.lease(cell.cid))
    theirs = claim(paths, cell, "w1", ttl=5.0)
    assert theirs is not None
    # The original holder must not delete the new holder's lease.
    assert release(paths, mine) is False
    assert read_lease(paths.lease(cell.cid)).worker == "w1"


# ------------------------------------------------------------ heartbeats


def test_heartbeat_refreshes_and_carries_progress(paths):
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=5.0)
    before = read_lease(paths.lease(cell.cid)).heartbeat_unix
    heartbeat(paths, lease, cycle=1234, committed=567)
    after = read_lease(paths.lease(cell.cid))
    assert after.heartbeat_unix >= before
    assert after.cycle == 1234
    assert after.committed == 567
    assert after.worker == "w0"


def test_heartbeat_raises_when_lease_vanished(paths):
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=5.0)
    os.unlink(paths.lease(cell.cid))
    with pytest.raises(LeaseLost):
        heartbeat(paths, lease)


def test_heartbeat_never_overwrites_foreign_lease(paths):
    cell = _cell()
    write_cell(paths, cell)
    mine = claim(paths, cell, "w0", ttl=5.0)
    os.unlink(paths.lease(cell.cid))
    bumped = dataclasses.replace(cell)
    bumped.attempt = 2
    claim(paths, bumped, "w1", ttl=5.0)
    with pytest.raises(LeaseLost):
        heartbeat(paths, mine, cycle=999)
    current = read_lease(paths.lease(cell.cid))
    assert current.worker == "w1"
    assert current.cycle == 0  # untouched by the losing heartbeat


def test_heartbeat_loses_to_attempt_fence_before_lease_unlink(paths):
    """The heartbeat-at-TTL-boundary race, pinned: reclaim rewrites the
    cell spec (attempt bumped) *before* unlinking the lease file, and a
    heartbeat checks that fence before writing.  A heartbeat landing in
    the gap — spec already bumped, lease file still present — must lose
    deterministically and leave the lease file byte-identical; without
    the fence its atomic rename would resurrect the file after the
    broker's unlink, leaving a zombie that believed it held the cell."""
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=1.0)
    bumped = dataclasses.replace(cell)
    bumped.attempt = 2
    write_cell(paths, bumped)  # reclaim step 1: the fence is up
    with open(paths.lease(cell.cid), "rb") as fh:
        before = fh.read()
    with pytest.raises(LeaseLost, match="fences out"):
        heartbeat(paths, lease, cycle=4096, committed=100)
    with open(paths.lease(cell.cid), "rb") as fh:
        assert fh.read() == before  # the loser never rewrote the file


def test_lease_expiry_clock(paths):
    cell = _cell()
    write_cell(paths, cell)
    lease = claim(paths, cell, "w0", ttl=2.0)
    now = lease.heartbeat_unix
    assert not lease.expired(now + 1.9)
    assert lease.expired(now + 2.1)


# --------------------------------------------------------------- results


def test_result_roundtrip_and_duplicates_coexist(paths):
    cell = _cell()
    first = CellResult(cid=cell.cid, key=cell.key, worker="w0", attempt=1,
                       status="ok", stats={"committed": 300}, start_cycle=0)
    zombie = CellResult(cid=cell.cid, key=cell.key, worker="w1", attempt=2,
                        status="ok", stats={"committed": 300}, start_cycle=120)
    write_result(paths, first)
    write_result(paths, zombie)
    # One logical cell, two physical files — duplicates must coexist so
    # the broker can verify them instead of losing one to an overwrite.
    assert list_results(paths) == [cell.cid]
    files = iter_results(paths)
    assert len(files) == 2
    assert {read_result(p).worker for _cid, p in files} == {"w0", "w1"}


def test_error_result_roundtrip(paths):
    cell = _cell()
    err = CellResult(cid=cell.cid, key=cell.key, worker="broker", attempt=3,
                     status="error", kind="crash", error_type="LeaseExpired",
                     message="gone")
    write_result(paths, err)
    ((_cid, path),) = iter_results(paths)
    back = read_result(path)
    assert back.kind == "crash"
    assert back.error_type == "LeaseExpired"


# --------------------------------------------------------------- backoff


def test_backoff_is_deterministic_and_jittered():
    a = backoff_delay(2, 0.5, cap=30.0, token="gcc|base")
    b = backoff_delay(2, 0.5, cap=30.0, token="gcc|base")
    c = backoff_delay(2, 0.5, cap=30.0, token="mesa|base")
    assert a == b           # reproducible schedules
    assert a != c           # spread across cells


def test_backoff_growth_and_cap():
    base = 0.5
    for attempt in range(1, 20):
        delay = backoff_delay(attempt, base, cap=4.0, token="t")
        raw = min(4.0, base * 2 ** (attempt - 1))
        assert raw / 2 <= delay < raw
    # Far attempts are capped, not unbounded like the old
    # retry_backoff * 2**attempt schedule.
    assert backoff_delay(60, base, cap=4.0, token="t") < 4.0


def test_backoff_clamps_bad_attempt():
    assert backoff_delay(0, 1.0, cap=8.0, token="x") <= 1.0
